#!/usr/bin/env python3
"""Message-sequence diagrams of Figures 1 and 2, straight from traces.

The kernel's structured trace records every invocation; the analysis
tools render them as ASCII sequence charts, so you can literally *see*
the difference between the conventional pipeline (filters pump through
pipes — messages in both directions at every stage) and the read-only
one (a single chain of demands flowing upstream).
"""

from repro.analysis import (
    format_sequence_diagram,
    format_table,
    interaction_histogram,
)
from repro.core import Kernel
from repro.figures import build_figure1, build_figure2

INPUT = ["C note", "      X = 1", "      Y = 2"]


def show(figure_name: str, build) -> None:
    kernel = Kernel(trace=True)
    run = build(kernel=kernel, items=INPUT)
    run.run()
    print(f"=== {figure_name}: {run.invocations_used()} invocations ===")
    print(format_sequence_diagram(kernel.tracer, max_messages=14))
    histogram = interaction_histogram(kernel.tracer)
    rows = [
        [sender, target, operation, count]
        for (sender, target, operation), count in sorted(histogram.items())
    ]
    print()
    print(format_table(["from", "to", "op", "count"], rows,
                       title="interaction histogram"))
    print()


def main() -> None:
    show("Figure 1 (conventional)", build_figure1)
    show("Figure 2 (read-only)", build_figure2)
    print(
        "Note how Figure 2's chart is a single staircase of Read demands\n"
        "(data rides back on the replies), while Figure 1 needs Writes\n"
        "into pipes as well — twice the arrows for the same stream."
    )


if __name__ == "__main__":
    main()
