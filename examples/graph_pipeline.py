#!/usr/bin/env python3
"""Dataflow graphs: scatter/gather and broadcast/merge on all runtimes.

The linear examples drive :class:`repro.api.Pipeline`; this one builds
real DAGs with :class:`repro.api.GraphBuilder` — the executable form
of paper claim C3 (fan-in and fan-out are symmetric under the
asymmetric discipline, and channel identifiers restore fan-out).

Two topologies:

- a **diamond** — strip whitespace, then scatter the stream across
  two parallel branches by content hash, gather it back, number the
  lines;
- a **fan** — broadcast the whole stream to an upper-casing branch and
  a line-reversing branch, merge their outputs round-robin.

(The per-edge predictions assume record-preserving stages — the same
assumption the linear C1/C2 model makes — so the filters here are
one-record-in, one-record-out.)

Each runs on the simulator and on asyncio (swap in ``runtime="tcp"``
for one OS process per stage), prints the outputs, and checks the
measured invocation total against the per-edge analytic prediction
from :func:`repro.analysis.predict_graph_invocations` — the C1/C2
economics, hop by hop, on a non-linear topology.

Run: ``PYTHONPATH=src python examples/graph_pipeline.py``
"""

from repro.analysis import predict_graph_invocations
from repro.api import GraphBuilder

LINES = [
    "streams are pipes",
    "C a commented-out line",
    "streams of record",
    "the asymmetric stream discipline",
    "C another comment",
    "one stream to gather them",
]


def diamond():
    """strip -> scatter(hash) -> [upper | reverse] -> gather -> number."""
    return (
        GraphBuilder(source=LINES, discipline="readonly", name="diamond")
        .chain("repro.filters:strip_whitespace")
        .scatter(
            ["repro.filters:upper_case"],
            ["repro.filters:reverse_line"],
            policy="hash",
        )
        .gather()
        .chain("repro.filters:number_lines")
        .build()
    )


def fan():
    """broadcast -> [upper | reverse] -> merge (round-robin)."""
    return (
        GraphBuilder(source=LINES, discipline="readonly", name="fan")
        .broadcast(
            ["repro.filters:upper_case"],
            ["repro.filters:reverse_line"],
        )
        .merge()
        .build()
    )


def show(graph):
    predictions = predict_graph_invocations(graph)
    predicted = sum(p.invocations for p in predictions)
    print(f"== {graph.name}: {len(graph.nodes)} nodes, "
          f"{len(graph.edges)} edges ==")
    for p in predictions:
        print(f"   edge {p.src:>11} -> {p.dst:<11} {p.records:>2} records "
              f"-> {p.invocations:>2} invocations predicted")

    results = {runtime: graph.run(runtime=runtime)
               for runtime in ("sim", "aio")}
    for runtime, result in results.items():
        assert result.invocations == predicted, (runtime, result.invocations)
        print(f"   {runtime}: {result.invocations} invocations "
              f"(= predicted), per segment {result.segment_invocations}")
    assert results["sim"].output == results["aio"].output
    print("   output:")
    for line in results["sim"].output:
        print(f"     {line!r}")
    print()


def main():
    show(diamond())
    show(fan())
    print("identical records and exactly-predicted per-edge invocation")
    print("counts on both in-process runtimes; runtime='tcp' runs the")
    print("same graphs as one OS process per stage.")


if __name__ == "__main__":
    main()
