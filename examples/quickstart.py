#!/usr/bin/env python3
"""Quickstart: the paper's comment-stripping filter, three ways.

Builds the same pipeline — a Fortran comment stripper followed by a
line numberer — in each of the three transput disciplines, runs it on
the simulated Eden kernel, and prints outputs and costs.  The
read-only discipline needs no buffer Ejects and roughly half the
invocations: the paper's headline result, visible from the very first
run.
"""

from repro import Kernel, build_pipeline
from repro.filters import comment_stripper, number_lines

FORTRAN_DECK = [
    "C     COMPUTE THE ANSWER",
    "      REAL X, Y",
    "C     INITIALISE",
    "      X = 1.0",
    "      Y = X * 42.0",
    "C     DONE",
    "      PRINT *, Y",
]


def main() -> None:
    print("input deck:")
    for line in FORTRAN_DECK:
        print("   ", line)
    print()

    for discipline in ("readonly", "writeonly", "conventional"):
        kernel = Kernel()
        pipeline = build_pipeline(
            kernel,
            discipline,
            FORTRAN_DECK,
            [comment_stripper("C"), number_lines()],
        )
        output = pipeline.run_to_completion()
        print(f"--- {discipline} ---")
        for line in output:
            print("   ", line)
        print(
            f"    ejects={pipeline.eject_count()} "
            f"buffers={pipeline.buffer_count()} "
            f"invocations={pipeline.invocations_used()} "
            f"virtual-makespan={pipeline.virtual_makespan:.0f}"
        )
        print()

    print(
        "Note: the read-only pipeline used no passive buffers and about\n"
        "half the invocations of the conventional one — paper §4."
    )


if __name__ == "__main__":
    main()
