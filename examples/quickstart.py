#!/usr/bin/env python3
"""Quickstart: the paper's comment-stripping filter, three ways.

Builds the same pipeline — a Fortran comment stripper followed by a
line numberer — in each of the three transput disciplines through the
:class:`repro.api.Pipeline` facade, runs it on the simulated Eden
kernel, and prints outputs and costs.  The read-only discipline needs
no buffer Ejects and roughly half the invocations: the paper's
headline result, visible from the very first run.

The same ``Pipeline`` object also runs on the asyncio runtime (and,
with ``runtime="tcp"``, as one OS process per stage) — same output,
same invocation count.  ``examples/tcp_pipeline.py`` shows that.
"""

from repro.api import Pipeline

FORTRAN_DECK = [
    "C     COMPUTE THE ANSWER",
    "      REAL X, Y",
    "C     INITIALISE",
    "      X = 1.0",
    "      Y = X * 42.0",
    "C     DONE",
    "      PRINT *, Y",
]

STAGES = [
    ("repro.filters:comment_stripper", ["C"]),
    "repro.filters:number_lines",
]


def main() -> None:
    print("input deck:")
    for line in FORTRAN_DECK:
        print("   ", line)
    print()

    for discipline in ("readonly", "writeonly", "conventional"):
        pipeline = Pipeline(STAGES, discipline=discipline, source=FORTRAN_DECK)
        result = pipeline.run(runtime="sim")
        print(f"--- {discipline} ---")
        for line in result.output:
            print("   ", line)
        print(
            f"    invocations={result.invocations} "
            f"({result.invocations_per_datum(len(FORTRAN_DECK)):.1f} "
            "per datum)"
        )
        # The identical pipeline on real asyncio coroutines: same
        # records out, same number of boundary crossings.
        aio = pipeline.run(runtime="aio")
        assert aio.output == result.output
        assert aio.invocations == result.invocations
        print()

    print(
        "Note: the read-only pipeline used no passive buffers and about\n"
        "half the invocations of the conventional one — paper §4.\n"
        "Every line above was verified identical on the asyncio runtime."
    )


if __name__ == "__main__":
    main()
