#!/usr/bin/env python3
"""Figures 3 and 4: multiple output streams (reports), both disciplines.

Runs the paper's report-stream pipeline under the write-only
discipline (Figure 3: reports pushed to a shared window) and the
read-only discipline with channel identifiers (Figure 4: the window
reads each Report channel), then compares costs and shows the
capability-secured variant rejecting a forged channel read.
"""

from repro.core import Kernel
from repro.core.errors import ChannelSecurityError
from repro.figures import build_figure3, build_figure4, default_input


def main() -> None:
    deck = default_input(lines=15)

    fig3 = build_figure3(items=deck)
    out3 = fig3.run()
    print("=== Figure 3: write-only with report streams ===")
    print("primary output:", len(out3), "lines")
    print("shared report window:")
    for line in fig3.window_lines(0):
        print("   ", line)
    print(f"invocations: {fig3.invocations_used()}")

    fig4 = build_figure4(items=deck)
    out4 = fig4.run()
    print("\n=== Figure 4: read-only with channel identifiers ===")
    print("primary output:", len(out4), "lines")
    print("shared report window (labels added by the reading window):")
    for line in fig4.window_lines(0):
        print("   ", line)
    print(f"invocations: {fig4.invocations_used()}")

    assert out3 == out4, "both disciplines must compute the same output"
    print("\nprimary outputs are identical across disciplines — as the "
          "duality argument (§5) requires.")

    # §5's security refinement: UIDs as channel identifiers.
    print("\n=== capability channels: forged reads are rejected ===")
    fig4s = build_figure4(items=deck, channel_mode="capability")
    fig4s.run()
    kernel: Kernel = fig4s.kernel
    f1 = next(e for e in fig4s.ejects if e.name == "F1")
    try:
        # A dishonest Eject told only about channel Output tries to
        # read channel Report by *name*.
        kernel.call_sync(f1.uid, "Read", 1, channel="Report")
    except ChannelSecurityError as error:
        print("forged read rejected:", error)


if __name__ == "__main__":
    main()
