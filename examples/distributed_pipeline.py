#!/usr/bin/env python3
"""A pipeline distributed across simulated nodes (VAXen on Ethernet).

The Eden prototype ran on "several VAX processors connected together
by 10 Mbit ethernet" (§7), and invocation cost dominates: "the cost of
an invocation must inevitably be higher than that of a system call ...
so such saving may be significant".  This example spreads the same
pipeline over one node vs one-node-per-stage, under a remote/local
cost ratio of 10:1, and shows (a) the read-only scheme's halved
invocation count translating into halved virtual latency, and (b) a
node crash failing the pipeline cleanly.
"""

from repro.core import Kernel, TransportCosts
from repro.core.errors import EjectCrashedError
from repro.devices import random_lines
from repro.filters import grep, unique_adjacent, upper_case
from repro.transput import FlowPolicy, compose_segment


def run(discipline: str, placement, lookahead: int = 0) -> str:
    kernel = Kernel(costs=TransportCosts(local_latency=1.0, remote_latency=10.0))
    pipeline = compose_segment(
        kernel,
        discipline,
        random_lines(count=40, seed=7),
        [grep("stream"), upper_case(), unique_adjacent()],
        placement=placement,
        flow=FlowPolicy(lookahead=lookahead),
    )
    output = pipeline.run_to_completion()
    label = discipline + (f"+la{lookahead}" if lookahead else "")
    return (
        f"{label:16s} placement={placement or 'single-node':11s} "
        f"invocations={pipeline.invocations_used():4d} "
        f"virtual-makespan={pipeline.virtual_makespan:8.0f} "
        f"(output {len(output)} lines)"
    )


def main() -> None:
    # Lazy read-only halves the invocations but serializes every hop;
    # anticipatory buffering (§4) restores pipeline concurrency while
    # keeping the invocation savings.
    for placement in (None, "spread"):
        print(run("readonly", placement))
        print(run("readonly", placement, lookahead=8))
        print(run("conventional", placement))

    # A node crash mid-pipeline: the reader sees a clean failure.
    print("\ncrashing the middle stage's node:")
    kernel = Kernel(costs=TransportCosts(local_latency=1.0, remote_latency=10.0))
    pipeline = compose_segment(
        kernel, "readonly", random_lines(count=40, seed=7),
        [grep("stream"), upper_case(), unique_adjacent()],
        placement="spread",
    )
    kernel.crash_node("pipe-2")  # the upper_case stage's node
    try:
        pipeline.run_to_completion()
    except Exception as error:  # ProcessFailedError wrapping the crash
        cause = getattr(error, "cause", error)
        assert isinstance(cause, EjectCrashedError), cause
        print("pipeline failed as expected:", cause)


if __name__ == "__main__":
    main()
