#!/usr/bin/env python3
"""A complete application: distributed log processing on Eden.

Everything the library provides, in one realistic scenario:

- raw logs live in the simulated host Unix filesystem of node "vax-a";
- the §7 bootstrap lifts them into Eden as a stream;
- a read-only pipeline spread across three nodes filters errors,
  normalizes them, and produces a monitoring Report stream on the way
  (channel identifiers, §5);
- a report window watches the monitor channel, a terminal displays the
  result, and the cleaned stream is ingested by a durable EdenFile
  ("opened for output", §4) registered in a directory;
- the file's node then crashes — and the archive survives, because
  ingestion Checkpointed.
"""

from repro.core import Kernel, TransportCosts
from repro.devices import ReportWindow, Terminal, random_lines
from repro.filesystem import Directory, EdenFile, HostFileSystem, UnixFileSystem
from repro.filters import grep, substitute, with_reports
from repro.transput import ReadOnlyFilter, StreamEndpoint


def build_logs() -> list[str]:
    lines = []
    for index, noise in enumerate(random_lines(count=30, width=3, seed=11)):
        level = ("ERROR", "INFO", "DEBUG")[index % 3]
        lines.append(f"1983-05-{(index % 28) + 1:02d} {level} {noise}")
    return lines


def main() -> None:
    kernel = Kernel(costs=TransportCosts(local_latency=1.0,
                                         remote_latency=10.0))

    # -- the data lives on vax-a's Unix disk -----------------------------
    hostfs = HostFileSystem()
    hostfs.mkdir("/var/log", parents=True)
    hostfs.write_file("/var/log/daemon.log", build_logs())
    unixfs = kernel.create(UnixFileSystem, hostfs=hostfs, node="vax-a")
    log_stream = kernel.call_sync(unixfs.uid, "NewStream",
                                  "/var/log/daemon.log")

    # -- a distributed read-only pipeline with a monitor channel ----------
    only_errors = kernel.create(
        ReadOnlyFilter, transducer=grep("ERROR"),
        inputs=[StreamEndpoint(log_stream, None)],
        node="vax-a", name="error-filter", lookahead=4,
    )
    normalize = kernel.create(
        ReadOnlyFilter,
        transducer=with_reports(
            substitute(r"^(\S+) ERROR ", r"[\1] "), "normalize", every=4
        ),
        inputs=[only_errors.output_endpoint()],
        node="vax-b", name="normalize",
    )

    window = kernel.create(
        ReportWindow, node="vax-c",
        inputs=[("normalize", normalize.output_endpoint("Report"))],
    )
    terminal = kernel.create(
        Terminal, node="vax-c",
        inputs=[normalize.output_endpoint("Output")],
    )
    kernel.run(until=lambda: terminal.done and window.done)
    kernel.run()

    print("=== operator terminal (vax-c) ===")
    for line in terminal.screen():
        print("   ", line)
    print("\n=== monitor window ===")
    for line in window.lines:
        print("   ", line)

    # -- archive the cleaned stream durably --------------------------------
    # Files are active: the archive itself pumps a fresh pass of the
    # pipeline (new bootstrap stream, same filters rebuilt on vax-b).
    archive = kernel.create(EdenFile, node="vax-b", name="errors.archive")
    second_pass = kernel.call_sync(unixfs.uid, "NewStream",
                                   "/var/log/daemon.log")
    refilter = kernel.create(
        ReadOnlyFilter, transducer=grep("ERROR"),
        inputs=[StreamEndpoint(second_pass, None)], node="vax-a",
    )
    kernel.call_sync(archive.uid, "ReadFrom", refilter.output_endpoint())
    kernel.run()

    home = kernel.create(Directory, name="home", node="vax-b")
    kernel.call_sync(home.uid, "AddEntry", "errors", archive.uid)
    kernel.call_sync(home.uid, "Commit")

    # -- vax-b dies; the archive survives its checkpoint --------------------
    kernel.crash_node("vax-b")
    kernel.recover_node("vax-b")
    recovered_uid = kernel.call_sync(home.uid, "Lookup", "errors")
    count = kernel.call_sync(recovered_uid, "Length")
    print(f"\nafter vax-b crash+recovery the archive still holds "
          f"{count} error lines")
    stats = kernel.stats
    print(f"(session totals: {stats.get('invocations_sent')} invocations, "
          f"{stats.get('ejects_activated')} reactivations, "
          f"{stats.get('checkpoints')} checkpoints)")


if __name__ == "__main__":
    main()
