#!/usr/bin/env python3
"""Beyond streams: a custom protocol on raw invocation (paper §6).

"If two Ejects need to communicate in a way that is difficult or
impossible with the transput package, they are free to create their
own protocol ... a disk file Eject may wish to define a protocol which
supports the abstraction of a Map.  Such an Eject may not support the
transput protocol at all, or it may support both protocols."

This example:

1. uses a MapFile through its random-access Map protocol;
2. streams the very same Eject through the Sequence protocol into a
   pipeline — both protocols on one object;
3. defines a brand-new key-value protocol Eject from scratch in ~20
   lines, showing that stream transput really is "just a special use
   of the underlying invocation mechanism".
"""

from repro.core import Eject, Kernel
from repro.filesystem import MapFile
from repro.filters import number_lines
from repro.transput import compose_readonly_pipeline


class KeyValueStore(Eject):
    """A protocol of our own: Put/Get/Delete/Keys — no streams at all."""

    eden_type = "KeyValueStore"

    def __init__(self, kernel, uid, name=None):
        super().__init__(kernel, uid, name=name)
        self.table = {}

    def op_Put(self, invocation):
        key, value = invocation.args
        self.table[key] = value
        return True

    def op_Get(self, invocation):
        (key,) = invocation.args
        return self.table.get(key)

    def op_Delete(self, invocation):
        (key,) = invocation.args
        return self.table.pop(key, None) is not None

    def op_Keys(self, invocation):
        return sorted(self.table)


def main() -> None:
    kernel = Kernel()

    # --- 1. the Map protocol: random access -----------------------------
    ledger = kernel.create(
        MapFile, records=[f"txn {i}: {i * 10} units" for i in range(8)],
        name="ledger",
    )
    print("record 5:", kernel.call_sync(ledger.uid, "ReadAt", 5))
    kernel.call_sync(ledger.uid, "WriteAt", 5, ["txn 5: CORRECTED"])
    print("record 5 now:", kernel.call_sync(ledger.uid, "ReadAt", 5))
    print("size:", kernel.call_sync(ledger.uid, "Size"))

    # --- 2. the same Eject as a stream source ---------------------------
    pipeline = compose_readonly_pipeline(
        kernel, ledger_endpoint(ledger), [number_lines()]
    )
    print("\nstreamed through a pipeline:")
    for line in pipeline.run_to_completion():
        print("   ", line)

    # --- 3. a protocol of our own ----------------------------------------
    store = kernel.create(KeyValueStore, name="kv")
    kernel.call_sync(store.uid, "Put", "paper", "SOSP 1983")
    kernel.call_sync(store.uid, "Put", "system", "Eden")
    print("\nkv keys:", kernel.call_sync(store.uid, "Keys"))
    print("kv get paper:", kernel.call_sync(store.uid, "Get", "paper"))
    kernel.call_sync(store.uid, "Delete", "paper")
    print("after delete:", kernel.call_sync(store.uid, "Keys"))


def ledger_endpoint(ledger):
    from repro.transput import StreamEndpoint

    return StreamEndpoint(ledger.uid, None)


if __name__ == "__main__":
    main()
