#!/usr/bin/env python3
"""A shell session over the simulated Eden system.

Shows the command language wiring pipelines dynamically, including the
``n>`` channel-redirect syntax the paper compares its channel
identifiers to (§5), and switching transput disciplines mid-session.
"""

from repro.shell import Shell

SESSION = [
    'deck = echo "C     HEADER" "      X = 1" "C     NOTE" "      y = x" "      CALL F(y)"',
    "deck | strip-comments C | strip | number",
    "deck | grep CALL | upper > calls",
    "show calls",
    "deck | report progress 2 | upper Report> log > shouted",
    "show log",
    "set discipline conventional",
    "deck | strip-comments C | wc",
    "set discipline writeonly",
    "deck | strip-comments C | sort",
]


def main() -> None:
    shell = Shell()
    for line in SESSION:
        print(f"eden$ {line}")
        for result in shell.execute(line):
            if result is None:
                continue
            if isinstance(result, list):  # show statement
                for item in result:
                    print("   ", item)
                continue
            for item in result.output:
                print("   ", item)
            if result.redirected:
                targets = ", ".join(sorted(result.redirected))
                print(f"    [redirected to: {targets}; "
                      f"{result.invocations} invocations, "
                      f"{result.discipline}]")
            else:
                print(f"    [{result.invocations} invocations, "
                      f"{result.discipline}]")
        print()


if __name__ == "__main__":
    main()
