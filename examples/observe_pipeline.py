#!/usr/bin/env python3
"""Observe a live TCP fleet, then prove C1 span-by-span.

The tour of :mod:`repro.obs` on real sockets:

1. plan a read-only 3-filter identity pipeline with tracing *and* a
   control port on every stage (``trace=True, control=True``);
2. launch it, and while it runs poll the control ports for a live
   ``eden-top``-style snapshot (CTRL frames bypass the counted
   connection, so watching costs zero invocations);
3. merge the per-stage span logs with clock-skew correction and verify
   the paper's claim C1 *structurally*: every datum's trace is one
   causal chain of exactly n+1 Read spans, rooted at the sink — demand
   pulls, so causality starts where the data ends up;
4. print the slowest datum's critical path, hop by hop.
"""

import tempfile
import threading
import time

from repro.net.launch import IDENTITY, plan_linear_fleet, run_fleet
from repro.obs.control import ControlError
from repro.obs.merge import load_span_log, merge_span_logs, verify_invocation_chains
from repro.obs.top import gather_fleet, render_fleet

N_FILTERS = 3
ITEMS = 400


def watch_live(plans, runner: threading.Thread) -> int:
    """Poll the control ports while the fleet runs; return snapshots."""
    stages = [
        (f"{plan.role}#{index}", "127.0.0.1", plan.control_port)
        for index, plan in enumerate(plans)
    ]
    snapshots = 0
    while runner.is_alive():
        rows = gather_fleet(stages, timeout=0.5)
        if any(row.alive for row in rows):
            snapshots += 1
            print(render_fleet(rows))
            print()
        time.sleep(0.2)
    return snapshots


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        plans = plan_linear_fleet(
            "readonly", [IDENTITY] * N_FILTERS, workdir,
            source_count=ITEMS, trace=True, control=True,
        )
        print(f"launching {len(plans)} stages (read-only, n={N_FILTERS}, "
              f"m={ITEMS})...\n")

        fleet: dict = {}
        runner = threading.Thread(
            target=lambda: fleet.update(result=run_fleet(plans, timeout=120))
        )
        runner.start()

        # A couple of live snapshots while the fleet is busy.
        try:
            if watch_live(plans, runner) == 0:
                print("(fleet drained before a snapshot landed)\n")
        except (ControlError, OSError):
            pass
        runner.join()
        result = fleet["result"]

        trees = merge_span_logs(
            [load_span_log(path) for path in result.trace_files]
        )
        report = verify_invocation_chains(trees, "readonly", N_FILTERS, ITEMS)
        print(report.summary())

        slowest = max(trees, key=lambda tree: tree.end_to_end)
        print(f"\nslowest datum ({slowest.trace}, "
              f"{slowest.end_to_end * 1000:.3f}ms end-to-end):")
        origin = slowest.start
        for record in slowest.critical_path():
            print(f"  {record.stage:<24} {record.op:<5} "
                  f"+{(record.start - origin) * 1000:7.3f}ms  "
                  f"dur {record.duration * 1000:7.3f}ms")
        roots = {tree.roots[0].stage for tree in trees}
        print(f"\nevery trace roots at: {sorted(roots)} — the sink pulls.")


if __name__ == "__main__":
    main()
