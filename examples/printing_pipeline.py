#!/usr/bin/env python3
"""The paper's §4 printing scenario, end to end.

"A file could be printed simply by requesting the printer server to
read from the file.  If a paginated listing were required, the printer
server would be requested to read from the paginator, and the
paginator to read from the file."

This example builds exactly that: an Eden file Eject holding a report,
a paginator filter reading from the file, and a printer server
requested to read from the paginator.  Nothing pushes: the printer is
the pump.  It then prints the same file *without* pagination to show
dynamic redirection — "Since files are active entities, there is no
distinction between input redirection from a file and from a program."
"""

from repro.core import Kernel
from repro.devices import PrinterServer
from repro.filesystem import Directory, EdenFile
from repro.filters import paginate
from repro.transput import ReadOnlyFilter, StreamEndpoint


def main() -> None:
    kernel = Kernel()

    # A file Eject with some content, registered in a directory.
    report_lines = [f"result[{i}] = {i * i}" for i in range(25)]
    report = kernel.create(EdenFile, records=report_lines, name="report")
    home = kernel.create(Directory, name="home")
    kernel.call_sync(home.uid, "AddEntry", "report", report.uid)

    # Look the file up by name, as a user would.
    file_uid = kernel.call_sync(home.uid, "Lookup", "report")

    # A fresh read cursor over the file (files are active entities).
    reader_uid = kernel.call_sync(file_uid, "OpenForReading")

    # The paginator reads from the file; the printer reads from the
    # paginator.  The printer's Read invocations are the only pump.
    paginator = kernel.create(
        ReadOnlyFilter,
        transducer=paginate(page_length=10, title="REPORT"),
        inputs=[StreamEndpoint(reader_uid, None)],
        name="paginator",
    )
    printer = kernel.create(PrinterServer, lines_per_page=12, name="lpr")
    kernel.call_sync(printer.uid, "PrintFrom", paginator.output_endpoint())
    kernel.run()

    print(f"printed {len(printer.pages)} page(s):")
    for number, page in enumerate(printer.pages, start=1):
        print(f"--- page {number} ---")
        for line in page:
            print("   ", line)

    # Dynamic redirection: print the raw file, no paginator, same printer.
    reader2 = kernel.call_sync(file_uid, "OpenForReading")
    kernel.call_sync(printer.uid, "PrintFrom", StreamEndpoint(reader2, None))
    kernel.run()
    print(f"\nafter the second job the printer has {len(printer.pages)} pages")
    print(f"jobs completed: {kernel.call_sync(printer.uid, 'JobCount')}")


if __name__ == "__main__":
    main()
