#!/usr/bin/env python3
"""The distributed pipeline, for real: OS processes on localhost TCP.

``examples/distributed_pipeline.py`` spreads a pipeline over *simulated*
nodes and predicts the costs; this is its twin on real sockets, driven
through the one :class:`repro.api.Pipeline` facade.  Every stage —
source, each filter, sink, and (for the conventional emulation) every
pipe — is a separate ``eden-stage`` process, speaking the framed wire
protocol of :mod:`repro.net`.  The run prints the measured on-wire
request count next to the paper's closed-form prediction:

- read-only / write-only: ``(n+1)(m+1)`` requests (claim C1);
- conventional (a pipe process between every adjacent pair): ``(2n+2)
  (m+1)`` — twice the traffic, and ``2n+3`` processes instead of
  ``n+2``.

It then re-runs the read-only pipeline with real filters on *both*
runtimes — ``runtime="tcp"`` and ``runtime="sim"`` — and checks the
bytes coming out of the TCP sink equal the simulator's output for the
same seed.
"""

import tempfile

from repro.analysis import predicted_invocations
from repro.api import Pipeline
from repro.devices import random_lines

N_FILTERS = 3
ITEMS = 10
SEED = 7

IDENTITY = "repro.transput:identity_transducer"

FILTER_SPECS = [
    ("repro.filters:grep", ["stream"]),
    ("repro.filters:upper_case", []),
    ("repro.filters:unique_adjacent", []),
]


def measure(discipline: str, workdir: str) -> None:
    result = Pipeline(
        [IDENTITY] * N_FILTERS,
        discipline=discipline,
        source=[str(i) for i in range(ITEMS)],
    ).run(runtime="tcp", workdir=workdir, timeout=60)
    predicted = predicted_invocations(discipline, N_FILTERS, ITEMS)
    verdict = "exact" if result.invocations == predicted else "MISMATCH"
    print(
        f"{discipline:14s} "
        f"on-wire requests={result.invocations:4d} "
        f"paper predicts={predicted:4d}  [{verdict}]"
    )


def main() -> None:
    print(
        f"moving m={ITEMS} records through n={N_FILTERS} identity filters, "
        "one OS process per stage:\n"
    )
    with tempfile.TemporaryDirectory() as workdir:
        for discipline in ("readonly", "writeonly", "conventional"):
            measure(discipline, f"{workdir}/{discipline}")

        print("\nreal filters (grep | upper | uniq), read-only over TCP:")
        pipeline = Pipeline(
            FILTER_SPECS,
            discipline="readonly",
            source=random_lines(count=ITEMS, seed=SEED),
        )
        tcp = pipeline.run(runtime="tcp", workdir=f"{workdir}/real",
                           timeout=60)
        simulated = pipeline.run(runtime="sim")

        match = tcp.output == [str(line) for line in simulated.output]
        for line in tcp.output:
            print("  ", line)
        print(
            f"\nTCP output == simulator output for seed {SEED}: {match}"
        )
        counters = tcp.stats.get("counters", {})
        print(
            f"wire totals: {counters.get('frames_sent')} frames, "
            f"{counters.get('bytes_sent')} bytes, "
            f"{counters.get('invocations_sent')} requests, "
            f"{counters.get('replies_sent')} replies"
        )
        if not match:
            raise SystemExit("output mismatch between TCP and simulator")


if __name__ == "__main__":
    main()
