#!/usr/bin/env python3
"""The distributed pipeline, for real: OS processes on localhost TCP.

``examples/distributed_pipeline.py`` spreads a pipeline over *simulated*
nodes and predicts the costs; this is its twin on real sockets.  Every
stage — source, each filter, sink, and (for the conventional emulation)
every pipe — is a separate ``eden-stage`` process, speaking the framed
wire protocol of :mod:`repro.net`.  The run prints the measured on-wire
request count next to the paper's closed-form prediction:

- read-only / write-only: ``(n+1)(m+1)`` requests (claim C1);
- conventional (a pipe process between every adjacent pair): ``(2n+2)
  (m+1)`` — twice the traffic, and ``2n+3`` processes instead of
  ``n+2``.

It then re-runs the read-only pipeline with real filters and checks the
bytes coming out of the TCP sink equal the simulator's output for the
same seed.
"""

import tempfile

from repro.analysis import predicted_invocations
from repro.core import Kernel
from repro.devices import random_lines
from repro.filters import grep, unique_adjacent, upper_case
from repro.net.launch import IDENTITY, execute, plan_pipeline
from repro.transput import build_pipeline

N_FILTERS = 3
ITEMS = 10
SEED = 7

FILTER_SPECS = [
    ("repro.filters:grep", ["stream"]),
    ("repro.filters:upper_case", []),
    ("repro.filters:unique_adjacent", []),
]


def measure(discipline: str, workdir: str) -> None:
    plans = plan_pipeline(
        discipline, [IDENTITY] * N_FILTERS, workdir,
        source_items=list(range(ITEMS)),
    )
    result = execute(plans, timeout=60)
    predicted = predicted_invocations(discipline, N_FILTERS, ITEMS)
    verdict = "exact" if result.invocations == predicted else "MISMATCH"
    print(
        f"{discipline:14s} processes={len(plans):2d} "
        f"on-wire requests={result.invocations:4d} "
        f"paper predicts={predicted:4d}  [{verdict}]"
    )


def main() -> None:
    print(
        f"moving m={ITEMS} records through n={N_FILTERS} identity filters, "
        "one OS process per stage:\n"
    )
    with tempfile.TemporaryDirectory() as workdir:
        for discipline in ("readonly", "writeonly", "conventional"):
            measure(discipline, f"{workdir}/{discipline}")

        print("\nreal filters (grep | upper | uniq), read-only over TCP:")
        plans = plan_pipeline(
            "readonly", FILTER_SPECS, f"{workdir}/real",
            source_count=ITEMS, source_seed=SEED,
        )
        result = execute(plans, timeout=60)

        kernel = Kernel(seed=0)
        simulated = build_pipeline(
            kernel, "readonly",
            random_lines(count=ITEMS, seed=SEED),
            [grep("stream"), upper_case(), unique_adjacent()],
        ).run_to_completion()

        match = result.output == [str(line) for line in simulated]
        for line in result.output:
            print("  ", line)
        print(
            f"\nTCP output == simulator output for seed {SEED}: {match}"
        )
        totals = result.totals
        print(
            f"wire totals: {totals.get('frames_sent')} frames, "
            f"{totals.get('bytes_sent')} bytes, "
            f"{totals.get('invocations_sent')} requests, "
            f"{totals.get('replies_sent')} replies"
        )
        if not match:
            raise SystemExit("output mismatch between TCP and simulator")


if __name__ == "__main__":
    main()
