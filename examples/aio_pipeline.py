#!/usr/bin/env python3
"""The asymmetric stream design on real asyncio coroutines.

The simulator measures the paper's claims; this example shows the same
four primitives carrying real concurrent work.  The *identical*
transducer filters run in both worlds.

Demonstrated here:

1. a read-only pipeline pumping a slow async producer, with anticipatory
   prefetch overlapping producer and consumer (paper §4);
2. a write-only pipeline with fan-out to two collectors;
3. a conventional pipeline of tasks joined by bounded AioPipes —
   asyncio's rendition of Figure 1.
"""

import asyncio
import time

from repro.aio import (
    AioCollector,
    AioReadOnlyStage,
    AioWriteOnlyStage,
)
from repro.api import Pipeline
from repro.filters import comment_stripper, number_lines, upper_case
from repro.transput import Transfer
from repro.transput.stream import END_TRANSFER

DECK = [
    "C     HEADER", "      real x", "C     NOTE", "      x = x + 1",
    "      call f(x)", "C     END",
]


class SlowAsyncSource:
    """A producer that takes real wall-clock time per record."""

    def __init__(self, items, delay=0.004):
        self._items = list(items)
        self._delay = delay
        self._index = 0

    async def read(self, batch=1):
        if self._index >= len(self._items):
            return END_TRANSFER
        await asyncio.sleep(self._delay)
        taken = self._items[self._index : self._index + batch]
        self._index += len(taken)
        return Transfer.of(taken)


async def demo_readonly_prefetch():
    async def timed(lookahead):
        stage = AioReadOnlyStage(
            upper_case(), SlowAsyncSource(DECK * 5), lookahead=lookahead
        )
        started = time.perf_counter()
        out = []
        while True:
            transfer = await stage.read(1)
            if transfer.at_end:
                break
            await asyncio.sleep(0.004)  # a slow consumer, too
            out.extend(transfer.items)
        return out, time.perf_counter() - started

    lazy_out, lazy_time = await timed(0)
    eager_out, eager_time = await timed(8)
    assert lazy_out == eager_out
    print(f"read-only, lazy:      {lazy_time * 1000:6.1f} ms")
    print(f"read-only, prefetch 8: {eager_time * 1000:5.1f} ms "
          f"({lazy_time / eager_time:.1f}x faster — producer and "
          "consumer overlap)")


async def demo_writeonly_fan_out():
    sinks = [AioCollector(), AioCollector()]
    stage = AioWriteOnlyStage(comment_stripper("C"), list(sinks))
    for line in DECK:
        await stage.write(Transfer.single(line))
    await stage.write(END_TRANSFER)
    for sink in sinks:
        await sink.done.wait()
    print("\nwrite-only fan-out: both sinks got",
          len(sinks[0].items), "lines")
    assert sinks[0].items == sinks[1].items


def main() -> None:
    asyncio.run(demo_readonly_prefetch())
    asyncio.run(demo_writeonly_fan_out())

    print("\nconventional (tasks + bounded pipes):")
    from repro.transput import FlowPolicy

    result = Pipeline(
        [comment_stripper("C"), number_lines()],
        discipline="conventional",
        source=DECK,
        flow=FlowPolicy(buffer_capacity=4),
    ).run(runtime="aio")
    for line in result.output:
        print("   ", line)


if __name__ == "__main__":
    main()
