#!/usr/bin/env python3
"""The Eden filesystem tour: directories, files, bootstrap, recovery.

Demonstrates, in order:

1. directories as Ejects (AddEntry/Lookup/List, §2), including the
   List-then-Read stream protocol;
2. the Directory Concatenator (PATH-like lookup, §2);
3. the bootstrap Unix File System (NewStream/UseStream, §7) copying a
   host file through an Eden filter pipeline back into the host FS;
4. crash and recovery from a Checkpointed passive representation;
5. nested transactions on a directory (the §7 "preliminary design").
"""

from repro.core import Kernel
from repro.filesystem import (
    Directory,
    DirectoryConcatenator,
    EdenFile,
    HostFileSystem,
    TransactionalDirectory,
    UnixFileSystem,
)
from repro.filters import upper_case
from repro.transput import ReadOnlyFilter, StreamEndpoint


def main() -> None:
    kernel = Kernel()

    # -- 1. directories ----------------------------------------------------
    home = kernel.create(Directory, name="home")
    tools = kernel.create(Directory, name="tools")
    notes = kernel.create(EdenFile, records=["buy milk", "write paper"],
                          name="notes")
    kernel.call_sync(home.uid, "AddEntry", "notes", notes.uid)
    kernel.call_sync(tools.uid, "AddEntry", "home", home.uid)  # dir networks

    print("home directory listing (via the stream protocol):")
    kernel.call_sync(home.uid, "List")
    listing = kernel.call_sync(home.uid, "Read", 10)
    for line in listing.items:
        print("   ", line)

    # -- 2. the concatenator -----------------------------------------------
    path = kernel.create(
        DirectoryConcatenator, directories=[tools.uid, home.uid], name="PATH"
    )
    found = kernel.call_sync(path.uid, "Lookup", "notes")
    print("\nconcatenator found 'notes' ->", found)

    # -- 3. the bootstrap Unix FS (§7) --------------------------------------
    hostfs = HostFileSystem()
    hostfs.mkdir("/usr/src", parents=True)
    hostfs.write_file("/usr/src/prog.f", [
        "C     FORTRAN SOURCE", "      real x", "      x = 2.0",
    ])
    ufs = kernel.create(UnixFileSystem, hostfs=hostfs, name="unixfs")

    stream_cap = kernel.call_sync(ufs.uid, "NewStream", "/usr/src/prog.f")
    shout = kernel.create(
        ReadOnlyFilter, transducer=upper_case(),
        inputs=[StreamEndpoint(stream_cap, None)], name="shout",
    )
    kernel.call_sync(ufs.uid, "UseStream", "/usr/src/PROG.F",
                     shout.output_endpoint())
    kernel.run()
    print("\nbootstrap copy through an Eden filter:")
    for line in hostfs.read_file("/usr/src/PROG.F"):
        print("   ", line)

    # -- 4. crash and recovery ----------------------------------------------
    kernel.call_sync(notes.uid, "Commit")      # checkpoint to stable store
    kernel.call_sync(notes.uid, "Append",
                     __import__("repro.transput", fromlist=["Transfer"])
                     .Transfer.of(["uncommitted line"]))
    kernel.crash_eject(notes.uid)
    recovered = kernel.call_sync(notes.uid, "Contents")
    print("\nafter crash, recovered from checkpoint:", recovered)
    assert "uncommitted line" not in recovered

    # -- 5. nested transactions ----------------------------------------------
    projects = kernel.create(TransactionalDirectory, name="projects")
    outer = kernel.call_sync(projects.uid, "Begin")
    kernel.call_sync(projects.uid, "AddEntry", "eden", notes.uid, txn=outer)
    inner = kernel.call_sync(projects.uid, "Begin", outer)
    kernel.call_sync(projects.uid, "AddEntry", "sosp83", notes.uid, txn=inner)
    kernel.call_sync(projects.uid, "Abort", inner)
    kernel.call_sync(projects.uid, "Commit", outer)
    print("\ntransactional directory after outer-commit/inner-abort:",
          kernel.call_sync(projects.uid, "Names"))


if __name__ == "__main__":
    main()
