"""T10 — C1/C2 on real sockets: the wire runtime's frame counts.

The simulator proves the formulas in virtual time; this bench proves
them on localhost TCP with one OS process per stage.  For n identity
filters moving m records, the asymmetric disciplines must measure
exactly ``(n+1)(m+1)`` request frames on the wire, and the
conventional emulation — every pipe its own process — exactly
``(2n+2)(m+1)``: the paper's ratio of one half, with real `sendmsg`
traffic instead of simulated invocations.
"""

from repro.analysis import predicted_invocations
from repro.net.launch import IDENTITY, plan_linear_fleet, run_fleet

from conftest import publish

LENGTHS = (1, 2, 3)
ITEMS = 10


def sweep(workdir):
    rows = []
    for n_filters in LENGTHS:
        measured = {}
        for discipline in ("readonly", "writeonly", "conventional"):
            plans = plan_linear_fleet(
                discipline, [IDENTITY] * n_filters,
                f"{workdir}/{discipline}-{n_filters}",
                source_items=list(range(ITEMS)),
            )
            result = run_fleet(plans, timeout=60)
            measured[discipline] = (result.invocations, len(plans))
        rows.append((n_filters, measured))
    return rows


def test_bench_wire_counts(benchmark, tmp_path):
    rows = benchmark.pedantic(sweep, args=(str(tmp_path),), rounds=1)

    table_rows = []
    for n_filters, measured in rows:
        for discipline, (invocations, _processes) in measured.items():
            assert invocations == predicted_invocations(
                discipline, n_filters, ITEMS
            ), (discipline, n_filters)
        readonly, ro_procs = measured["readonly"]
        writeonly, _ = measured["writeonly"]
        conventional, cv_procs = measured["conventional"]
        assert readonly * 2 == conventional
        assert writeonly == readonly
        table_rows.append([
            n_filters, ro_procs, readonly, cv_procs, conventional,
            f"{readonly / conventional:.2f}",
        ])

    publish(
        "t10_wire_counts",
        ["n filters", "RO procs", "RO requests", "CV procs",
         "CV requests", "ratio"],
        table_rows,
        title=f"T10: on-wire request frames to move m={ITEMS} records over "
              "TCP (paper: n+1 vs 2n+2 per datum; measured exactly)",
    )
