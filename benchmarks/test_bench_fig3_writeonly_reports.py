"""F3 — Figure 3: an Eden pipeline in the write-only discipline, with
report streams.

"The source, F1 and F3 produce reports as well as normal output.  The
reports from source and F1 are directed to a common destination,
perhaps a window on a display."  Multiple outputs present no
difficulty in this discipline — that is the point of the figure.
"""

from repro.figures import build_figure3, default_input
from repro.transput import Primitive

from conftest import publish

ITEMS = default_input(lines=60)


def run_figure3():
    run = build_figure3(items=ITEMS, report_every=10)
    output = run.run()
    return run, output


def test_bench_figure3(benchmark):
    run, output = benchmark(run_figure3)
    assert len(output) == 40

    # The shared window carries both reporters' streams, interleaved.
    shared = run.window_lines(0)
    sources = {line.split("]")[0] + "]" for line in shared}
    assert sources == {"[source]", "[F1]"}
    f3_window = run.window_lines(1)
    assert all(line.startswith("[F3]") for line in f3_window)

    # Write-only discipline throughout: filters never perform active
    # input on the primary path (§5) — fan-out needed no extra Ejects.
    for eject in run.ejects:
        if eject.name in ("source", "F1", "F2", "F3"):
            assert Primitive.ACTIVE_INPUT not in eject.interface_primitives()

    publish(
        "fig3_writeonly_reports",
        ["metric", "value"],
        [
            ["ejects", run.eject_count()],
            ["report lines (shared window)", len(shared)],
            ["report lines (F3 window)", len(f3_window)],
            ["invocations", run.invocations_used()],
            ["virtual makespan", run.virtual_makespan],
        ],
        title="Figure 3 (write-only with report streams)",
    )
