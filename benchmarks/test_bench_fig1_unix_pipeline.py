"""F1 — Figure 1: the Unix pipeline baseline.

Three both-active filters with pipes p1 and p2 between them, a passive
data source and data sink at the ends.  This is the configuration the
read-only discipline is measured against.
"""

from repro.figures import build_figure1, default_input
from repro.transput import Primitive

from conftest import publish

ITEMS = default_input(lines=60)


def run_figure1():
    run = build_figure1(items=ITEMS)
    output = run.run()
    return run, output


def test_bench_figure1(benchmark):
    run, output = benchmark(run_figure1)
    assert len(output) == 40  # 60 lines, every third a comment

    # The figure's structural facts.
    assert run.eject_count() == 7
    pipes = [e for e in run.ejects if e.name in ("p1", "p2")]
    assert len(pipes) == 2
    filters = [e for e in run.ejects if e.name in ("F1", "F2", "F3")]
    for stage in filters:
        # "The shape of the connectors ... indicate that they are
        # performing active input and active output."
        assert stage.interface_primitives() == {
            Primitive.ACTIVE_INPUT, Primitive.ACTIVE_OUTPUT
        }
    # Pipes perform only passive transput.
    for pipe in pipes:
        assert pipe.interface_primitives() <= {
            Primitive.PASSIVE_INPUT, Primitive.PASSIVE_OUTPUT
        }

    publish(
        "fig1_unix_pipeline",
        ["metric", "value"],
        [
            ["ejects (boxes + circles)", run.eject_count()],
            ["passive buffers (pipes)", len(pipes)],
            ["invocations", run.invocations_used()],
            ["invocations / input datum", run.invocations_used() / len(ITEMS)],
            ["virtual makespan", run.virtual_makespan],
        ],
        title="Figure 1 (Unix pipeline, conventional discipline)",
    )
