"""T8 — process-switch savings (§4's bullet list).

"Thus considerable savings of communications overhead and process
switching can be realised with long pipelines."

Every message delivery resumes a process, so halving messages halves
the message-driven process switches.  The benchmark sweeps pipeline
length and reports context switches per datum for both disciplines,
checking the read-only advantage and that it grows with n.
"""

from repro.analysis import measure_pipeline

from conftest import publish

LENGTHS = (1, 2, 4, 8, 16)
ITEMS = 40


def sweep():
    results = {}
    for n_filters in LENGTHS:
        for discipline in ("readonly", "conventional"):
            results[(n_filters, discipline)] = measure_pipeline(
                discipline, n_filters, ITEMS
            )
    return results


def test_bench_context_switches(benchmark):
    results = benchmark(sweep)

    rows = []
    savings = []
    for n_filters in LENGTHS:
        readonly = results[(n_filters, "readonly")]
        conventional = results[(n_filters, "conventional")]
        ratio = readonly.context_switches / conventional.context_switches
        savings.append(ratio)
        rows.append([
            n_filters,
            readonly.context_switches,
            f"{readonly.context_switches / ITEMS:.1f}",
            conventional.context_switches,
            f"{conventional.context_switches / ITEMS:.1f}",
            f"{ratio:.2f}",
        ])
        # The read-only pipeline always switches less.
        assert readonly.context_switches < conventional.context_switches

    # The saving grows (ratio falls) as pipelines get longer — "with
    # long pipelines".
    assert savings[-1] < savings[0]
    # And for long pipelines the saving approaches the message ratio.
    assert savings[-1] < 0.75

    publish(
        "t8_context_switches",
        ["n filters", "read-only switches", "/datum",
         "conventional switches", "/datum", "ratio"],
        rows,
        title=f"T8: process switches to move m={ITEMS} records",
    )
