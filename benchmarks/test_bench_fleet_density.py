"""T15 — fleet density: hundreds of stages hosted in one process.

The hosted placement's whole claim is that pipeline length and process
count are decoupled: one ``eden-broker`` daemon plus one ``eden-host``
process carry a 500-stage pipeline that the per-process placement
would run as 500 interpreters.  This benchmark stands that fleet up
for real — broker and host are separate OS processes under the
ordinary :class:`FleetSupervisor` — and measures what density costs:
wall-clock to drain the stream, aggregate link deliveries per second,
and the broker's registration latency quantiles from the hosts'
``broker_register_ms`` histograms.

Acceptance (ISSUE T15): >= 500 stages hosted in a single ``eden-host``
process, with exactly-once delivery verified by the actual
``eden-trace --verify-once`` CLI over the host's span log (tracing and
resume are on, so every hosted reader leaves sequence evidence).
"""

import os
import time

from repro.core.stats import Histogram
from repro.net.launch import IDENTITY, run_fleet
from repro.obs.trace_cli import main as trace_main
from repro.broker.launch import plan_hosted_fleet
from repro.transput import FlowPolicy

from conftest import publish

QUICK = os.environ.get("EDEN_BENCH_QUICK") == "1"
CORES = os.cpu_count() or 1

#: Pipeline length including source and sink; the acceptance bar is
#: 500 stages in one host process (quick mode keeps CI honest at a
#: size it can afford).
N_STAGES = 80 if QUICK else 500
N_ITEMS = 8 if QUICK else 32

#: Modest batching: the point is stage density, not wire throughput,
#: but strict one-READ-at-a-time alternation across 499 links would
#: measure only protocol round trips.
FLOW = FlowPolicy(batch=8, pipeline_depth=4)


def host_the_fleet(workdir):
    plans = plan_hosted_fleet(
        "readonly", [IDENTITY] * (N_STAGES - 2), workdir,
        source_count=N_ITEMS, source_seed=13,
        flow=FLOW, trace=True, resume=True,
        connect_deadline=60.0,
    )
    # One broker daemon + one host process, however long the pipeline.
    assert [plan.role for plan in plans] == ["broker", "host"]
    started = time.perf_counter()
    result = run_fleet(plans, timeout=600.0)
    elapsed = time.perf_counter() - started
    assert len(result.output) == N_ITEMS
    return elapsed, result


def register_quantiles(result):
    merged = None
    for stage in result.stats:
        data = stage.get("histograms", {}).get("broker_register_ms")
        if not data:
            continue
        histogram = Histogram.from_dict(data)
        if merged is None:
            merged = histogram
        else:
            merged.merge(histogram)
    assert merged is not None and merged.total >= N_STAGES
    return merged.quantile(0.5), merged.quantile(0.99)


def test_bench_fleet_density(benchmark, tmp_path):
    elapsed, result = benchmark.pedantic(
        host_the_fleet, args=(str(tmp_path),), rounds=1
    )

    host_stats = [s for s in result.stats if s.get("role") == "host"]
    broker_stats = [s for s in result.stats if s.get("role") == "broker"]
    assert len(host_stats) == 1, "density means ONE host process"
    stages_hosted = host_stats[0]["hosted"]
    assert stages_hosted == N_STAGES

    # The acceptance gate, through the real CLI: every hosted reader's
    # accepted slices must tile [0, N_ITEMS) exactly — no datum lost
    # or duplicated anywhere along the 499 links.
    assert result.trace_files
    assert trace_main([*result.trace_files,
                       "--verify-once", str(N_ITEMS)]) == 0

    # Aggregate work: every link delivers the full stream once.
    links = N_STAGES - 1
    deliveries = N_ITEMS * links
    relayed = broker_stats[0]["counters"]["relayed_frames"]
    p50, p99 = register_quantiles(result)

    publish(
        "fleet_density",
        ["stages hosted", "processes", "links", "elapsed s",
         "deliveries/s", "register p50 ms", "register p99 ms",
         "relayed frames"],
        [[stages_hosted, 2, links, f"{elapsed:.2f}",
          f"{deliveries / elapsed:.0f}", f"{p50:.2f}", f"{p99:.2f}",
          relayed]],
        title=(
            f"T15: {stages_hosted}-stage pipeline hosted by one "
            f"eden-broker + one eden-host process "
            f"({'quick' if QUICK else 'full'} mode, {CORES} core(s)); "
            f"{N_ITEMS} records end to end, exactly-once verified via "
            f"eden-trace --verify-once"
        ),
        stages_hosted=stages_hosted,
        processes=2,
        items=N_ITEMS,
        exactly_once_verified=True,
        cpu_cores=CORES,
        quick=QUICK,
    )

    assert stages_hosted >= (80 if QUICK else 500)
    # Every link's stream crossed the broker: at least one DATA frame
    # per batch per link (plus READs, ENDs and handshakes on top).
    assert relayed >= links * (N_ITEMS // FLOW.batch)
