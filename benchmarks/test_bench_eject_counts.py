"""T2 — the paper's Eject-count claims (C1 + C2), swept over n.

§4: "a sequence of n filters, a source and a sink can all be
implemented by n+2 Ejects ... [conventionally] n+1 passive buffer
Ejects [are needed]" — i.e. 2n+3 Ejects in total.
"""

from repro.analysis import measure_pipeline, shape_for

from conftest import publish

LENGTHS = (1, 2, 4, 8, 16)
ITEMS = 20


def sweep():
    rows = []
    for n_filters in LENGTHS:
        row = {"n": n_filters}
        for discipline in ("readonly", "writeonly", "conventional"):
            row[discipline] = measure_pipeline(discipline, n_filters, ITEMS)
        rows.append(row)
    return rows


def test_bench_eject_counts(benchmark):
    rows = benchmark(sweep)

    table_rows = []
    for row in rows:
        n_filters = row["n"]
        for discipline in ("readonly", "writeonly", "conventional"):
            measurement = row[discipline]
            shape = shape_for(discipline, n_filters)
            assert measurement.ejects == shape.ejects, (discipline, n_filters)
            assert measurement.buffers == shape.buffers
        table_rows.append([
            n_filters,
            row["readonly"].ejects, f"n+2={n_filters + 2}",
            row["conventional"].ejects, f"2n+3={2 * n_filters + 3}",
            row["conventional"].buffers, f"n+1={n_filters + 1}",
        ])

    publish(
        "t2_eject_counts",
        ["n filters", "read-only ejects", "paper", "conventional ejects",
         "paper", "buffers", "paper"],
        table_rows,
        title="T2: Ejects needed per pipeline (read-only vs conventional)",
    )
