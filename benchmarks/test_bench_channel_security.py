"""T6 — channel security (claim C4, paper §5).

"if E is told to read from F's channel 1, nothing prevents it from
reading from F's channel 2 as well.  One way of overcoming this
problem is to use UIDs as channel identifiers: because UIDs cannot be
forged, the only Ejects which are able to make valid ReadonChannel
requests of F are those to which a channel identifier has been given
explicitly."

The benchmark mounts the dishonest-programmer attack against both
identifier schemes and measures the cost of the secure one (per-datum
cost: none; wiring cost: one capability handshake per connection).
"""

import random

from repro.core import Kernel
from repro.core.capability import ChannelCapability
from repro.core.errors import ChannelSecurityError, EdenError
from repro.filters import identity, with_reports
from repro.transput import CollectorSink, ListSource, ReadOnlyFilter

from conftest import publish

ITEMS = [f"secret-{i}" for i in range(10)]


def build_reporter(kernel, mode):
    source = kernel.create(ListSource, items=ITEMS)
    return kernel.create(
        ReadOnlyFilter,
        transducer=with_reports(identity(), "F", every=3),
        inputs=[source.output_endpoint()],
        channel_mode=mode,
    )


def attack(kernel, target, channels):
    """Try to read another Eject's channel; count successful thefts."""
    stolen = 0
    for channel in channels:
        try:
            transfer = kernel.call_sync(target.uid, "Read", 1, channel=channel)
        except EdenError:
            continue
        if not transfer.at_end:
            stolen += 1
    return stolen


def run_experiment():
    # Open mode: integer and name identifiers are guessable.
    open_kernel = Kernel()
    open_filter = build_reporter(open_kernel, "open")
    open_thefts = attack(
        open_kernel, open_filter, ["Report", 1, 0, "Output"]
    )

    # Capability mode: name/integer guesses fail; so do forged and
    # randomly guessed secrets.
    cap_kernel = Kernel()
    cap_filter = build_reporter(cap_kernel, "capability")
    genuine = cap_filter.output_endpoint("Report").channel
    rng = random.Random("t6-attack")
    guesses = ["Report", 1, 0] + [
        ChannelCapability(
            owner=genuine.owner, name="Report", secret=rng.getrandbits(64)
        )
        for _ in range(64)
    ]
    cap_thefts = attack(cap_kernel, cap_filter, guesses)

    # The legitimate holder still reads fine (and pays no extra
    # per-datum invocations).
    holder_kernel = Kernel()
    holder_filter = build_reporter(holder_kernel, "capability")
    sink = holder_kernel.create(
        CollectorSink, inputs=[holder_filter.output_endpoint("Output")]
    )
    start = holder_kernel.stats.snapshot()
    holder_kernel.run(until=lambda: sink.done)
    holder_kernel.run()
    secure_invocations = holder_kernel.stats.snapshot().diff(start)[
        "invocations_sent"
    ]

    baseline_kernel = Kernel()
    baseline_filter = build_reporter(baseline_kernel, "open")
    baseline_sink = baseline_kernel.create(
        CollectorSink, inputs=[baseline_filter.output_endpoint("Output")]
    )
    start = baseline_kernel.stats.snapshot()
    baseline_kernel.run(until=lambda: baseline_sink.done)
    baseline_kernel.run()
    open_invocations = baseline_kernel.stats.snapshot().diff(start)[
        "invocations_sent"
    ]

    assert sink.collected == baseline_sink.collected == ITEMS
    return open_thefts, cap_thefts, open_invocations, secure_invocations


def test_bench_channel_security(benchmark):
    open_thefts, cap_thefts, open_inv, secure_inv = benchmark(run_experiment)

    # Integer/name identifiers: the attack succeeds.
    assert open_thefts >= 2
    # Capabilities: every guess (names, integers, 64 forged secrets) fails.
    assert cap_thefts == 0
    # And security is free per datum.
    assert secure_inv == open_inv

    # Direct check that the rejection is the *security* error, not a
    # missing channel.
    kernel = Kernel()
    target = build_reporter(kernel, "capability")
    try:
        kernel.call_sync(target.uid, "Read", 1, channel="Report")
        raise AssertionError("forged read should have been rejected")
    except ChannelSecurityError:
        pass

    publish(
        "t6_channel_security",
        ["identifier scheme", "attack reads that succeeded",
         "legit per-stream invocations"],
        [
            ["integers / names (prototype §7)", open_thefts, open_inv],
            ["capabilities (UIDs as channel ids)", cap_thefts, secure_inv],
        ],
        title="T6: the dishonest-programmer attack against channel "
              "identifier schemes (64 forged secrets tried)",
    )
