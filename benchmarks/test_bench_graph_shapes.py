"""T17 — graph shapes: the DAG runtime costs exactly what the model says.

The graph redesign claims that non-linear topologies keep the paper's
C1/C2 economics *per edge*: a diamond (scatter over two branches, then
gather) moves every record over the same number of hops as the
equivalent linear chain, so its total invocations are predicted by
summing ``ceil(m_e / batch) + 1`` over its edges — where ``m_e`` is
each edge's share of the stream, not the whole of it.  This bench runs
the diamond and its linear twin on every runtime and fails if any
measured total drifts from the per-edge analytic sum by even one
invocation, then reports the diamond/linear cost ratio (1.0 when the
branch arithmetic is honest: two half-streams cost two half-predictions
plus two extra END frames per parallel hop).

``EDEN_BENCH_QUICK=1`` keeps the stream short and skips nothing — the
counts are exact at any length, which is the point.
"""

import os

from repro.analysis import predict_graph_invocations
from repro.api import GraphBuilder

from conftest import publish

QUICK = os.environ.get("EDEN_BENCH_QUICK") == "1"
RECORDS = 32 if QUICK else 256
ITEMS = [f"record-{i:04d}" for i in range(RECORDS)]
IDENTITY = "repro.transput:identity_transducer"
#: tcp is exact too, but slow; exercised once at the end rather than
#: inside the timed sweep.
TIMED_RUNTIMES = ("sim", "aio")


def linear_graph():
    # Four stages -> five edges: the same number of hops any single
    # record crosses in the diamond (whose split/join route but do not
    # transform).
    return (GraphBuilder(source=ITEMS, discipline="readonly", name="linear")
            .chain(IDENTITY, IDENTITY, IDENTITY, IDENTITY)
            .build())


def diamond_graph():
    return (GraphBuilder(source=ITEMS, discipline="readonly", name="diamond")
            .chain(IDENTITY)
            .scatter([IDENTITY], [IDENTITY], policy="round_robin")
            .gather()
            .build())


def predicted(graph):
    return sum(p.invocations for p in predict_graph_invocations(graph))


def sweep(workdir):
    measured = {}
    for build in (linear_graph, diamond_graph):
        graph = build()
        runs = {
            runtime: graph.run(runtime=runtime)
            for runtime in TIMED_RUNTIMES
        }
        runs["tcp"] = graph.run(
            runtime="tcp", workdir=f"{workdir}/{graph.name}")
        measured[graph.name] = (graph, runs)
    return measured


def test_bench_graph_shapes(benchmark, tmp_path):
    measured = benchmark.pedantic(sweep, args=(str(tmp_path),), rounds=1)

    table_rows = []
    for name, (graph, runs) in measured.items():
        expected = predicted(graph)
        outputs = {tuple(sorted(r.output)) for r in runs.values()}
        assert len(outputs) == 1, f"{name}: runtimes disagree on output"
        assert outputs == {tuple(sorted(ITEMS))}, name
        for runtime, result in runs.items():
            # The gate: measured == per-edge analytic sum, exactly.
            assert result.invocations == expected, (
                f"{name}/{runtime}: measured {result.invocations}, "
                f"predicted {expected}"
            )
        table_rows.append([
            name, len(graph.edges), expected,
            *(runs[runtime].invocations for runtime in ("sim", "aio", "tcp")),
        ])

    linear_cost = next(r[2] for r in table_rows if r[0] == "linear")
    diamond_cost = next(r[2] for r in table_rows if r[0] == "diamond")
    # Same hop count; the diamond pays only the extra END frames of
    # its second parallel branch (2 hops x 1 frame).
    assert diamond_cost == linear_cost + 2

    publish(
        "t17_graph_shapes",
        ["graph", "edges", "predicted", "sim", "aio", "tcp"],
        table_rows,
        title=f"T17: per-edge C1/C2 predictions vs measured invocations, "
              f"m={RECORDS} records (diamond = linear + 2 END frames)",
        records=RECORDS,
    )
