"""T11 — observability must be free when it is off.

The span/trace instrumentation added for ``repro.obs`` puts an
``emit`` call on every invocation, reply and context switch of the
simulated kernel.  Those calls are gated on ``Tracer.enabled`` and
must cost (next to) nothing while disabled: this guard measures the
same pipeline against a do-nothing tracer stub — the closest runnable
stand-in for "instrumentation compiled out" — and fails if the real
disabled :class:`~repro.core.tracing.Tracer` adds 2% or more.

The enabled-tracing and span-tracing timings are recorded alongside
(in ``BENCH_obs_latency.json``) for information; they are allowed to
cost whatever they cost.
"""

from __future__ import annotations

import time

from repro.core.kernel import Kernel
from repro.transput.filterbase import identity_transducer
from repro.transput.pipeline import compose_segment

from conftest import publish

N_FILTERS = 3
ITEMS = [f"rec-{index}" for index in range(400)]
REPEATS = 7
MAX_OVERHEAD_PCT = 2.0


class _NoopTracer:
    """Tracing 'compiled out': emit does not even test a flag."""

    enabled = False

    def emit(self, *_args, **_kwargs) -> None:
        return


def _run_once(trace: bool = False, spans: bool = False,
              stub: bool = False) -> None:
    kernel = Kernel(trace=trace, spans=spans)
    if stub:
        kernel.tracer = _NoopTracer()
    pipeline = compose_segment(
        kernel, "readonly", ITEMS,
        [identity_transducer(f"f{index}") for index in range(N_FILTERS)],
    )
    pipeline.run_to_completion()


def _best_of(repeats: int, **kwargs: bool) -> float:
    """Minimum wall time over ``repeats`` runs (noise-floor estimator)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        _run_once(**kwargs)
        best = min(best, time.perf_counter() - started)
    return best


def test_bench_obs_overhead(benchmark):
    baseline = _best_of(REPEATS, stub=True)
    disabled = benchmark.pedantic(
        lambda: _best_of(REPEATS), rounds=1
    )
    overhead_pct = (disabled - baseline) / baseline * 100.0
    if overhead_pct >= MAX_OVERHEAD_PCT:
        # One remeasure before failing: a 2% bound on two ~matched
        # timings is within scheduler-noise reach on a loaded box.
        baseline = _best_of(REPEATS, stub=True)
        disabled = _best_of(REPEATS)
        overhead_pct = (disabled - baseline) / baseline * 100.0

    traced = _best_of(3, trace=True)
    spanned = _best_of(3, trace=True, spans=True)

    publish(
        "obs_latency",
        ["configuration", "best-of runtime (s)", "vs no-op stub"],
        [
            ["no-op tracer stub", f"{baseline:.4f}", "1.00x"],
            ["disabled Tracer (default)", f"{disabled:.4f}",
             f"{disabled / baseline:.3f}x"],
            ["tracing enabled", f"{traced:.4f}", f"{traced / baseline:.3f}x"],
            ["tracing + spans", f"{spanned:.4f}",
             f"{spanned / baseline:.3f}x"],
        ],
        title=(
            f"T11: kernel instrumentation overhead (readonly, n={N_FILTERS}, "
            f"m={len(ITEMS)}, best of {REPEATS}); disabled tracing must add "
            f"< {MAX_OVERHEAD_PCT:.0f}%"
        ),
        overhead_pct=round(overhead_pct, 3),
        limit_pct=MAX_OVERHEAD_PCT,
    )
    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"disabled tracing adds {overhead_pct:.2f}% "
        f"(limit {MAX_OVERHEAD_PCT}%)"
    )
