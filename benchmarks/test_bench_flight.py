"""T16 — flight-recorder overhead on the fast data plane.

Runs the T13 binary+pipelined configuration (binary codec, batch=32,
eight READs in flight) three times: recorder off, recorder in digest
mode (CRC-32 per frame), recorder in full mode (complete wire bytes
per frame).  Throughput is the same two-point marginal measurement
T13 uses, so fleet-spawn cost cancels; capture volume is read back
from the segment files each run leaves behind.

Acceptance (ISSUE PR-8): digest mode — the always-on production
setting — must cost <= 5 % of the fleet's run time.  Two numbers are
committed per mode:

* **recorder share** (gated): the recorder's self-timed seconds —
  every ``FlightRecorder.record()`` call accumulates into the
  ``flight_record_ms`` gauge, clock reads included — summed across
  the fleet's stages, as a fraction of the run's marginal wall time.
  Direct attribution is immune to the run-to-run scheduling noise of
  a shared runner, which on this hardware swings end-to-end wall
  time by more than the effect being measured.
* **wall overhead** (informational): the classic differential — the
  mode's marginal throughput vs. recorder-off, paired within each
  repetition, median across repetitions.  Committed so drift shows
  up in review, but too noisy on a shared 1-core runner to gate a
  single-digit percentage.

Full mode is measured and committed for the record but not gated: it
exists for replay fidelity, not for hot paths.  In
``EDEN_BENCH_QUICK=1`` mode the streams are short enough that the
handshake frames weigh disproportionately, so the gate loosens.
"""

import os
import pathlib
import time

from repro.core.stats import Histogram
from repro.net.launch import IDENTITY, plan_linear_fleet, run_fleet
from repro.transput import FlowPolicy

from conftest import publish

QUICK = os.environ.get("EDEN_BENCH_QUICK") == "1"
CORES = os.cpu_count() or 1

#: Digest-mode gate on the recorder's attributed share of run time.
#: The real 5 % gate needs full-length streams; quick mode's marginal
#: wall times span well under a second, so its gate only catches
#: catastrophic regressions (a sync flush per frame, an extra copy on
#: the read path).
MAX_DIGEST_OVERHEAD = 0.25 if QUICK else 0.05

#: (short, long) stream lengths.  Longer than T13's fast-plane points
#: on purpose: an overhead ratio needs the marginal time itself to be
#: well clear of scheduler noise, and this data plane streams T13's
#: 20k records in ~0.3 s.
POINTS = (1000, 10000) if QUICK else (5000, 100000)

#: Repetitions per point; overheads pair within a repetition and the
#: median across repetitions is the estimator.
REPS = 2 if QUICK else 5

#: The T13 fast plane this PR's recorder must not slow down.
FAST_FLOW = FlowPolicy(batch=32, pipeline_depth=8)


def timed_fleet(workdir, count, flight_dir, flight_mode):
    plans = plan_linear_fleet(
        "readonly", [IDENTITY], workdir,
        source_count=count, source_seed=11, codec="binary", flow=FAST_FLOW,
        flight_dir=flight_dir, flight_mode=flight_mode or "full",
    )
    started = time.perf_counter()
    result = run_fleet(plans, timeout=600.0)
    elapsed = time.perf_counter() - started
    assert len(result.output) == count
    return elapsed, result


def read_quantiles(result):
    merged = None
    for stage in result.stats:
        data = stage.get("histograms", {}).get("read_rtt_ms")
        if not data:
            continue
        histogram = Histogram.from_dict(data)
        if merged is None:
            merged = histogram
        else:
            merged.merge(histogram)
    if merged is None or not merged.total:
        return None, None
    return merged.quantile(0.5), merged.quantile(0.99)


def recorder_seconds(result):
    """Self-timed seconds spent in record() across the fleet's stages."""
    return sum(
        stage.get("gauges", {}).get("flight_record_ms", 0.0)
        for stage in result.stats
    ) / 1000.0


def capture_bytes(flight_dir):
    """On-disk capture volume one run produced (0 when recording off)."""
    if flight_dir is None:
        return 0
    return sum(
        path.stat().st_size
        for path in pathlib.Path(flight_dir).rglob("seg-*.efl")
    )


MODES = ("off", "digest", "full")


def median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def sweep(workdir):
    """Marginal throughput per recorder mode, drift-compensated.

    Two defences against ambient noise on a shared 1-core runner.
    First, modes interleave within every repetition (off, digest,
    full, off, ...), and the overhead ratio is computed *per
    repetition* from runs seconds apart, so slow drift — CI
    neighbours, page-cache warming — hits every mode in a pair alike
    instead of biasing whichever happens to measure first.  Second,
    the median over repetitions is the estimator: a single stalled
    run shifts one repetition's ratio, not the verdict.  Fleet-spawn
    cost still cancels through the two-point marginal, as in T13.
    """
    small, large = POINTS
    # One untimed warmup fleet: the very first spawn pays cold
    # imports and page-cache misses.
    timed_fleet(f"{workdir}/warmup", small, None, None)

    def one(mode, count, rep):
        run_dir = f"{workdir}/{mode}-m{count}-r{rep}"
        flight_dir = None if mode == "off" else f"{run_dir}/flight"
        elapsed, result = timed_fleet(
            run_dir, count, flight_dir, None if mode == "off" else mode
        )
        return elapsed, result, flight_dir

    t_small = {mode: [] for mode in MODES}
    rec_small = {mode: [] for mode in MODES}
    for rep in range(REPS):
        for mode in MODES:
            elapsed, result, _ = one(mode, small, rep)
            t_small[mode].append(elapsed)
            rec_small[mode].append(recorder_seconds(result))
    spawn_floor = {mode: min(t_small[mode]) for mode in MODES}
    rec_floor = {mode: median(rec_small[mode]) for mode in MODES}

    throughput = {mode: [] for mode in MODES}
    share = {mode: [] for mode in MODES}
    last = {}
    for rep in range(REPS):
        for mode in MODES:
            t_large, result, flight_dir = one(mode, large, rep)
            marginal = max(0.02, t_large - spawn_floor[mode])
            throughput[mode].append((large - small) / marginal)
            share[mode].append(
                max(0.0, recorder_seconds(result) - rec_floor[mode])
                / marginal
            )
            last[mode] = (result, flight_dir)

    matrix = {}
    for mode in MODES:
        result, flight_dir = last[mode]
        p50, p99 = read_quantiles(result)
        matrix[mode] = {
            "throughput": median(throughput[mode]),
            # The gated number: record()'s own clock, marginal over
            # the short point, as a share of marginal run time.
            "record_share": (
                None if mode == "off" else median(share[mode])
            ),
            # Paired per repetition, then the median: robust to any
            # single run landing on a noisy stretch — but still only
            # informational on a shared runner.
            "wall_overhead": None if mode == "off" else median([
                1.0 - pair / base
                for pair, base in zip(throughput[mode], throughput["off"])
            ]),
            "p50_ms": p50,
            "p99_ms": p99,
            "capture_bytes_per_datum": capture_bytes(flight_dir) / large,
        }
    return matrix


def test_bench_flight(benchmark, tmp_path):
    matrix = benchmark.pedantic(sweep, args=(str(tmp_path),), rounds=1)

    def fmt(value, pattern="{:.2f}"):
        return "-" if value is None else pattern.format(value)

    shares = {
        mode: matrix[mode]["record_share"] for mode in ("digest", "full")
    }
    walls = {
        mode: matrix[mode]["wall_overhead"] for mode in ("digest", "full")
    }
    rows = [
        [mode, f"{m['throughput']:.0f}", fmt(m["p50_ms"]), fmt(m["p99_ms"]),
         f"{m['capture_bytes_per_datum']:.1f}",
         "-" if mode == "off" else f"{shares[mode] * 100.0:.2f}%",
         "-" if mode == "off" else f"{walls[mode] * 100.0:+.1f}%"]
        for mode, m in matrix.items()
    ]
    publish(
        "flight",
        ["recorder", "records/s", "p50 ms", "p99 ms",
         "capture bytes/datum", "recorder share", "wall overhead"],
        rows,
        title=(
            "T16: flight-recorder overhead on the T13 binary+pipelined "
            f"path ({'quick' if QUICK else 'full'} mode, {CORES} core(s)); "
            f"batch={FAST_FLOW.batch}, "
            f"depth={FAST_FLOW.effective_pipeline_depth()}"
        ),
        digest_record_share=round(shares["digest"], 4),
        full_record_share=round(shares["full"], 4),
        digest_wall_overhead=round(walls["digest"], 4),
        full_wall_overhead=round(walls["full"], 4),
        max_digest_overhead=MAX_DIGEST_OVERHEAD,
        cpu_cores=CORES,
        quick=QUICK,
    )

    # The acceptance gate: digest capture is cheap enough to leave on.
    assert shares["digest"] <= MAX_DIGEST_OVERHEAD, (
        f"digest-mode recording consumed {shares['digest']:.2%} of the "
        f"fleet's marginal run time; the gate is {MAX_DIGEST_OVERHEAD:.0%}"
    )
    # Both modes actually captured frames (the runs were recorded).
    assert matrix["digest"]["capture_bytes_per_datum"] > 0
    assert matrix["full"]["capture_bytes_per_datum"] > 0
    # Digest records are fixed-size stubs; full records carry payloads.
    assert (matrix["digest"]["capture_bytes_per_datum"]
            < matrix["full"]["capture_bytes_per_datum"])
