"""T7 — the bootstrap transput system (paper §7).

NewStream / UseStream copy a Unix file through Eden, optionally via a
filter.  The benchmark measures invocations per line copied and the
per-stream setup overhead (the transient UnixFile Ejects that are
created, used and allowed to disappear).
"""

from repro.core import Kernel
from repro.devices import random_lines
from repro.filesystem import HostFileSystem, UnixFileSystem
from repro.filters import upper_case
from repro.transput import ReadOnlyFilter, StreamEndpoint

from conftest import publish

LINE_COUNTS = (10, 100, 400)


def copy_file(lines: int, with_filter: bool):
    kernel = Kernel()
    hostfs = HostFileSystem()
    hostfs.mkdir("/data")
    content = random_lines(count=lines, seed=lines)
    hostfs.write_file("/data/in", content)
    unixfs = kernel.create(UnixFileSystem, hostfs=hostfs)

    start = kernel.stats.snapshot()
    stream = kernel.call_sync(unixfs.uid, "NewStream", "/data/in")
    endpoint = StreamEndpoint(stream, None)
    if with_filter:
        stage = kernel.create(
            ReadOnlyFilter, transducer=upper_case(), inputs=[endpoint]
        )
        endpoint = stage.output_endpoint()
    kernel.call_sync(unixfs.uid, "UseStream", "/data/out", endpoint)
    kernel.run()
    delta = kernel.stats.snapshot().diff(start)

    copied = hostfs.read_file("/data/out")
    expected = [line.upper() for line in content] if with_filter else content
    assert copied == expected
    return delta, kernel


def sweep():
    results = {}
    for lines in LINE_COUNTS:
        for with_filter in (False, True):
            results[(lines, with_filter)] = copy_file(lines, with_filter)
    return results


def test_bench_bootstrap_fs(benchmark):
    results = benchmark(sweep)

    rows = []
    for lines in LINE_COUNTS:
        for with_filter in (False, True):
            delta, kernel = results[(lines, with_filter)]
            invocations = delta["invocations_sent"]
            rows.append([
                lines,
                "copy+filter" if with_filter else "plain copy",
                invocations,
                f"{invocations / lines:.2f}",
                delta["ejects_created"],
            ])
            # Per-datum cost: one Transfer per line per hop (+END and
            # the 2 setup invocations).  Plain copy: 1 hop.  Filtered: 2.
            hops = 2 if with_filter else 1
            assert invocations == hops * (lines + 1) + 2, (lines, with_filter)

    # Amortization shape: invocations/line approaches the hop count.
    small_delta, _ = results[(10, False)]
    large_delta, _ = results[(400, False)]
    assert large_delta["invocations_sent"] / 400 < (
        small_delta["invocations_sent"] / 10
    )

    publish(
        "t7_bootstrap_fs",
        ["lines", "mode", "invocations", "inv/line", "ejects created"],
        rows,
        title="T7: bootstrap NewStream/UseStream file copies (setup = 2 "
              "invocations + transient UnixFile Ejects)",
    )
