"""F2 — Figure 2: the same pipeline with "read only" transput.

"The filters F_i all perform active input and passive output.  The
sink actively inputs and the source passively outputs."  No pipes at
all, and (vs Figure 1) fewer invocations for the same work.
"""

from repro.analysis import format_ratio
from repro.figures import build_figure1, build_figure2, default_input
from repro.transput import Primitive

from conftest import publish

ITEMS = default_input(lines=60)


def run_figure2():
    run = build_figure2(items=ITEMS)
    output = run.run()
    return run, output


def test_bench_figure2(benchmark):
    run, output = benchmark(run_figure2)

    baseline = build_figure1(items=ITEMS)
    baseline_output = baseline.run()
    assert output == baseline_output  # same computation, new discipline

    # Structural facts: n + 2 Ejects, no buffers.
    assert run.eject_count() == 5
    for eject in run.ejects:
        assert eject.interface_primitives() <= {
            Primitive.ACTIVE_INPUT, Primitive.PASSIVE_OUTPUT
        }

    # The cost claim: fewer invocations than Figure 1, approaching half
    # as n grows (exactly (n+1)/(2n+2) per hop; ends differ slightly
    # because Figure 1's terminal hops have no pipes).
    assert run.invocations_used() < baseline.invocations_used()

    publish(
        "fig2_readonly_pipeline",
        ["metric", "figure 2 (read-only)", "figure 1 (Unix)"],
        [
            ["ejects", run.eject_count(), baseline.eject_count()],
            ["passive buffers", 0, 2],
            ["invocations", run.invocations_used(),
             baseline.invocations_used()],
            ["invocations ratio",
             format_ratio(run.invocations_used(),
                          baseline.invocations_used()), "1.00x"],
        ],
        title="Figure 2 vs Figure 1 (same filters, same input)",
    )
