"""T4 — laziness vs parallelism (§4, claim C5).

"Laziness, however, is not desirable in a system which permits
parallel execution.  Instead, one would prefer that each Eject does a
certain amount of computation in advance ... In this way all the
Ejects in a pipeline can run concurrently."

The sweep runs a read-only pipeline of compute-heavy filters with
lookahead 0 (pure lazy) through 64, measuring virtual makespan.  The
curve should fall steeply from the serialized case toward the
pipeline-parallel bound and then flatten — more buffer than the
pipeline's depth buys nothing.
"""

from repro.analysis import predicted_pipelined_makespan
from repro.core import Kernel
from repro.transput import FlowPolicy, compose_readonly_pipeline
from repro.transput.filterbase import identity_transducer

from conftest import publish

ITEMS = [f"record-{i}" for i in range(30)]
N_FILTERS = 3
WORK_COST = 4.0
LOOKAHEADS = (0, 1, 2, 4, 8, 16, 64)


def run_once(lookahead: int) -> float:
    kernel = Kernel()
    transducers = []
    for _ in range(N_FILTERS):
        transducer = identity_transducer()
        transducer.cost_per_item = WORK_COST
        transducers.append(transducer)
    pipeline = compose_readonly_pipeline(
        kernel, ITEMS, transducers,
        flow=FlowPolicy(lookahead=lookahead),
        source_work_cost=WORK_COST,
        sink_work_cost=WORK_COST,
    )
    output = pipeline.run_to_completion()
    assert output == ITEMS
    return pipeline.virtual_makespan


def sweep():
    return {lookahead: run_once(lookahead) for lookahead in LOOKAHEADS}


def test_bench_buffering(benchmark):
    makespans = benchmark(sweep)

    lazy = makespans[0]
    ideal = predicted_pipelined_makespan(N_FILTERS, len(ITEMS), WORK_COST)
    rows = [
        [lookahead, makespans[lookahead],
         f"{lazy / makespans[lookahead]:.2f}x",
         f"{makespans[lookahead] / ideal:.2f}"]
        for lookahead in LOOKAHEADS
    ]

    # Shape: monotone-ish improvement, big early win, then flat.
    assert makespans[8] < lazy / 2, makespans
    assert abs(makespans[16] - makespans[64]) / makespans[16] < 0.2

    # Lazy execution serializes: makespan ≈ items * stages * work, i.e.
    # far above the pipeline-parallel bound.
    assert lazy > 2.5 * ideal

    publish(
        "t4_buffering",
        ["lookahead", "virtual makespan", "speedup vs lazy",
         "x pipeline-parallel bound"],
        rows,
        title=f"T4: anticipatory buffering (n={N_FILTERS} filters @ "
              f"{WORK_COST} cost/record, m={len(ITEMS)}; bound="
              f"{ideal:.0f})",
    )
