"""T9 — batching vs bandwidth: when do fewer invocations stop helping?

An extension experiment beyond the paper's analytic claims.  The paper
argues per-message cost dominates ("the cost of an invocation must
inevitably be higher than that of a system call"), which favours the
read-only scheme's halved message count and favours batching.  But on
a finite interconnect (10 Mbit Ethernet!), bytes cost too.  This sweep
varies the Read batch size under latency-only vs bandwidth-limited
transports:

- latency-dominated: virtual makespan falls ~1/batch — batch as hard
  as you like;
- bandwidth-limited: makespan flattens at the wire's byte rate — the
  crossover where protocol overhead stops mattering.

Invocation counts still halve for read-only regardless (T1); this
bench maps when that *matters*.
"""

from repro.core import Kernel, TransportCosts
from repro.devices import random_lines
from repro.transput import FlowPolicy, compose_readonly_pipeline
from repro.transput.filterbase import identity_transducer

from conftest import publish

ITEMS = random_lines(count=64, width=12, seed=42)  # ~100 bytes/record
BATCHES = (1, 2, 4, 8, 16)


def run_once(batch: int, bandwidth: float | None) -> tuple[float, int]:
    kernel = Kernel(
        costs=TransportCosts(
            local_latency=1.0, remote_latency=1.0, bandwidth=bandwidth
        )
    )
    pipeline = compose_readonly_pipeline(
        kernel, ITEMS, [identity_transducer(), identity_transducer()],
        flow=FlowPolicy(batch=batch),
    )
    output = pipeline.run_to_completion()
    assert output == ITEMS
    return pipeline.virtual_makespan, pipeline.invocations_used()


def sweep():
    results = {}
    for batch in BATCHES:
        results[(batch, "latency-only")] = run_once(batch, bandwidth=None)
        results[(batch, "bandwidth-limited")] = run_once(batch, bandwidth=50.0)
    return results


def test_bench_bandwidth(benchmark):
    results = benchmark(sweep)

    rows = []
    for batch in BATCHES:
        latency_span, invocations = results[(batch, "latency-only")]
        limited_span, _ = results[(batch, "bandwidth-limited")]
        rows.append([
            batch, invocations, latency_span, limited_span,
            f"{limited_span / latency_span:.1f}",
        ])

    # Latency-only: batching k-fold cuts makespan nearly k-fold.
    lat1 = results[(1, "latency-only")][0]
    lat16 = results[(16, "latency-only")][0]
    assert lat16 < lat1 / 8

    # Bandwidth-limited: returns diminish — the byte cost of the
    # records themselves sets a floor batching cannot cross.
    bw1 = results[(1, "bandwidth-limited")][0]
    bw8 = results[(8, "bandwidth-limited")][0]
    bw16 = results[(16, "bandwidth-limited")][0]
    assert bw16 < bw1  # batching still helps...
    assert (bw8 - bw16) / bw8 < 0.35  # ...but the curve has flattened
    # And the floor is the wire time for the payload, which latency-only
    # runs don't pay at all.
    assert bw16 > lat16 * 2

    publish(
        "t9_bandwidth",
        ["batch", "invocations", "latency-only makespan",
         "bandwidth-limited makespan", "slowdown"],
        rows,
        title="T9 (extension): Read batch size under infinite vs finite "
              f"bandwidth (m={len(ITEMS)} ~100B records, n=2 filters)",
    )
