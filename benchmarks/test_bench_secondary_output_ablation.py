"""T5b — ablation: the three §5 designs for multiple outputs.

The paper weighs three ways to give a read-only filter a report stream:

1. **secondary writes** — reports "volunteered in Write invocations"
   to a passive buffer ("This amounts to abandoning the 'read only'
   nature of the transput system");
2. **write-only throughout** — the dual discipline, where fan-out is
   natural;
3. **channel identifiers** — "a better solution is to admit the
   existence of multiple inputs and outputs explicitly".

The ablation measures each design's Ejects, invocations, and — the
paper's architectural point — which primitives appear at the filter's
interface.  Only the channel design keeps the filter purely read-only.
"""

from repro.core import Kernel
from repro.devices import PassiveReportWindow, ReportWindow
from repro.filters import identity, with_reports
from repro.transput import (
    ActiveSource,
    CollectorSink,
    ListSource,
    PassiveBuffer,
    PassiveSink,
    Primitive,
    ReadOnlyFilter,
    StreamEndpoint,
    WriteOnlyFilter,
)

from conftest import publish

ITEMS = [f"r{i}" for i in range(30)]
EVERY = 5


def design_secondary_writes():
    """Read-only primary + reports actively written into a buffer."""
    kernel = Kernel()
    source = kernel.create(ListSource, items=ITEMS)
    report_buffer = kernel.create(PassiveBuffer, name="report-buffer")
    stage = kernel.create(
        ReadOnlyFilter,
        transducer=with_reports(identity(), "F", every=EVERY),
        inputs=[source.output_endpoint()],
        secondary_outputs={
            "Report": [StreamEndpoint(report_buffer.uid, None)]
        },
    )
    sink = kernel.create(CollectorSink, inputs=[stage.output_endpoint()])
    window = kernel.create(
        CollectorSink, inputs=[StreamEndpoint(report_buffer.uid, None)],
        name="window",
    )
    start = kernel.stats.snapshot()
    kernel.run(until=lambda: sink.done and window.done)
    kernel.run()
    delta = kernel.stats.snapshot().diff(start)
    ejects = 5  # source, filter, report buffer, sink, window
    return sink.collected, window.collected, delta, stage, ejects


def design_writeonly():
    """The whole pipeline in the write-only discipline."""
    kernel = Kernel()
    window = kernel.create(PassiveReportWindow, name="window")
    sink = kernel.create(PassiveSink)
    stage = kernel.create(
        WriteOnlyFilter,
        transducer=with_reports(identity(), "F", every=EVERY),
        outputs={
            "Output": [StreamEndpoint(sink.uid, None)],
            "Report": [StreamEndpoint(window.uid, None)],
        },
    )
    kernel.create(
        ActiveSource, items=ITEMS, outputs=[StreamEndpoint(stage.uid, None)]
    )
    start = kernel.stats.snapshot()
    kernel.run(until=lambda: sink.done and window.done)
    kernel.run()
    delta = kernel.stats.snapshot().diff(start)
    ejects = 4  # source, filter, sink, window
    return sink.collected, list(window.lines), delta, stage, ejects


def design_channels():
    """Read-only with channel identifiers (the paper's preference)."""
    kernel = Kernel()
    source = kernel.create(ListSource, items=ITEMS)
    stage = kernel.create(
        ReadOnlyFilter,
        transducer=with_reports(identity(), "F", every=EVERY),
        inputs=[source.output_endpoint()],
    )
    sink = kernel.create(
        CollectorSink, inputs=[stage.output_endpoint("Output")]
    )
    window = kernel.create(
        ReportWindow, inputs=[("F", stage.output_endpoint("Report"))],
        name="window",
    )
    start = kernel.stats.snapshot()
    kernel.run(until=lambda: sink.done and window.done)
    kernel.run()
    delta = kernel.stats.snapshot().diff(start)
    ejects = 4  # source, filter, sink, window
    return sink.collected, [l.split(": ", 1)[1] for l in window.lines], \
        delta, stage, ejects


def run_all():
    return {
        "secondary writes": design_secondary_writes(),
        "write-only": design_writeonly(),
        "channels": design_channels(),
    }


def test_bench_secondary_output_ablation(benchmark):
    results = benchmark(run_all)

    outputs = {name: r[0] for name, r in results.items()}
    reports = {name: r[1] for name, r in results.items()}
    assert all(out == ITEMS for out in outputs.values())
    # All three carry the same report payloads.
    baseline_reports = reports["channels"]
    assert reports["write-only"] == baseline_reports
    assert reports["secondary writes"] == baseline_reports

    rows = []
    for name, (_out, _rep, delta, stage, ejects) in results.items():
        primitives = sorted(p.value for p in stage.interface_primitives())
        rows.append([
            name, ejects, delta["invocations_sent"], ", ".join(primitives)
        ])

    # The architectural claim: only the channel design keeps the filter
    # to the corresponding read-only pair.
    _, _, _, channel_stage, _ = results["channels"]
    assert channel_stage.interface_primitives() <= {
        Primitive.ACTIVE_INPUT, Primitive.PASSIVE_OUTPUT
    }
    _, _, _, hybrid_stage, _ = results["secondary writes"]
    assert Primitive.ACTIVE_OUTPUT in hybrid_stage.interface_primitives()

    # The buffer design also pays for it: an extra Eject and extra
    # invocations (reports traverse two hops instead of one).
    inv = {name: r[2]["invocations_sent"] for name, r in results.items()}
    ejects = {name: r[4] for name, r in results.items()}
    assert ejects["secondary writes"] == ejects["channels"] + 1
    assert inv["secondary writes"] > inv["channels"]

    publish(
        "t5b_secondary_output_ablation",
        ["design (§5)", "ejects", "invocations", "filter's primitives"],
        rows,
        title="T5b: multiple-output designs for a reporting filter "
              f"(m={len(ITEMS)}, report every {EVERY})",
    )
