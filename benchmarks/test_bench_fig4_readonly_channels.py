"""F4 — Figure 4: the pipeline of Figure 3 in the read-only discipline.

Channel identifiers restore multiple outputs to the read-only scheme:
"the double lines indicate Read(ReportStream) requests; the single
lines indicate Read(Output) requests.  It is assumed that the Report
Window is designed to read from multiple sources."

The benchmark checks the two figures compute identical primary output
and carry identical report payloads, and measures the capability-
secured variant's overhead (§5: "the cost of this additional security
is that more work is now necessary to connect a sink to its source" —
wiring work, not per-datum invocations).
"""

from repro.figures import build_figure3, build_figure4, default_input

from conftest import publish

ITEMS = default_input(lines=60)


def run_figure4():
    run = build_figure4(items=ITEMS, report_every=10)
    output = run.run()
    return run, output


def test_bench_figure4(benchmark):
    run, output = benchmark(run_figure4)

    fig3 = build_figure3(items=ITEMS, report_every=10)
    fig3_output = fig3.run()
    assert output == fig3_output  # exact duals compute the same stream

    # Same report payloads reach the shared window in both disciplines.
    fig4_payloads = sorted(
        line.split(": ", 1)[1] for line in run.window_lines(0)
    )
    assert fig4_payloads == sorted(fig3.window_lines(0))

    # Capability-mode variant: same data, forgery-proof channels.
    secure = build_figure4(items=ITEMS, report_every=10,
                           channel_mode="capability")
    secure_output = secure.run()
    assert secure_output == output
    assert secure.invocations_used() == run.invocations_used()

    publish(
        "fig4_readonly_channels",
        ["metric", "fig 4 (read-only)", "fig 3 (write-only)",
         "fig 4 (capabilities)"],
        [
            ["ejects", run.eject_count(), fig3.eject_count(),
             secure.eject_count()],
            ["invocations", run.invocations_used(),
             fig3.invocations_used(), secure.invocations_used()],
            ["report lines", len(run.window_lines(0)),
             len(fig3.window_lines(0)), len(secure.window_lines(0))],
            ["virtual makespan", run.virtual_makespan,
             fig3.virtual_makespan, secure.virtual_makespan],
        ],
        title="Figure 4 vs Figure 3 (report streams, dual disciplines)",
    )
