"""T1 — the paper's invocation-count claims (C1 + C2), swept over n.

§4: a read-only pipeline of n filters needs "only n+1 invocations ...
to transfer a datum from one end of the pipeline to the other.
Conversely, if each filter were to perform active output as well as
active input, 2n+2 invocations would be needed."

The sweep measures every discipline at n = 1..16 and checks the
measured counts equal the formulas *exactly* (including end-of-stream
traffic), and that the read-only / conventional ratio is exactly ½.
"""

import pytest

from repro.analysis import measure_pipeline, predicted_invocations

from conftest import publish

LENGTHS = (1, 2, 4, 8, 16)
ITEMS = 50


def sweep():
    rows = []
    for n_filters in LENGTHS:
        readonly = measure_pipeline("readonly", n_filters, ITEMS)
        writeonly = measure_pipeline("writeonly", n_filters, ITEMS)
        conventional = measure_pipeline("conventional", n_filters, ITEMS)
        rows.append((n_filters, readonly, writeonly, conventional))
    return rows


def test_bench_invocation_counts(benchmark):
    rows = benchmark(sweep)

    table_rows = []
    for n_filters, readonly, writeonly, conventional in rows:
        # Exactness against the closed forms.
        for measurement, discipline in (
            (readonly, "readonly"),
            (writeonly, "writeonly"),
            (conventional, "conventional"),
        ):
            assert measurement.invocations == predicted_invocations(
                discipline, n_filters, ITEMS
            ), (discipline, n_filters)
        # The headline ratio is exactly one half.
        assert readonly.invocations * 2 == conventional.invocations
        # Write-only is the exact dual.
        assert writeonly.invocations == readonly.invocations
        table_rows.append([
            n_filters,
            readonly.invocations,
            f"{n_filters + 1}(m+1)",
            conventional.invocations,
            f"{2 * n_filters + 2}(m+1)",
            f"{readonly.invocations / conventional.invocations:.2f}",
        ])

    publish(
        "t1_invocation_counts",
        ["n filters", "read-only inv", "paper", "conventional inv",
         "paper", "ratio"],
        table_rows,
        title=f"T1: invocations to move m={ITEMS} records (paper: n+1 vs "
              "2n+2 per datum; measured exactly, END included)",
    )


@pytest.mark.parametrize("batch", [1, 2, 8])
def test_bench_batching_ablation(benchmark, batch):
    """Ablation: batching divides the per-datum invocation cost in both
    disciplines without changing the 2x relationship."""
    readonly = benchmark(
        lambda: measure_pipeline("readonly", 4, ITEMS, batch=batch)
    )
    conventional = measure_pipeline("conventional", 4, ITEMS, batch=batch)
    assert readonly.invocations * 2 == conventional.invocations
    assert readonly.invocations == predicted_invocations(
        "readonly", 4, ITEMS, batch
    )
