"""T13 — the fast data plane: binary framing, pipelined reads, shards.

Measures steady-state single-link TCP throughput for the PR's data
plane (binary codec + batched, pipelined reads) against the original
JSON request/response baseline, plus the in-process runtimes for
context, and the sharded fleet's scaling curve.

Throughput is *marginal*: each configuration is timed at two stream
lengths and the rate is ``(m2 - m1) / (t2 - t1)``, which cancels the
fixed fleet-spawn cost (about a second of Python interpreter startup
per stage) that would otherwise swamp the fast configurations.
Latency quantiles come from the stages' ``read_rtt_ms`` histograms,
bytes/datum from the wire counters.

Acceptance (ISSUE T13): the fast plane must beat the JSON baseline by
>= 3x (>= 1.5x in ``EDEN_BENCH_QUICK=1`` mode, where streams are short
and CI machines noisy).  Shard scaling is asserted near-linear only
when the machine actually has the cores to show it; the measured curve
is committed either way — on a single-core container the fleet is
CPU-bound and extra shards only add process overhead, which is itself
worth having on record.
"""

import os
import time
import warnings

from repro.api import Pipeline
from repro.core.stats import Histogram
from repro.net.launch import IDENTITY, plan_linear_fleet, run_fleet
from repro.transput import FlowPolicy

from conftest import publish

QUICK = os.environ.get("EDEN_BENCH_QUICK") == "1"
CORES = os.cpu_count() or 1
MIN_SPEEDUP = 1.5 if QUICK else 3.0

#: Shard scaling is only a *scaling* measurement when the machine has
#: a core per shard; below that the curve measures contention, not the
#: data plane, and must be committed as such.
SHARD_CURVE_VALID = CORES >= 4

#: (short, long) stream lengths for the two-point marginal measurement.
BASE_POINTS = (300, 1200) if QUICK else (1000, 5000)
FAST_POINTS = (500, 2500) if QUICK else (2000, 20000)
INPROC_ITEMS = 1200 if QUICK else 5000
SHARD_POINTS = (200, 1000) if QUICK else (500, 6000)
SHARD_COUNTS = (1, 2, 4)

#: The PR's data plane: negotiated binary codec, batched reads, eight
#: READs in flight.  The baseline is plan_linear_fleet's defaults — JSON,
#: batch=1, strict request/response alternation (the PR-4 runtime).
FAST_FLOW = FlowPolicy(batch=32, pipeline_depth=8)


def timed_fleet(workdir, count, codec, flow):
    plans = plan_linear_fleet(
        "readonly", [IDENTITY], workdir,
        source_count=count, source_seed=11, codec=codec, flow=flow,
    )
    started = time.perf_counter()
    result = run_fleet(plans, timeout=600.0)
    elapsed = time.perf_counter() - started
    assert len(result.output) == count
    return elapsed, result


def read_quantiles(result):
    merged = None
    for stage in result.stats:
        data = stage.get("histograms", {}).get("read_rtt_ms")
        if not data:
            continue
        histogram = Histogram.from_dict(data)
        if merged is None:
            merged = histogram
        else:
            merged.merge(histogram)
    if merged is None or not merged.total:
        return None, None
    return merged.quantile(0.5), merged.quantile(0.99)


def measure_tcp(workdir, codec, flow, points):
    small, large = points
    # min-of-two per point, as measure_shards does: spawn-time noise
    # is one-sided, so the minimum is the stable estimator.
    t_small = min(
        timed_fleet(f"{workdir}/m{small}-r{i}", small, codec, flow)[0]
        for i in (1, 2)
    )
    timed = [
        timed_fleet(f"{workdir}/m{large}-r{i}", large, codec, flow)
        for i in (1, 2)
    ]
    t_large, result = min(timed, key=lambda pair: pair[0])
    throughput = (large - small) / max(0.02, t_large - t_small)
    p50, p99 = read_quantiles(result)
    return {
        "throughput": throughput,
        "p50_ms": p50,
        "p99_ms": p99,
        "bytes_per_datum": result.totals.get("bytes_sent") / large,
    }


def measure_inproc(runtime):
    items = [f"datum-{i:06d}" for i in range(INPROC_ITEMS)]
    pipeline = Pipeline([IDENTITY], source=items)
    started = time.perf_counter()
    result = pipeline.run(runtime=runtime)
    elapsed = time.perf_counter() - started
    assert len(result.output) == INPROC_ITEMS
    return {"throughput": INPROC_ITEMS / elapsed,
            "p50_ms": None, "p99_ms": None, "bytes_per_datum": 0.0}


def measure_shards(workdir, shards, points):
    small, large = points

    def one(count):
        items = [f"datum-{i:06d}" for i in range(count)]
        started = time.perf_counter()
        result = Pipeline([IDENTITY], source=items, shards=shards).run(
            runtime="tcp",
            workdir=f"{workdir}/s{shards}-m{count}",
            timeout=600.0, codec="binary", batch=8, pipeline_depth=4,
        )
        elapsed = time.perf_counter() - started
        assert sorted(result.output) == sorted(items)
        return elapsed

    # min-of-two per point: spawn-time noise is one-sided, so the
    # minimum is the stable estimator of the true cost.
    t_small = min(one(small), one(small))
    t_large = min(one(large), one(large))
    return (large - small) / max(0.02, t_large - t_small)


def sweep(workdir):
    matrix = {
        ("sim", "-"): measure_inproc("sim"),
        ("aio", "-"): measure_inproc("aio"),
        ("tcp", "json"): measure_tcp(
            f"{workdir}/json", "json", None, BASE_POINTS),
        ("tcp", "binary"): measure_tcp(
            f"{workdir}/binary", "binary", None, BASE_POINTS),
        ("tcp", "binary+pipelined"): measure_tcp(
            f"{workdir}/fast", "binary", FAST_FLOW, FAST_POINTS),
    }
    scaling = {
        shards: measure_shards(f"{workdir}/shards", shards, SHARD_POINTS)
        for shards in SHARD_COUNTS
    }
    return matrix, scaling


def test_bench_dataplane(benchmark, tmp_path):
    matrix, scaling = benchmark.pedantic(sweep, args=(str(tmp_path),),
                                         rounds=1)

    def fmt(value, pattern="{:.2f}"):
        return "-" if value is None else pattern.format(value)

    rows = [
        [runtime, codec, f"{m['throughput']:.0f}", fmt(m["p50_ms"]),
         fmt(m["p99_ms"]), f"{m['bytes_per_datum']:.1f}"]
        for (runtime, codec), m in matrix.items()
    ]
    shard_rows = [
        [shards, f"{tput:.0f}", f"{tput / scaling[1]:.2f}x"]
        for shards, tput in scaling.items()
    ]

    json_tput = matrix[("tcp", "json")]["throughput"]
    fast_tput = matrix[("tcp", "binary+pipelined")]["throughput"]
    speedup = fast_tput / json_tput

    publish(
        "dataplane",
        ["runtime", "codec", "records/s", "p50 ms", "p99 ms", "bytes/datum"],
        rows,
        title=(
            "T13: steady-state data-plane throughput, one identity filter "
            f"({'quick' if QUICK else 'full'} mode, {CORES} core(s)); "
            f"fast plane = binary codec, batch={FAST_FLOW.batch}, "
            f"depth={FAST_FLOW.effective_pipeline_depth()}"
        ),
        speedup_vs_json=round(speedup, 2),
        shard_scaling={
            "headers": ["shards", "records/s", "scaling"],
            "rows": shard_rows,
            "valid": SHARD_CURVE_VALID,
            "note": None if SHARD_CURVE_VALID else (
                f"measured on {CORES} core(s): shards contend for CPU, so "
                f"this curve records process overhead, not shard scaling"
            ),
        },
        shard_curve_valid=SHARD_CURVE_VALID,
        cpu_cores=CORES,
        quick=QUICK,
    )

    # The acceptance gate: the fast plane beats the JSON baseline.
    assert speedup >= MIN_SPEEDUP, (
        f"binary+pipelined={fast_tput:.0f} rec/s is only {speedup:.2f}x "
        f"the JSON baseline ({json_tput:.0f} rec/s); need {MIN_SPEEDUP}x"
    )
    # The binary codec moves fewer bytes per record at identical flow.
    assert (matrix[("tcp", "binary")]["bytes_per_datum"]
            < matrix[("tcp", "json")]["bytes_per_datum"])
    # Near-linear shard scaling needs the cores to run shards on; on
    # smaller machines the curve is committed — flagged invalid — and
    # the assertion is skipped with a visible warning, so a 4-shard
    # regression on real hardware still fails while a 1-core container
    # cannot bake a misleading sub-1x "baseline" into the gate.
    if SHARD_CURVE_VALID:
        assert scaling[4] >= 2.0 * scaling[1], scaling
    else:
        warnings.warn(
            f"shard-scaling assertion skipped: {CORES} core(s) < "
            f"{max(SHARD_COUNTS)} shards, curve committed with "
            f"shard_curve_valid=false",
            stacklevel=1,
        )
