"""T14 — multi-core scaling: core-pinned shards vs the free scheduler.

T13 committed an honest embarrassment: on its 1-core container the
4-shard curve *regressed* to 0.58x, and even on bigger machines the
unpinned fleet tends to stampede — every stage of every shard wakes on
the same few cores.  This benchmark measures what PR 7's placement
policy buys: the shard curve with each shard's sub-fleet pinned to its
own core (``placement_policy="cores"``) against the unpinned scheduler
(``"none"``), at 1/2/4 shards.

Honesty rules match T13.  The curve is only a *scaling* measurement
when the machine has a core per shard; ``shard_curve_valid`` says
whether this run's hardware could show scaling at the widest point,
and per-width gates apply only where the cores exist (>= 1.5x at 2
shards on >= 2 cores, >= 2.5x at 4 shards on >= 4 cores — the ISSUE's
acceptance numbers).  On narrower machines the measured curve is
committed anyway, flagged, with a visible warning — a 1-core container
must not bake a vacuous pass *or* a misleading regression into CI.

The committed JSON also records the data plane's zero-copy evidence
from the same runs: the frame-buffer pool hit rate and the
sendmsg/coalesced write split, so a regression that silently knocks
the fast paths off (pool always missing, every write falling back)
shows up in review even when throughput noise masks it.
"""

import os
import time
import warnings

from repro.api import Pipeline
from repro.net.affinity import available_cores
from repro.net.launch import IDENTITY

from conftest import publish

QUICK = os.environ.get("EDEN_BENCH_QUICK") == "1"
CORES = len(available_cores())

SHARD_COUNTS = (1, 2, 4)
SHARD_POINTS = (200, 1000) if QUICK else (500, 6000)

#: The ISSUE's acceptance floors, applied per width where cores exist.
GATES = {2: 1.5, 4: 2.5}

SHARD_CURVE_VALID = CORES >= max(SHARD_COUNTS)


def measure_shards(workdir, shards, policy, points):
    small, large = points

    def one(count):
        items = [f"datum-{i:06d}" for i in range(count)]
        started = time.perf_counter()
        result = Pipeline([IDENTITY], source=items, shards=shards).run(
            runtime="tcp",
            workdir=f"{workdir}/{policy}-s{shards}-m{count}",
            timeout=600.0, codec="binary", batch=8, pipeline_depth=4,
            placement_policy=policy if shards > 1 else None,
        )
        elapsed = time.perf_counter() - started
        assert sorted(result.output) == sorted(items)
        return elapsed, result

    # min-of-two per point: spawn-time noise is one-sided, so the
    # minimum is the stable estimator of the true cost.
    t_small = min(one(small)[0], one(small)[0])
    timed = [one(large), one(large)]
    t_large = min(elapsed for elapsed, _result in timed)
    result = min(timed, key=lambda pair: pair[0])[1]
    delta = t_large - t_small
    # A marginal under 20 ms is noise, not a measurement: committing
    # (large - small) / epsilon would bake a fantasy number into the
    # baseline.  Record the point as unmeasurable instead.
    throughput = (large - small) / delta if delta > 0.02 else None
    return throughput, result.stats.get("counters", {})


def plane_evidence(counters):
    """The zero-copy/vectored fingerprints of one run's counters."""
    sendmsg = int(counters.get("sendmsg_writes", 0))
    partial = int(counters.get("sendmsg_partial_writes", 0))
    joined = int(counters.get("coalesced_writes", 0))
    return {"sendmsg_writes": sendmsg, "sendmsg_partial_writes": partial,
            "coalesced_writes": joined}


def sweep(workdir):
    curves = {}
    evidence = {}
    for policy in ("cores", "none"):
        curve = {}
        for shards in SHARD_COUNTS:
            curve[shards], counters = measure_shards(
                f"{workdir}/{policy}", shards, policy, SHARD_POINTS
            )
        curves[policy] = curve
        evidence[policy] = plane_evidence(counters)
    return curves, evidence


def test_bench_multicore(benchmark, tmp_path):
    curves, evidence = benchmark.pedantic(sweep, args=(str(tmp_path),),
                                          rounds=1)
    pinned, unpinned = curves["cores"], curves["none"]

    def fmt(tput, base):
        if tput is None or base is None:
            return ("unmeasurable" if tput is None else f"{tput:.0f}"), "-"
        return f"{tput:.0f}", f"{tput / base:.2f}x"

    rows = [
        [shards, *fmt(pinned[shards], pinned[1]),
         *fmt(unpinned[shards], unpinned[1])]
        for shards in SHARD_COUNTS
    ]

    publish(
        "multicore",
        ["shards", "pinned rec/s", "pinned scaling",
         "unpinned rec/s", "unpinned scaling"],
        rows,
        title=(
            "T14: shard scaling, core-pinned (placement_policy='cores') vs "
            f"free scheduler ('none'); {CORES} core(s), "
            f"{'quick' if QUICK else 'full'} mode"
        ),
        cpu_cores=CORES,
        shard_curve_valid=SHARD_CURVE_VALID,
        gates={str(width): floor for width, floor in GATES.items()
               if CORES >= width},
        wire_evidence=evidence,
        quick=QUICK,
        note=None if SHARD_CURVE_VALID else (
            f"measured on {CORES} core(s): the widest points contend for "
            f"CPU, so this curve records process overhead, not scaling"
        ),
    )

    # Gate each width only where the hardware can show scaling; skip
    # loudly everywhere else so CI logs say why no gate ran.
    for width, floor in GATES.items():
        if CORES >= width:
            if pinned[width] is None or pinned[1] is None:
                warnings.warn(
                    f"{width}-shard gate skipped: marginal time under the "
                    f"measurement floor (streams finished too close "
                    f"together to time)",
                    stacklevel=1,
                )
                continue
            achieved = pinned[width] / pinned[1]
            assert achieved >= floor, (
                f"pinned {width}-shard scaling is {achieved:.2f}x on "
                f"{CORES} cores; the acceptance floor is {floor}x"
            )
        else:
            warnings.warn(
                f"{width}-shard gate skipped: {CORES} core(s) < {width}, "
                f"curve committed with shard_curve_valid="
                f"{str(SHARD_CURVE_VALID).lower()}",
                stacklevel=1,
            )
