"""T12 — what a mid-stream crash costs each discipline (extension).

The paper's asymmetric disciplines couple neighbours directly, so a
crashed filter takes the *session* down with it; the session-resume
protocol (``repro.net.protocol``) plus the fleet supervisor
(``repro.net.launch``) put it back losslessly.  This bench measures the
price of that recovery per discipline: the same pipeline runs once
clean and once with its middle filter killed at the k-th datum, and the
delta in wall time and on-wire frames is the recovery bill.

Shape asserted: every run — faulted or not — delivers the complete
output (exactly-once end to end); every faulted run recovers with
exactly one supervised restart; and recovery always costs extra frames
(redial, replayed prefix, dedup) — never fewer.
"""

import time

from repro.api import Pipeline
from repro.fault import FaultPlan

from conftest import publish

ITEMS = [f"datum-{i:02d}" for i in range(24)]
N_FILTERS = 3
KILL_AT = 9
IDENTITY = "repro.transput:identity_transducer"

DISCIPLINES = ("readonly", "writeonly", "conventional")


def run_once(discipline, workdir, faulted):
    pipeline = Pipeline([IDENTITY] * N_FILTERS, discipline=discipline,
                        source=ITEMS)
    knobs = dict(workdir=workdir, timeout=90.0, resume=True,
                 io_timeout=5.0)
    if faulted:
        knobs.update(faults={2: FaultPlan(kill_after=KILL_AT)},
                     max_restarts=2)
    started = time.perf_counter()
    result = pipeline.run(runtime="tcp", **knobs)
    elapsed = time.perf_counter() - started
    return result, elapsed


def sweep(workdir):
    rows = []
    for discipline in DISCIPLINES:
        clean, clean_s = run_once(discipline, f"{workdir}/{discipline}-clean",
                                  faulted=False)
        hurt, hurt_s = run_once(discipline, f"{workdir}/{discipline}-kill",
                                faulted=True)
        rows.append((discipline, clean, clean_s, hurt, hurt_s))
    return rows


def frames(result):
    return int(result.stats["counters"].get("frames_sent", 0))


def duplicates(result):
    return int(result.stats["counters"].get("duplicate_records", 0))


def test_bench_fault_recovery(benchmark, tmp_path):
    rows = benchmark.pedantic(sweep, args=(str(tmp_path),), rounds=1)

    table_rows = []
    for discipline, clean, clean_s, hurt, hurt_s in rows:
        # Lossless recovery is the claim: complete output both times,
        # exactly one supervised restart, never fewer frames than clean.
        assert clean.output == ITEMS, discipline
        assert hurt.output == ITEMS, discipline
        assert clean.restarts == 0 and hurt.restarts == 1, discipline
        assert frames(hurt) >= frames(clean), discipline
        table_rows.append([
            discipline,
            f"{clean_s * 1000:.0f}", f"{hurt_s * 1000:.0f}",
            frames(clean), frames(hurt),
            frames(hurt) - frames(clean),
            duplicates(hurt),
        ])

    publish(
        "t12_fault_recovery",
        ["discipline", "clean ms", "killed ms", "clean frames",
         "killed frames", "extra frames", "deduped records"],
        table_rows,
        title=(
            f"T12 — recovery cost: middle filter killed at datum "
            f"{KILL_AT} of {len(ITEMS)} (n={N_FILTERS}, resume on)"
        ),
        items=len(ITEMS),
        kill_at=KILL_AT,
    )
