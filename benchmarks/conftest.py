"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's figures or analytic
claims (see DESIGN.md §3).  Each prints the paper-vs-measured rows it
is responsible for (run ``pytest benchmarks/ --benchmark-only -s`` to
see them) and asserts the claim's *shape* — who wins, by what factor.

Besides printing, benchmarks persist their tables as machine-readable
JSON under ``benchmarks/results/BENCH_<name>.json`` (via
:func:`publish` or :func:`record`), so tooling can diff runs without
scraping stdout.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Sequence

#: Where machine-readable benchmark outputs land.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def show(table: str) -> None:
    """Print a result table, bracketed for readability under -s."""
    print()
    print(table)


def record(name: str, payload: dict[str, Any]) -> pathlib.Path:
    """Persist ``payload`` as ``benchmarks/results/BENCH_<name>.json``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def publish(
    name: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str,
    **extra: Any,
) -> None:
    """Print a table (as :func:`show`) and record it as JSON."""
    from repro.analysis import format_table

    show(format_table(list(headers), [list(row) for row in rows], title=title))
    record(name, {
        "title": title,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        **extra,
    })
