"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's figures or analytic
claims (see DESIGN.md §3).  Each prints the paper-vs-measured rows it
is responsible for (run ``pytest benchmarks/ --benchmark-only -s`` to
see them) and asserts the claim's *shape* — who wins, by what factor.
"""

from __future__ import annotations


def show(table: str) -> None:
    """Print a result table, bracketed for readability under -s."""
    print()
    print(table)
