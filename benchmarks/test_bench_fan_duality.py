"""T5 — the fan-in/fan-out duality (claim C3, paper §5).

"As we have described it so far, 'read only' transput allows arbitrary
fan-in but no fan-out.  The dual situation exists with 'write only'
transput. ... Conventional transput allows arbitrary fan-in and
fan-out because both reads and writes are active."

The benchmark builds the feasibility matrix by construction, including
the two §5 remedies (channel identifiers for read-only fan-out; the
'secondary output' ablation that re-introduces active writes) and
demonstrates the failure mode the paper describes: two sinks reading
one unchanneled filter *split* the stream rather than each getting a
copy ("F cannot distinguish this from one Eject making the same total
number of Read invocations").
"""

from repro.core import Kernel
from repro.filters import fanout, identity
from repro.transput import (
    ActiveSource,
    CollectorSink,
    ConventionalFilter,
    ListSource,
    PassiveSink,
    Primitive,
    ReadOnlyFilter,
    StreamEndpoint,
    WriteOnlyFilter,
)

from conftest import publish

ITEMS = [f"r{i}" for i in range(12)]


def readonly_fan_in(kernel):
    sources = [kernel.create(ListSource, items=ITEMS[:6]),
               kernel.create(ListSource, items=ITEMS[6:])]
    stage = kernel.create(
        ReadOnlyFilter, transducer=identity(),
        inputs=[s.output_endpoint() for s in sources],
    )
    sink = kernel.create(CollectorSink, inputs=[stage.output_endpoint()])
    kernel.run(until=lambda: sink.done)
    kernel.run()
    return sink.collected


def readonly_naive_fan_out(kernel):
    """Two sinks on one channel: the stream is split, not duplicated."""
    source = kernel.create(ListSource, items=ITEMS)
    stage = kernel.create(
        ReadOnlyFilter, transducer=identity(),
        inputs=[source.output_endpoint()],
    )
    sinks = [
        kernel.create(CollectorSink, inputs=[stage.output_endpoint()])
        for _ in range(2)
    ]
    kernel.run(until=lambda: all(s.done for s in sinks))
    kernel.run()
    return [list(s.collected) for s in sinks]


def readonly_channel_fan_out(kernel):
    """The §5 remedy: one output channel per consumer."""
    source = kernel.create(ListSource, items=ITEMS)
    stage = kernel.create(
        ReadOnlyFilter, transducer=fanout(2),
        inputs=[source.output_endpoint()],
    )
    sinks = [
        kernel.create(
            CollectorSink, inputs=[stage.output_endpoint(f"out{i}")]
        )
        for i in range(2)
    ]
    kernel.run(until=lambda: all(s.done for s in sinks))
    kernel.run()
    return [list(s.collected) for s in sinks], stage


def writeonly_fan_out(kernel):
    sinks = [kernel.create(PassiveSink) for _ in range(2)]
    stage = kernel.create(
        WriteOnlyFilter, transducer=identity(),
        outputs=[StreamEndpoint(s.uid, None) for s in sinks],
    )
    kernel.create(
        ActiveSource, items=ITEMS, outputs=[StreamEndpoint(stage.uid, None)]
    )
    kernel.run(until=lambda: all(s.done for s in sinks))
    kernel.run()
    return [list(s.collected) for s in sinks]


def writeonly_blind_fan_in(kernel):
    """Two writers into one write-only filter: data arrives, but the
    origins are indistinguishable (no true multi-stream fan-in)."""
    sink = kernel.create(PassiveSink)
    stage = kernel.create(
        WriteOnlyFilter, transducer=identity(),
        outputs=[StreamEndpoint(sink.uid, None)], expected_ends=2,
    )
    for half in (ITEMS[:6], ITEMS[6:]):
        kernel.create(
            ActiveSource, items=half,
            outputs=[StreamEndpoint(stage.uid, None)],
        )
    kernel.run(until=lambda: sink.done)
    kernel.run()
    return sink.collected


def conventional_fan_both(kernel):
    sources = [kernel.create(ListSource, items=ITEMS[:6]),
               kernel.create(ListSource, items=ITEMS[6:])]
    sinks = [kernel.create(PassiveSink) for _ in range(2)]
    kernel.create(
        ConventionalFilter, transducer=identity(),
        inputs=[s.output_endpoint() for s in sources],
        outputs=[StreamEndpoint(s.uid, None) for s in sinks],
    )
    kernel.run(until=lambda: all(s.done for s in sinks))
    kernel.run()
    return [list(s.collected) for s in sinks]


def run_matrix():
    return {
        "readonly_fan_in": readonly_fan_in(Kernel()),
        "readonly_naive_fan_out": readonly_naive_fan_out(Kernel()),
        "readonly_channel_fan_out": readonly_channel_fan_out(Kernel()),
        "writeonly_fan_out": writeonly_fan_out(Kernel()),
        "writeonly_blind_fan_in": writeonly_blind_fan_in(Kernel()),
        "conventional_fan_both": conventional_fan_both(Kernel()),
    }


def test_bench_fan_duality(benchmark):
    results = benchmark(run_matrix)

    # Read-only fan-in: everything arrives, in input order.
    assert results["readonly_fan_in"] == ITEMS

    # Naive read-only fan-out FAILS as the paper says: the two readers
    # split the stream between them; neither sees a full copy.
    split = results["readonly_naive_fan_out"]
    assert sorted(split[0] + split[1]) == sorted(ITEMS)
    assert split[0] != ITEMS and split[1] != ITEMS

    # Channel identifiers fix it: every consumer gets a full copy, and
    # the filter stays purely read-only.
    copies, stage = results["readonly_channel_fan_out"]
    assert copies == [ITEMS, ITEMS]
    assert stage.interface_primitives() <= {
        Primitive.ACTIVE_INPUT, Primitive.PASSIVE_OUTPUT
    }

    # Write-only fan-out: every sink gets a full copy.
    assert results["writeonly_fan_out"] == [ITEMS, ITEMS]

    # Write-only "fan-in": all records arrive but interleaved —
    # the filter cannot separate the two streams.
    blind = results["writeonly_blind_fan_in"]
    assert sorted(blind) == sorted(ITEMS)

    # Conventional: both, for 2x the invocations (T1 covers the cost).
    assert results["conventional_fan_both"] == [ITEMS, ITEMS]

    publish(
        "t5_fan_duality",
        ["discipline", "fan-in", "fan-out", "notes"],
        [
            ["read-only", "yes (n input UIDs)", "no (readers split)",
             "channels restore fan-out"],
            ["write-only", "no (writers blur)", "yes (n output UIDs)",
             "exact dual"],
            ["conventional", "yes", "yes", "costs 2x invocations"],
        ],
        title="T5: the paper's fan-in/fan-out feasibility matrix, "
              "verified by construction",
    )
