"""T3 — remote-invocation savings (§4's closing bullet).

"In comparison with the obvious design incorporating passive buffers
between each pair of active Ejects, roughly half as many invocations
are required to move data from one end of the pipeline to the other.
The cost of an invocation must inevitably be higher than that of a
system call (because invocation is location-independent), so such
saving may be significant in Eden."

The claim is about *communication overhead*: total message-time put on
the interconnect.  The sweep spreads the same pipeline across
simulated nodes under remote/local cost ratios of 1x, 5x, 20x and
measures (a) network load — message count weighted by per-hop cost —
which the read-only scheme halves at every ratio, and (b) end-to-end
virtual makespan.  A reproduction finding worth recording: with
anticipatory buffering both disciplines pipeline their round trips, so
*latency* converges at high remote cost even though the read-only
scheme puts half the load on the wire (see EXPERIMENTS.md).
"""

from repro.core import Kernel, TransportCosts
from repro.transput import FlowPolicy, compose_segment
from repro.transput.filterbase import identity_transducer

from conftest import publish

ITEMS = [f"record-{i}" for i in range(40)]
N_FILTERS = 4
RATIOS = (1.0, 5.0, 20.0)


def run_once(discipline: str, remote_ratio: float, placement, lookahead=8):
    kernel = Kernel(
        costs=TransportCosts(local_latency=1.0, remote_latency=remote_ratio)
    )
    pipeline = compose_segment(
        kernel, discipline, ITEMS,
        [identity_transducer() for _ in range(N_FILTERS)],
        flow=FlowPolicy(lookahead=lookahead),
        placement=placement,
    )
    output = pipeline.run_to_completion()
    assert output == ITEMS
    stats = pipeline.completion_stats
    network_load = (
        stats["local_messages"] * 1.0
        + stats["remote_messages"] * remote_ratio
    )
    return pipeline, network_load


def sweep():
    results = {}
    for ratio in RATIOS:
        for placement in (None, "spread"):
            for discipline in ("readonly", "conventional"):
                results[(ratio, placement, discipline)] = run_once(
                    discipline, ratio, placement
                )
    return results


def test_bench_pipeline_latency(benchmark):
    results = benchmark(sweep)

    rows = []
    for ratio in RATIOS:
        for placement in (None, "spread"):
            ro_pipe, ro_load = results[(ratio, placement, "readonly")]
            conv_pipe, conv_load = results[(ratio, placement, "conventional")]
            rows.append([
                f"{ratio:.0f}x",
                "spread" if placement else "1 node",
                ro_load, conv_load, f"{ro_load / conv_load:.2f}",
                ro_pipe.virtual_makespan, conv_pipe.virtual_makespan,
            ])
            ro_stats = ro_pipe.completion_stats
            conv_stats = conv_pipe.completion_stats
            ro_messages = (
                ro_stats["local_messages"] + ro_stats["remote_messages"]
            )
            conv_messages = (
                conv_stats["local_messages"] + conv_stats["remote_messages"]
            )
            # The paper's claim: half the *messages* ("roughly half as
            # many invocations"), at every ratio and placement.
            assert ro_messages * 2 == conv_messages, (ratio, placement)
            # Under the paper's own cost framing — invocation cost is
            # location-independent — half the messages IS half the load.
            if ratio == 1.0:
                assert abs(ro_load / conv_load - 0.5) < 0.02
            # And the read-only pipeline is never slower end-to-end.
            assert (
                ro_pipe.virtual_makespan
                <= conv_pipe.virtual_makespan * 1.02
            )
            if placement == "spread":
                # With consumer-side pipe placement, both disciplines put
                # identical *remote* traffic on the Ethernet; the extra
                # conventional messages are all node-local.
                assert (
                    ro_stats["remote_messages"]
                    == conv_stats["remote_messages"]
                )

    publish(
        "t3_pipeline_latency",
        ["remote/local", "placement", "read-only net-load",
         "conventional net-load", "load ratio", "RO makespan",
         "conv makespan"],
        rows,
        title="T3: communication overhead and latency (lookahead=8, "
              "n=4 filters, m=40 records)",
    )
