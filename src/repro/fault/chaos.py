"""A frame-aware TCP chaos proxy for one pipeline link.

``ChaosProxy`` listens on a local port, dials the real stage, and
relays protocol frames in both directions — applying a
:class:`~repro.fault.plan.FaultPlan`'s frame rules to the traffic
without either endpoint's cooperation.  Because it parses the actual
frame stream (rather than splicing raw bytes), its drop/duplicate/
corrupt faults land on whole protocol messages, which is what the
resume protocol must survive.

Use it in-process::

    proxy = ChaosProxy("127.0.0.1", real_port, plan)
    await proxy.start()
    ... point the downstream stage at proxy.port ...
    await proxy.stop()

or standalone::

    python -m repro.fault.chaos --listen 9000 --target 127.0.0.1:8000 \
        --fault-json '{"frame_faults": [{"action": "drop", "frame": "data", "nth": 3}]}'
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Sequence

from repro.core.errors import EdenError
from repro.fault.inject import FaultInjector
from repro.fault.plan import FaultPlan
from repro.net.framing import FrameError, encode_frame, read_frame_sized
from repro.net.metrics import NetStats

__all__ = ["ChaosProxy", "main"]


class ChaosProxy:
    """Relay frames between clients and one target, injecting faults.

    Faults are applied per direction: ``plan`` governs frames flowing
    *toward the target* (requests), ``reply_plan`` (default: the same
    plan) governs frames flowing back.  Counters land in ``stats``
    (``frames_relayed``, ``fault_drop``, ...).
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        plan: FaultPlan,
        reply_plan: FaultPlan | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.target_host = target_host
        self.target_port = target_port
        self.host = host
        self.port = port
        self.stats = NetStats()
        self._forward = FaultInjector(
            plan.frame_faults, stats=self.stats, label="chaos-fwd"
        )
        self._reverse = FaultInjector(
            (reply_plan if reply_plan is not None else plan).frame_faults,
            stats=self.stats,
            label="chaos-rev",
        )
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "ChaosProxy":
        """Open the listener; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except (ConnectionError, OSError):
            self.stats.bump("connect_failures")
            writer.close()
            return
        await asyncio.gather(
            self._pump(reader, up_writer, self._forward),
            self._pump(up_reader, writer, self._reverse),
            return_exceptions=True,
        )
        for half in (writer, up_writer):
            try:
                half.close()
                await half.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        injector: FaultInjector,
    ) -> None:
        """Relay one direction frame-by-frame until EOF or link error."""
        try:
            while True:
                frame, _wire = await read_frame_sized(reader)
                if frame is None:
                    break
                self.stats.bump("frames_relayed")
                for chunk in await injector.outgoing(
                    frame.type.name, encode_frame(frame)
                ):
                    writer.write(chunk)
                    await writer.drain()
        except (ConnectionError, OSError, FrameError, asyncio.IncompleteReadError):
            self.stats.bump("link_errors")
        finally:
            try:
                writer.write_eof()
            except (ConnectionError, OSError, RuntimeError):
                pass


def _address(text: str) -> tuple[str, int]:
    host, _sep, port = text.rpartition(":")
    return (host or "127.0.0.1", int(port))


async def _serve_forever(proxy: ChaosProxy) -> None:
    await proxy.start()
    print(
        f"chaos proxy: {proxy.host}:{proxy.port} -> "
        f"{proxy.target_host}:{proxy.target_port}",
        file=sys.stderr,
    )
    assert proxy._server is not None
    async with proxy._server:
        await proxy._server.serve_forever()


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: run one chaos proxy until interrupted."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.fault.chaos",
        description="Frame-aware TCP chaos proxy for one pipeline link.",
    )
    parser.add_argument("--listen", type=int, required=True, metavar="PORT")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--target", type=_address, required=True,
                        metavar="HOST:PORT")
    parser.add_argument("--fault-json", default="{}", metavar="JSON",
                        help="FaultPlan JSON applied to both directions")
    options = parser.parse_args(argv)
    try:
        plan = FaultPlan.from_json(options.fault_json)
    except EdenError as error:
        print(f"chaos: {error}", file=sys.stderr)
        return 2
    proxy = ChaosProxy(
        options.target[0], options.target[1], plan,
        host=options.host, port=options.listen,
    )
    try:
        asyncio.run(_serve_forever(proxy))
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
