"""Runtime fault hooks: frame injectors and kill switches.

Two injection points cover every fault a :class:`~repro.fault.plan.
FaultPlan` can describe:

- **frames** — every outgoing data-path frame of a
  :class:`repro.net.protocol.Connection` is offered to a
  :class:`FaultInjector`, which may drop it, duplicate it, delay it,
  or corrupt its bytes before they reach the socket.  What actually
  happened is counted in the stage's stats (``fault_dropped`` etc.),
  so a chaos run's diagnosis is quantitative.
- **records** — a :class:`KillSwitch` counts records moving through a
  stage's data path and crashes the process (``os._exit``, no END
  frames, no stats dump — an honest crash) at the configured datum.
  :class:`KillingReadable` / :class:`KillingWritable` /
  :func:`killing_transducer` adapt the switch to each stage role.
"""

from __future__ import annotations

import asyncio
import os
import sys
from typing import Any, Awaitable, Callable, Iterable, Sequence

from repro.core.stats import KernelStats
from repro.fault.plan import KILLED_EXIT_CODE, FaultPlan, FrameFault
from repro.transput.filterbase import Transducer
from repro.transput.stream import Transfer

__all__ = [
    "FaultInjector",
    "KillSwitch",
    "KillingReadable",
    "KillingWritable",
    "killing_transducer",
]


def corrupt_bytes(wire: bytes) -> bytes:
    """Flip the last byte: header still parses, the body no longer does."""
    if not wire:
        return wire
    return wire[:-1] + bytes([wire[-1] ^ 0xFF])


class FaultInjector:
    """Applies a plan's frame rules to a stream of outgoing frames.

    One injector carries the per-rule match counters, so ``nth``/
    ``every`` schedules are deterministic across the connections that
    share it (a stage shares one injector across all its links).
    """

    def __init__(
        self,
        faults: Sequence[FrameFault],
        stats: KernelStats | None = None,
        label: str = "fault",
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ) -> None:
        self.rules = list(faults)
        self.stats = stats if stats is not None else KernelStats()
        self.label = label
        self.sleep = sleep
        self._matched = [0] * len(self.rules)

    async def outgoing(self, frame_name: str, wire: bytes,
                       chan: int | None = None) -> list[bytes]:
        """Decide one frame's fate; returns the chunks to really send.

        An empty list means the frame was dropped; two identical
        chunks mean it was duplicated; a mutated chunk means it was
        corrupted.  ``delay`` rules sleep here, inside the sender.
        ``chan`` is the logical channel the frame rides (``None`` off
        a multiplexed link): a channel-pinned rule neither fires nor
        advances its match counter on other channels.
        """
        chunks = [wire]
        for index, rule in enumerate(self.rules):
            if rule.frame is not None and rule.frame != frame_name.lower():
                continue
            if rule.chan is not None and rule.chan != chan:
                continue
            self._matched[index] += 1
            if not rule.matches(frame_name, self._matched[index], chan):
                continue
            self.stats.bump(f"fault_{rule.action}")
            if rule.action == "drop":
                return []
            if rule.action == "duplicate":
                chunks = chunks * 2
            elif rule.action == "corrupt":
                chunks = [corrupt_bytes(chunk) for chunk in chunks]
            elif rule.action == "delay":
                await self.sleep(rule.delay_ms / 1000.0)
        return chunks


class KillSwitch:
    """Crashes the process once ``limit`` records have been noted.

    The default trip handler is ``os._exit`` with
    :data:`~repro.fault.plan.KILLED_EXIT_CODE` — no Python cleanup, no
    END frames, no stats dump, exactly what a real stage crash looks
    like to the rest of the fleet.  Tests override ``on_kill``.
    """

    def __init__(
        self,
        limit: int,
        label: str = "stage",
        on_kill: Callable[[], None] | None = None,
    ) -> None:
        if limit < 1:
            raise ValueError(f"kill limit must be >= 1, got {limit}")
        self.limit = limit
        self.label = label
        self.count = 0
        self.on_kill = on_kill if on_kill is not None else self._exit

    def _exit(self) -> None:
        sys.stderr.write(
            f"[{self.label}] fault: killed at datum {self.count} "
            f"(kill_after={self.limit})\n"
        )
        sys.stderr.flush()
        os._exit(KILLED_EXIT_CODE)

    def note(self, records: int = 1) -> None:
        """Count ``records`` more; trip the switch at the limit."""
        self.count += records
        if self.count >= self.limit:
            self.on_kill()


class KillingReadable:
    """A Readable that counts the records it yields into a switch."""

    def __init__(self, inner: Any, switch: KillSwitch) -> None:
        self.inner = inner
        self.switch = switch

    @property
    def last_span(self) -> Any:
        return getattr(self.inner, "last_span", None)

    @property
    def last_read_origin(self) -> Any:
        return getattr(self.inner, "last_read_origin", None)

    async def read(self, batch: int = 1) -> Transfer:
        transfer = await self.inner.read(batch)
        if not transfer.at_end:
            self.switch.note(len(list(transfer.items)))
        return transfer


class KillingWritable:
    """A Writable that counts the records accepted into a switch."""

    def __init__(self, inner: Any, switch: KillSwitch) -> None:
        self.inner = inner
        self.switch = switch

    async def write(self, transfer: Transfer) -> None:
        if not transfer.at_end:
            self.switch.note(len(list(transfer.items)))
        await self.inner.write(transfer)


class _KillingTransducer(Transducer):
    """Counts input records before the wrapped transducer sees them."""

    def __init__(self, inner: Transducer, switch: KillSwitch) -> None:
        self.inner = inner
        self.switch = switch
        self.name = f"killing({inner.name})"
        self.cost_per_item = inner.cost_per_item

    def start(self) -> Iterable[Any]:
        return self.inner.start()

    def step(self, item: Any) -> Iterable[Any]:
        self.switch.note()
        return self.inner.step(item)

    def finish(self) -> Iterable[Any]:
        return self.inner.finish()


def killing_transducer(inner: Transducer, switch: KillSwitch) -> Transducer:
    """Wrap ``inner`` so the switch counts every input record."""
    return _KillingTransducer(inner, switch)


def build_injector(
    plan: FaultPlan | None,
    stats: KernelStats | None = None,
    label: str = "fault",
) -> FaultInjector | None:
    """The injector a plan calls for, or ``None`` for a benign plan."""
    if plan is None or not plan.frame_faults:
        return None
    return FaultInjector(plan.frame_faults, stats=stats, label=label)
