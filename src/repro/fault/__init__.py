"""repro.fault: fault injection and supervised recovery for the wire runtime.

The paper's asymmetric disciplines buy their halved invocation count by
directly coupling neighbours — which means a crashed filter stalls the
whole pipeline, exactly the decoupling a passive buffer would have
bought.  This package makes that trade measurable and survivable:

- :mod:`repro.fault.plan` — :class:`FaultPlan` / :class:`FrameFault`:
  a declarative, JSON-portable description of the faults one stage (or
  one link) should suffer: dropped, delayed, duplicated or corrupted
  frames, a crash after the k-th datum, refused connections.
- :mod:`repro.fault.inject` — the runtime hooks: a frame-level
  :class:`FaultInjector` consulted by every outgoing data frame, and
  the kill switches that crash a stage mid-stream.
- :mod:`repro.fault.chaos` — a frame-aware TCP chaos proxy that sits
  between two stages and applies a :class:`FaultPlan` to the link
  without either stage's cooperation.

Supervised recovery lives with the orchestrator
(:class:`repro.net.launch.FleetSupervisor`); the session-resume
protocol that makes restarts lossless lives in
:mod:`repro.net.protocol` (see ``docs/fault_tolerance.md``).
"""

from repro.fault.plan import (
    FAULT_ACTIONS,
    KILLED_EXIT_CODE,
    FaultError,
    FaultPlan,
    FrameFault,
)
from repro.fault.inject import (
    FaultInjector,
    KillSwitch,
    KillingReadable,
    KillingWritable,
    killing_transducer,
)
from repro.fault.chaos import ChaosProxy

__all__ = [
    "FAULT_ACTIONS",
    "KILLED_EXIT_CODE",
    "ChaosProxy",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FrameFault",
    "KillSwitch",
    "KillingReadable",
    "KillingWritable",
    "killing_transducer",
]
