"""Declarative fault plans: what should go wrong, where, and when.

A :class:`FaultPlan` travels from the orchestrator to a stage as JSON
(the ``eden-stage --fault-json`` flag), so chaos experiments are fully
scripted from one place — :func:`repro.net.launch.plan_linear_fleet` assigns
plans per stage, the supervisor strips the one-shot faults on restart,
and the chaos proxy (:mod:`repro.fault.chaos`) applies the same plans
to a link instead of a stage.

Every field is validated eagerly: a malformed plan raises
:class:`FaultError` at construction, never silently defaults — the
same contract as :class:`repro.transput.flow.FlowPolicy`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.core.errors import EdenError

__all__ = [
    "FAULT_ACTIONS",
    "KILLED_EXIT_CODE",
    "FaultError",
    "FrameFault",
    "FaultPlan",
]

#: The frame-level misbehaviours a fault can inflict.
FAULT_ACTIONS = ("drop", "duplicate", "delay", "corrupt")

#: Exit code of a stage crashed by a ``kill_after`` fault, so the
#: supervisor's diagnosis can tell an injected crash from a real bug.
KILLED_EXIT_CODE = 73


class FaultError(EdenError):
    """A fault plan was malformed or could not be applied."""


@dataclass(frozen=True)
class FrameFault:
    """One frame-level fault rule.

    Attributes:
        action: one of :data:`FAULT_ACTIONS`.
        frame: frame-type name to match (``"data"``, ``"write"``, ...),
            lower-case; ``None`` matches every data-path frame.
        nth: fire on the nth matching frame only (1-based, one-shot).
        every: fire on every ``every``-th matching frame (periodic).
        delay_ms: added latency for ``delay`` actions.
        chan: logical-channel id to match (multiplexed links only);
            ``None`` matches frames on any channel, including
            un-multiplexed connections.  Lets a chaos plan target one
            stream out of the hundreds sharing a broker connection.
    """

    action: str
    frame: str | None = None
    nth: int | None = None
    every: int | None = None
    delay_ms: float = 0.0
    chan: int | None = None

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise FaultError(
                f"action must be one of {FAULT_ACTIONS}, got {self.action!r}"
            )
        if self.frame is not None and (
            not isinstance(self.frame, str) or not self.frame
        ):
            raise FaultError(f"frame must be a frame-type name, got {self.frame!r}")
        if (self.nth is None) == (self.every is None):
            raise FaultError(
                "give exactly one of nth (one-shot) or every (periodic); "
                f"got nth={self.nth!r} every={self.every!r}"
            )
        for name in ("nth", "every"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise FaultError(f"{name} must be an integer >= 1, got {value!r}")
        if not isinstance(self.delay_ms, (int, float)) or self.delay_ms < 0:
            raise FaultError(f"delay_ms must be >= 0, got {self.delay_ms!r}")
        if self.action == "delay" and self.delay_ms == 0:
            raise FaultError("a delay fault needs delay_ms > 0")
        if self.chan is not None and (
            not isinstance(self.chan, int) or self.chan < 0
        ):
            raise FaultError(
                f"chan must be an integer >= 0, got {self.chan!r}"
            )

    def matches(self, frame_name: str, count: int,
                chan: int | None = None) -> bool:
        """Should this rule fire for the ``count``-th matching frame?

        ``chan`` is the logical channel the frame travels on (``None``
        off a multiplexed link); a rule pinned to a channel never
        fires elsewhere.
        """
        if self.frame is not None and self.frame != frame_name.lower():
            return False
        if self.chan is not None and self.chan != chan:
            return False
        if self.nth is not None:
            return count == self.nth
        return self.every is not None and count % self.every == 0

    def as_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"action": self.action}
        if self.frame is not None:
            data["frame"] = self.frame
        if self.nth is not None:
            data["nth"] = self.nth
        if self.every is not None:
            data["every"] = self.every
        if self.delay_ms:
            data["delay_ms"] = self.delay_ms
        if self.chan is not None:
            data["chan"] = self.chan
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FrameFault":
        unknown = set(data) - {"action", "frame", "nth", "every",
                               "delay_ms", "chan"}
        if unknown:
            raise FaultError(f"unknown FrameFault fields: {sorted(unknown)}")
        return cls(
            action=data.get("action", ""),
            frame=data.get("frame"),
            nth=data.get("nth"),
            every=data.get("every"),
            delay_ms=data.get("delay_ms", 0.0),
            chan=data.get("chan"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """Everything that should go wrong for one stage (or one link).

    Attributes:
        kill_after: crash the hosting process (``os._exit`` with
            :data:`KILLED_EXIT_CODE`) once this many records have moved
            through the stage.  One-shot: stripped on restart.
        refuse_accepts: refuse (close without handshake) this many
            incoming connections before behaving.  One-shot.
        frame_faults: frame-level rules applied to outgoing frames.
    """

    kill_after: int | None = None
    refuse_accepts: int = 0
    frame_faults: tuple[FrameFault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kill_after is not None and (
            not isinstance(self.kill_after, int) or self.kill_after < 1
        ):
            raise FaultError(
                f"kill_after must be an integer >= 1, got {self.kill_after!r}"
            )
        if not isinstance(self.refuse_accepts, int) or self.refuse_accepts < 0:
            raise FaultError(
                f"refuse_accepts must be an integer >= 0, got {self.refuse_accepts!r}"
            )
        object.__setattr__(self, "frame_faults", tuple(self.frame_faults))
        for fault in self.frame_faults:
            if not isinstance(fault, FrameFault):
                raise FaultError(f"frame_faults must hold FrameFault, got {fault!r}")

    @property
    def is_benign(self) -> bool:
        """True if the plan injects nothing at all."""
        return (
            self.kill_after is None
            and self.refuse_accepts == 0
            and not self.frame_faults
        )

    def survivor(self) -> "FaultPlan":
        """The plan a *restarted* stage should run under.

        One-shot faults (the kill, the refused accepts, any ``nth``
        frame rule) already fired in the previous incarnation; only the
        periodic frame rules persist across restarts.
        """
        return replace(
            self,
            kill_after=None,
            refuse_accepts=0,
            frame_faults=tuple(
                fault for fault in self.frame_faults if fault.nth is None
            ),
        )

    # -- JSON portability (CLI flag, fleet manifest) ------------------------

    def as_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {}
        if self.kill_after is not None:
            data["kill_after"] = self.kill_after
        if self.refuse_accepts:
            data["refuse_accepts"] = self.refuse_accepts
        if self.frame_faults:
            data["frame_faults"] = [fault.as_dict() for fault in self.frame_faults]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        unknown = set(data) - {"kill_after", "refuse_accepts", "frame_faults"}
        if unknown:
            raise FaultError(f"unknown FaultPlan fields: {sorted(unknown)}")
        faults = data.get("frame_faults", [])
        if not isinstance(faults, (list, tuple)):
            raise FaultError(f"frame_faults must be a list, got {faults!r}")
        return cls(
            kill_after=data.get("kill_after"),
            refuse_accepts=data.get("refuse_accepts", 0),
            frame_faults=tuple(FrameFault.from_dict(item) for item in faults),
        )

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultError(f"undecodable fault plan: {error}") from error
        if not isinstance(data, dict):
            raise FaultError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        return cls.from_dict(data)
