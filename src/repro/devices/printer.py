"""The printer server.

Paper §4: "A file could be printed simply by requesting the printer
server to read from the file.  If a paginated listing were required,
the printer server would be requested to read from the paginator, and
the paginator to read from the file."

:class:`PrinterServer` is an Eject that accepts ``PrintFrom``
invocations naming a stream endpoint; it then *pumps* that stream
(active input) onto paper.  Form-feed records (``"\\f"``) begin a new
page.  Several PrintFrom jobs queue and print one at a time.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.core.errors import InvocationError
from repro.core.message import Invocation
from repro.core.syscalls import (
    NotifySignal,
    Signal,
    Sleep,
    WaitSignal,
)
from repro.transput.primitives import TransputEject, active_input
from repro.transput.stream import StreamEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID


class PrinterServer(TransputEject):
    """Prints streams onto pages; one job at a time.

    Operations:
        ``PrintFrom(endpoint)`` — queue a print job; returns the job id.
        ``JobCount`` — jobs completed so far.
    """

    eden_type = "PrinterServer"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        name: str | None = None,
        lines_per_page: int = 60,
        work_cost: float = 0.0,
    ) -> None:
        super().__init__(kernel, uid, name=name)
        if lines_per_page < 1:
            raise ValueError(f"lines_per_page must be >= 1, got {lines_per_page}")
        self.lines_per_page = lines_per_page
        self.work_cost = work_cost
        self.pages: list[list[str]] = []
        self._queue: list[tuple[int, StreamEndpoint]] = []
        self._next_job = 1
        self.jobs_done = 0
        self._job_arrived = Signal(f"{self.name}.job")

    def process_bodies(self):
        return [("server", self.main()), ("engine", self._engine())]

    def op_PrintFrom(self, invocation: Invocation):
        endpoint = invocation.args[0]
        if isinstance(endpoint, StreamEndpoint):
            pass
        else:
            from repro.core.uid import UID as _UID

            if isinstance(endpoint, _UID):
                endpoint = StreamEndpoint(endpoint, None)
            else:
                raise InvocationError("PrintFrom needs a StreamEndpoint or UID")
        job_id = self._next_job
        self._next_job += 1
        self._queue.append((job_id, endpoint))
        yield NotifySignal(self._job_arrived)
        return job_id

    def op_JobCount(self, invocation: Invocation):
        return self.jobs_done

    def _engine(self):
        """The print engine: pumps one queued job at a time."""
        while True:
            while not self._queue:
                yield WaitSignal(self._job_arrived)
            _job_id, endpoint = self._queue.pop(0)
            page: list[str] = []
            while True:
                transfer = yield from active_input(self, endpoint, 1)
                if transfer.at_end:
                    break
                for item in transfer.items:
                    if self.work_cost:
                        yield Sleep(self.work_cost)
                    page = self._render(page, item)
            if page:
                self.pages.append(page)
            self.jobs_done += 1

    def _render(self, page: list[str], item: Any) -> list[str]:
        text = str(item)
        if text == "\f":
            if page:
                self.pages.append(page)
            return []
        page.append(text)
        if len(page) >= self.lines_per_page:
            self.pages.append(page)
            return []
        return page

    @property
    def printed_lines(self) -> list[str]:
        """Every line printed so far, across pages."""
        return [line for page in self.pages for line in page]
