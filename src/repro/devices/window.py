"""The report window (paper Figures 3 and 4).

"The reports from source and F1 are directed to a common destination,
perhaps a window on a display" — and in the read-only version, "It is
assumed that the Report Window is designed to read from multiple
sources."

Two window types, one per discipline:

- :class:`ReportWindow` — the Figure 4 window: actively Reads from
  several report channels, round-robin, labelling each line with its
  origin.
- :class:`PassiveReportWindow` — the Figure 3 window: passively
  accepts Writes from several reporters ("directed to a common
  destination").
"""

from __future__ import annotations

from typing import Any, Iterable, TYPE_CHECKING

from repro.transput.primitives import TransputEject, active_input
from repro.transput.sink import PassiveSink
from repro.transput.stream import StreamEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID


class ReportWindow(TransputEject):
    """Reads report streams from multiple sources (read-only, Fig. 4).

    Args:
        inputs: ``(label, endpoint)`` pairs — each endpoint typically a
            filter's Report channel.
    """

    eden_type = "ReportWindow"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        inputs: Iterable[tuple[str, StreamEndpoint]] = (),
        name: str | None = None,
        batch: int = 1,
    ) -> None:
        super().__init__(kernel, uid, name=name)
        self.inputs = list(inputs)
        self.batch = max(1, int(batch))
        self.lines: list[str] = []
        self.done = False
        self.reads_issued = 0

    @property
    def collected(self) -> list[str]:
        """Alias so a window can stand where a sink is expected."""
        return self.lines

    def connect(self, label: str, endpoint: StreamEndpoint) -> None:
        """Attach one more report stream (before the simulation runs)."""
        self.inputs.append((label, endpoint))

    def main(self):
        live = list(self.inputs)
        while live:
            remaining = []
            for label, endpoint in live:
                transfer = yield from active_input(self, endpoint, self.batch)
                self.reads_issued += 1
                if transfer.at_end:
                    continue
                for item in transfer.items:
                    self.lines.append(f"{label}: {item}")
                remaining.append((label, endpoint))
            live = remaining
        self.done = True


class PassiveReportWindow(PassiveSink):
    """Accepts report Writes from several reporters (write-only, Fig. 3).

    ``expected_ends`` must equal the number of reporters wired at it.
    Lines arrive already labelled by their producers (write-only
    receivers cannot tell writers apart — exactly the §5 limitation).
    """

    eden_type = "PassiveReportWindow"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        name: str | None = None,
        expected_ends: int = 1,
    ) -> None:
        super().__init__(kernel, uid, name=name, expected_ends=expected_ends)

    @property
    def lines(self) -> list[Any]:
        """What the window shows."""
        return self.collected
