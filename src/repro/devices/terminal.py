"""Terminal devices.

Paper §4: "Output devices such as terminals and printers would provide
a potentially infinite supply of Read invocations.  Connecting a
terminal to a filter Eject would be rather like starting a pump; it
would suck data through the filter and generate a partial vacuum (in
the form of outstanding read invocations) on the far side."

A :class:`Terminal` is therefore an :class:`~repro.transput.sink.
ActiveSink` that renders what it pumps onto a display (a list of
lines), optionally slowly (``work_cost`` models baud rate).  A
:class:`Keyboard` is the input half: a passive source of scripted
keystrokes/lines.
"""

from __future__ import annotations

from typing import Any, Iterable, TYPE_CHECKING

from repro.transput.sink import ActiveSink
from repro.transput.source import PassiveSource
from repro.transput.stream import StreamEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID


class Terminal(ActiveSink):
    """A display that pumps lines out of whatever it is connected to.

    Args:
        width: lines longer than this are wrapped onto the display.
        work_cost: virtual time per record — a 1983 terminal is slow,
            and a slow sink throttles the whole (lazy) pipeline.
    """

    eden_type = "Terminal"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        inputs: Iterable[StreamEndpoint] = (),
        name: str | None = None,
        width: int = 80,
        work_cost: float = 0.0,
        max_items: int | None = None,
        batch: int = 1,
    ) -> None:
        super().__init__(
            kernel, uid, inputs=inputs, name=name, batch=batch,
            work_cost=work_cost, max_items=max_items,
        )
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = width
        self.display: list[str] = []

    def consume(self, item: Any) -> None:
        text = str(item)
        if not text:
            self.display.append("")
        while text:
            self.display.append(text[: self.width])
            text = text[self.width :]
        self.collected.append(item)

    def screen(self, lines: int = 24) -> list[str]:
        """The last ``lines`` display lines (what the user would see)."""
        return self.display[-lines:]

    def process_bodies(self):
        return [("pump", self.main()), ("server", self._op_server())]

    def _op_server(self):
        """Serve ShowFrom (and future) invocations alongside the pump."""
        from repro.core.syscalls import Receive

        while True:
            invocation = yield Receive()
            yield from self.dispatch(invocation)

    def op_ShowFrom(self, invocation):
        """Dynamic redirection (§6): point the terminal at a new stream.

        The terminal spawns a pump that drains the given endpoint onto
        the display — "Redirection of input and output can be provided
        very naturally in a system where each entity is referred to by
        means of a unique identifier."  Streams shown concurrently
        interleave on the display, like output from concurrent jobs.
        """
        from repro.core.errors import InvocationError
        from repro.core.syscalls import Spawn
        from repro.core.uid import UID as _UID
        from repro.transput.primitives import active_input

        endpoint = invocation.args[0]
        if isinstance(endpoint, _UID):
            endpoint = StreamEndpoint(endpoint, None)
        if not isinstance(endpoint, StreamEndpoint):
            raise InvocationError("ShowFrom needs a StreamEndpoint or UID")

        def pump():
            self.done = False
            while True:
                transfer = yield from active_input(self, endpoint, self.batch)
                self.reads_issued += 1
                if transfer.at_end:
                    break
                yield from self._consume_all(transfer)
            self.done = True

        yield Spawn(pump, name="showfrom")
        return True


class Keyboard(PassiveSource):
    """Scripted user input: a passive source of typed lines."""

    eden_type = "Keyboard"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        script: Iterable[str] = (),
        name: str | None = None,
        work_cost: float = 0.0,
    ) -> None:
        super().__init__(kernel, uid, name=name, work_cost=work_cost)
        self.script = [str(line) for line in script]

    def generate(self):
        return iter(self.script)
