"""Device Ejects: terminals, printers, windows, clock and workload
sources.

Devices are ordinary Ejects speaking the stream protocol — the paper's
point that "there is no distinction between input redirection from a
file and from a program" extends to devices.
"""

from repro.devices.printer import PrinterServer
from repro.devices.sources import (
    ClockSource,
    NullSource,
    RandomSource,
    random_lines,
)
from repro.devices.terminal import Keyboard, Terminal
from repro.devices.window import PassiveReportWindow, ReportWindow
from repro.transput.sink import NullSink

__all__ = [
    "ClockSource",
    "Keyboard",
    "NullSink",
    "NullSource",
    "PassiveReportWindow",
    "PrinterServer",
    "RandomSource",
    "ReportWindow",
    "Terminal",
    "random_lines",
]
