"""Source devices: clock, random workload, null.

Paper §4: "An Eject which responds to a read invocation by returning
the current date and time is a source."
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.core.message import Invocation
from repro.core.syscalls import GetTime
from repro.transput.primitives import Primitive
from repro.transput.source import PassiveSource
from repro.transput.stream import END_TRANSFER, Transfer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID


class ClockSource(PassiveSource):
    """Answers every Read with the current (virtual) date and time.

    An *infinite* source: it never replies END, so connect it to a
    bounded sink (``max_items``) or read it explicitly.
    """

    eden_type = "ClockSource"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        name: str | None = None,
        template: str = "time={now:.3f}",
    ) -> None:
        super().__init__(kernel, uid, name=name)
        self.template = template

    def op_Read(self, invocation: Invocation):
        self.channel_table.resolve(invocation.channel)
        batch = invocation.args[0] if invocation.args else 1
        now = yield GetTime()
        self.reads_served += 1
        self.note_primitive(Primitive.PASSIVE_OUTPUT)
        stamp = self.template.format(now=now)
        return Transfer.of([stamp] * max(1, int(batch)))

    op_Transfer = op_Read


class RandomSource(PassiveSource):
    """A deterministic pseudo-random workload generator.

    Produces ``count`` lines of ``width`` lowercase words each, from a
    seeded PRNG — the synthetic stand-in for the paper's "data of
    interest ... in the Unix file system" when benchmarks need bulk
    data of controllable size.
    """

    eden_type = "RandomSource"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        count: int = 100,
        width: int = 8,
        seed: int = 0,
        name: str | None = None,
        work_cost: float = 0.0,
    ) -> None:
        super().__init__(kernel, uid, name=name, work_cost=work_cost)
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.count = count
        self.width = width
        self.seed = seed

    def generate(self):
        rng = random.Random(f"random-source:{self.seed}")
        vocabulary = [
            "stream", "eject", "kernel", "filter", "invoke", "reply",
            "read", "write", "buffer", "channel", "active", "passive",
        ]
        for _ in range(self.count):
            yield " ".join(rng.choice(vocabulary) for _ in range(self.width))


def random_lines(count: int, width: int = 8, seed: int = 0) -> list[str]:
    """Host-side version of :class:`RandomSource` for building workloads."""
    rng = random.Random(f"random-lines:{seed}")
    vocabulary = [
        "stream", "eject", "kernel", "filter", "invoke", "reply",
        "read", "write", "buffer", "channel", "active", "passive",
    ]
    return [
        " ".join(rng.choice(vocabulary) for _ in range(width))
        for _ in range(count)
    ]


class NullSource(PassiveSource):
    """Immediately at end of stream: the empty source."""

    eden_type = "NullSource"

    def op_Read(self, invocation: Invocation):
        self.channel_table.resolve(invocation.channel)
        self.reads_served += 1
        self.note_primitive(Primitive.PASSIVE_OUTPUT)
        return END_TRANSFER

    op_Transfer = op_Read
