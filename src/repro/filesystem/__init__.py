"""The Eden file system: files, directories, concatenators, bootstrap.

Files and directories are active Ejects (paper §2); the bootstrap
layer (§7) bridges to a simulated host Unix filesystem; the
transaction layer implements the §7 "preliminary design".
"""

from repro.filesystem.bootstrap import UnixFile, UnixFileSystem
from repro.filesystem.concatenator import DirectoryConcatenator
from repro.filesystem.directory import Directory
from repro.filesystem.file import EdenFile, FileReader
from repro.filesystem.hostfs import HostFileSystem, split_path
from repro.filesystem.mapfile import MapFile, MapIndexError
from repro.filesystem.transactions import TransactionalDirectory

__all__ = [
    "Directory",
    "DirectoryConcatenator",
    "EdenFile",
    "FileReader",
    "HostFileSystem",
    "MapFile",
    "MapIndexError",
    "TransactionalDirectory",
    "UnixFile",
    "UnixFileSystem",
    "split_path",
]
