"""Eden directories (paper §2).

"In Eden directories are also Ejects; they respond to invocations like
Lookup, DeleteEntry, AddEntry and List.  Each entry in a directory
Eject is in principle a pair consisting of a mnemonic lookup string and
the Unique Identifier of the Eject."

And §4: "Eden Directories also behave as sources ... The effect of a
List invocation is to prepare the directory to receive a number of
Read invocations, which transfer a printable representation of the
directory's contents to the reader."

Since any Eject's UID may be entered, "arbitrary networks of
directories can be constructed" — including cycles; tests exercise
this.
"""

from __future__ import annotations

from collections import deque
from typing import Any, TYPE_CHECKING

from repro.core.errors import (
    DuplicateEntryError,
    InvocationError,
    NoSuchEntryError,
)
from repro.core.message import Invocation
from repro.core.uid import UID
from repro.transput.primitives import Primitive, TransputEject
from repro.transput.stream import END_TRANSFER, Transfer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel


class Directory(TransputEject):
    """A directory Eject: name -> UID entries, plus the stream protocol."""

    eden_type = "Directory"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        name: str | None = None,
    ) -> None:
        super().__init__(kernel, uid, name=name)
        self.entries: dict[str, UID] = {}
        self._listing: deque[str] = deque()
        self._listing_prepared = False

    # -- the four §2 operations ------------------------------------------

    def op_AddEntry(self, invocation: Invocation):
        entry_name, entry_uid = invocation.args
        if not isinstance(entry_uid, UID):
            raise InvocationError("AddEntry needs (name, UID)")
        if entry_name in self.entries:
            raise DuplicateEntryError(entry_name)
        self.entries[str(entry_name)] = entry_uid
        return True

    def op_Lookup(self, invocation: Invocation):
        (entry_name,) = invocation.args
        uid = self.entries.get(str(entry_name))
        if uid is None:
            raise NoSuchEntryError(str(entry_name))
        return uid

    def op_DeleteEntry(self, invocation: Invocation):
        (entry_name,) = invocation.args
        if str(entry_name) not in self.entries:
            raise NoSuchEntryError(str(entry_name))
        del self.entries[str(entry_name)]
        return True

    def op_List(self, invocation: Invocation):
        """Prepare the printable listing for subsequent Reads (§4)."""
        self._listing = deque(self.render_listing())
        self._listing_prepared = True
        return len(self._listing)

    # -- extras -------------------------------------------------------------

    def op_Rename(self, invocation: Invocation):
        old, new = (str(part) for part in invocation.args)
        if old not in self.entries:
            raise NoSuchEntryError(old)
        if new in self.entries:
            raise DuplicateEntryError(new)
        self.entries[new] = self.entries.pop(old)
        return True

    def op_Size(self, invocation: Invocation):
        return len(self.entries)

    def op_Names(self, invocation: Invocation):
        return sorted(self.entries)

    def op_Commit(self, invocation: Invocation):
        yield self.checkpoint()
        return True

    # -- the stream protocol (a directory is a source, §4) -------------------

    def render_listing(self) -> list[str]:
        """The printable representation a List prepares."""
        return [
            f"{entry_name:<24} {entry_uid.brief()}"
            for entry_name, entry_uid in sorted(self.entries.items())
        ]

    def op_Read(self, invocation: Invocation):
        if not self._listing_prepared:
            # Reading without List behaves as List-then-Read (friendly).
            self._listing = deque(self.render_listing())
            self._listing_prepared = True
        batch = invocation.args[0] if invocation.args else 1
        batch = max(1, int(batch))
        self.note_primitive(Primitive.PASSIVE_OUTPUT)
        if not self._listing:
            self._listing_prepared = False  # next Read re-lists
            return END_TRANSFER
        taken = [
            self._listing.popleft()
            for _ in range(min(batch, len(self._listing)))
        ]
        return Transfer.of(taken)

    op_Transfer = op_Read

    # -- durability -----------------------------------------------------------

    def passive_representation(self) -> Any:
        return {"entries": dict(self.entries)}

    def restore(self, data: Any) -> None:
        self.entries = dict(data["entries"])
        self._listing = deque()
        self._listing_prepared = False
