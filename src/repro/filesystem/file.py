"""Eden files: active Ejects, not passive data structures.

Paper §2: "In Eden, files are Ejects: they are active rather than
passive entities.  An Eden file would itself be able to respond to
open, close, read and write invocations ... Once a file has been
written, the data is committed to stable storage by Checkpointing."

And §4, the read-only behaviours:

- "A file opened for input would respond to read invocations with the
  appropriate data, and eventually with an indication that the end of
  the file had been reached" — :meth:`EdenFile.op_OpenForReading`
  creates a transient reader Eject (one independent cursor per open).
- "A file opened for output would immediately issue a Read invocation,
  and would continue reading until it received an end of file
  indicator" — :meth:`EdenFile.op_ReadFrom` points the file at a
  source; the file itself pumps.
"""

from __future__ import annotations

from typing import Any, Iterable, TYPE_CHECKING

from repro.core.errors import InvocationError
from repro.core.message import Invocation
from repro.core.syscalls import Spawn
from repro.transput.primitives import (
    Primitive,
    TransputEject,
    read_stream,
)
from repro.transput.source import ListSource
from repro.transput.stream import StreamEndpoint, Transfer, WriteAck

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID


class FileReader(ListSource):
    """A transient cursor over a file's contents at open time.

    Created by ``OpenForReading``; responds to Read/Transfer; a
    ``Close`` deactivates it, and since it never Checkpoints, it
    disappears (the §7 UnixFile pattern).
    """

    eden_type = "FileReader"

    def op_Close(self, invocation: Invocation):
        yield self.reply(invocation, True)
        yield self.deactivate()


class EdenFile(TransputEject):
    """A file Eject holding a sequence of records.

    Operations:
        ``Append(transfer)`` — add records (passive input).
        ``Read(batch)`` — stream the whole contents (a shared, simple
        cursor for casual use; concurrent readers should OpenForReading).
        ``OpenForReading()`` — returns the UID of a fresh
        :class:`FileReader` over a snapshot of the contents.
        ``ReadFrom(endpoint)`` — pump a source into the file, then
        Checkpoint (the "opened for output" behaviour).
        ``Length`` / ``Contents`` / ``Clear`` / ``Commit`` — utilities.
    """

    eden_type = "EdenFile"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        records: Iterable[Any] = (),
        name: str | None = None,
    ) -> None:
        super().__init__(kernel, uid, name=name)
        self.records: list[Any] = list(records)
        self._cursor = 0
        self.ingesting = False
        self.ingest_count = 0

    # -- writing ----------------------------------------------------------

    def op_Append(self, invocation: Invocation):
        transfer = invocation.args[0]
        if not isinstance(transfer, Transfer):
            raise InvocationError("Append payload must be a Transfer")
        self.note_primitive(Primitive.PASSIVE_INPUT)
        if transfer.at_end:
            return WriteAck(accepted=0)
        self.records.extend(transfer.items)
        return WriteAck(accepted=len(transfer.items))

    # Streams may also be pushed at a file with plain Writes
    # (write-only discipline): identical semantics to Append.
    op_Write = op_Append

    def op_ReadFrom(self, invocation: Invocation):
        """Open for output: the *file* performs the active input."""
        endpoint = invocation.args[0]
        if not isinstance(endpoint, StreamEndpoint):
            raise InvocationError("ReadFrom needs a StreamEndpoint")
        if self.ingesting:
            raise InvocationError(f"{self.name} is already ingesting")
        self.ingesting = True

        def pump():
            items = yield from read_stream(self, endpoint)
            self.records.extend(items)
            self.ingest_count = len(items)
            self.ingesting = False
            yield self.checkpoint()

        yield Spawn(pump, name="ingest")
        return "ingesting"

    # -- reading ----------------------------------------------------------

    def op_Read(self, invocation: Invocation):
        batch = invocation.args[0] if invocation.args else 1
        batch = max(1, int(batch))
        taken = self.records[self._cursor : self._cursor + batch]
        self._cursor += len(taken)
        self.note_primitive(Primitive.PASSIVE_OUTPUT)
        if not taken:
            self._cursor = 0  # rewind so the file can be re-read later
            from repro.transput.stream import END_TRANSFER

            return END_TRANSFER
        return Transfer.of(taken)

    op_Transfer = op_Read

    def op_OpenForReading(self, invocation: Invocation):
        """Mint a transient reader over a snapshot of the contents."""
        reader = self.kernel.create(
            FileReader,
            items=list(self.records),
            name=f"{self.name}.reader",
            node=self.node,
        )
        return reader.uid

    # -- utilities ---------------------------------------------------------

    def op_Length(self, invocation: Invocation):
        return len(self.records)

    def op_Contents(self, invocation: Invocation):
        return list(self.records)

    def op_Clear(self, invocation: Invocation):
        self.records.clear()
        self._cursor = 0
        return True

    def op_Commit(self, invocation: Invocation):
        """Commit to stable storage by Checkpointing (paper §2)."""
        yield self.checkpoint()
        return True

    # -- durability ---------------------------------------------------------

    def passive_representation(self) -> Any:
        return {"records": list(self.records)}

    def restore(self, data: Any) -> None:
        self.records = list(data["records"])
        self._cursor = 0
