"""The Map protocol: random access beyond the stream abstraction.

Paper §6: "The Transput protocol does not support random access; a
disk file Eject (or an Eject with a large main store at its disposal)
may wish to define a protocol which supports the abstraction of a Map.
Such an Eject may not support the transput protocol at all, or it may
support both protocols."

:class:`MapFile` supports **both**: the Map operations (``ReadAt``,
``WriteAt``, ``Size``, ``Truncate``) and the Sequence protocol
(``Read``/``Transfer``), demonstrating the paper's point that stream
transput "is just a special use of the underlying invocation
mechanism" — applications that do not fit the stream mold "are free to
use some other invocation protocol."
"""

from __future__ import annotations

from typing import Any, Iterable, TYPE_CHECKING

from repro.core.errors import InvocationError
from repro.core.message import Invocation
from repro.transput.primitives import Primitive, TransputEject
from repro.transput.stream import END_TRANSFER, Transfer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID


class MapIndexError(InvocationError):
    """A Map operation addressed a slot outside the file."""

    def __init__(self, index: int, size: int) -> None:
        super().__init__(f"index {index} out of range for size {size}")
        self.index = index
        self.size = size


class MapFile(TransputEject):
    """A random-access file Eject speaking the Map protocol.

    Map operations:
        ``ReadAt(index, count=1)`` — records at [index, index+count);
        ``WriteAt(index, records)`` — overwrite in place (the file
        grows if the write runs past the current end);
        ``Size()`` — current record count;
        ``Truncate(size)`` — drop records past ``size``.

    Sequence protocol (both protocols at once, §6):
        ``Read(batch)`` / ``Transfer(batch)`` — stream from a shared
        cursor, END at the end, cursor rewinds (like
        :class:`~repro.filesystem.file.EdenFile`).

    Checkpointable like any Eden file.
    """

    eden_type = "MapFile"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        records: Iterable[Any] = (),
        name: str | None = None,
    ) -> None:
        super().__init__(kernel, uid, name=name)
        self.records: list[Any] = list(records)
        self._cursor = 0
        self.map_reads = 0
        self.map_writes = 0

    # -- the Map protocol ------------------------------------------------

    def op_ReadAt(self, invocation: Invocation):
        index = int(invocation.args[0])
        count = int(invocation.args[1]) if len(invocation.args) > 1 else 1
        if count < 0:
            raise InvocationError(f"count must be >= 0, got {count}")
        if index < 0 or index >= len(self.records):
            raise MapIndexError(index, len(self.records))
        self.map_reads += 1
        return list(self.records[index : index + count])

    def op_WriteAt(self, invocation: Invocation):
        index = int(invocation.args[0])
        records = list(invocation.args[1])
        if index < 0 or index > len(self.records):
            raise MapIndexError(index, len(self.records))
        needed = index + len(records) - len(self.records)
        if needed > 0:
            self.records.extend([None] * needed)
        self.records[index : index + len(records)] = records
        self.map_writes += 1
        return len(records)

    def op_Size(self, invocation: Invocation):
        return len(self.records)

    def op_Truncate(self, invocation: Invocation):
        size = int(invocation.args[0])
        if size < 0:
            raise InvocationError(f"size must be >= 0, got {size}")
        del self.records[size:]
        self._cursor = min(self._cursor, size)
        return len(self.records)

    # -- the Sequence protocol, side by side (§6) --------------------------

    def op_Read(self, invocation: Invocation):
        batch = invocation.args[0] if invocation.args else 1
        batch = max(1, int(batch))
        taken = self.records[self._cursor : self._cursor + batch]
        self._cursor += len(taken)
        self.note_primitive(Primitive.PASSIVE_OUTPUT)
        if not taken:
            self._cursor = 0
            return END_TRANSFER
        return Transfer.of(taken)

    op_Transfer = op_Read

    def op_Commit(self, invocation: Invocation):
        yield self.checkpoint()
        return True

    # -- durability ---------------------------------------------------------

    def passive_representation(self) -> Any:
        return {"records": list(self.records)}

    def restore(self, data: Any) -> None:
        self.records = list(data["records"])
        self._cursor = 0
