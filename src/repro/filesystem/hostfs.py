"""A simulated host (Unix) filesystem.

Paper §7: "Currently most data of interest is in the Unix file system,
so a bootstrap Eden transput system has been constructed."  The
prototype's Unix lives below the Eden kernel; here it is a small
in-memory hierarchical filesystem so the bootstrap layer
(:mod:`repro.filesystem.bootstrap`) has something real to read and
write.  Files hold *lines* (the record type our streams carry).

This object is host-level state, not an Eject: it models the disk and
kernel file tables of one simulated machine.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.errors import (
    HostFileExistsError,
    HostFileNotFoundError,
    HostIsADirectoryError,
    HostNotADirectoryError,
)


def split_path(path: str) -> list[str]:
    """Normalize a slash-separated path into components.

    ``"/a//b/"`` -> ``["a", "b"]``.  ``"."`` components are dropped;
    ``".."`` is not supported (the bootstrap layer has no notion of a
    working directory).
    """
    return [part for part in path.split("/") if part and part != "."]


class _Dir:
    __slots__ = ("children",)

    def __init__(self) -> None:
        self.children: dict[str, "_Dir | list[str]"] = {}


class HostFileSystem:
    """One machine's Unix filesystem: directories and line files."""

    def __init__(self) -> None:
        self._root = _Dir()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def _resolve_dir(self, parts: list[str], path: str) -> _Dir:
        node = self._root
        for part in parts:
            child = node.children.get(part)
            if child is None:
                raise HostFileNotFoundError(path)
            if not isinstance(child, _Dir):
                raise HostNotADirectoryError(path)
            node = child
        return node

    def _parent_of(self, path: str) -> tuple[_Dir, str]:
        parts = split_path(path)
        if not parts:
            raise HostIsADirectoryError("/")
        return self._resolve_dir(parts[:-1], path), parts[-1]

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------

    def write_file(
        self, path: str, lines: Iterable[str], exclusive: bool = False
    ) -> None:
        """Create or replace the file at ``path`` with ``lines``.

        Args:
            exclusive: fail if the path already exists.
        """
        parent, leaf = self._parent_of(path)
        existing = parent.children.get(leaf)
        if isinstance(existing, _Dir):
            raise HostIsADirectoryError(path)
        if exclusive and existing is not None:
            raise HostFileExistsError(path)
        parent.children[leaf] = [str(line) for line in lines]

    def append_file(self, path: str, lines: Iterable[str]) -> None:
        """Append ``lines``, creating the file if absent."""
        parent, leaf = self._parent_of(path)
        existing = parent.children.get(leaf)
        if isinstance(existing, _Dir):
            raise HostIsADirectoryError(path)
        if existing is None:
            existing = []
            parent.children[leaf] = existing
        existing.extend(str(line) for line in lines)

    def read_file(self, path: str) -> list[str]:
        """The lines of the file at ``path`` (a copy)."""
        parent, leaf = self._parent_of(path)
        node = parent.children.get(leaf)
        if node is None:
            raise HostFileNotFoundError(path)
        if isinstance(node, _Dir):
            raise HostIsADirectoryError(path)
        return list(node)

    def unlink(self, path: str) -> None:
        """Remove the file at ``path``."""
        parent, leaf = self._parent_of(path)
        node = parent.children.get(leaf)
        if node is None:
            raise HostFileNotFoundError(path)
        if isinstance(node, _Dir):
            raise HostIsADirectoryError(path)
        del parent.children[leaf]

    # ------------------------------------------------------------------
    # Directories
    # ------------------------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> None:
        """Create a directory (with ancestors when ``parents``)."""
        parts = split_path(path)
        if not parts:
            return
        node = self._root
        for index, part in enumerate(parts):
            child = node.children.get(part)
            last = index == len(parts) - 1
            if child is None:
                if last or parents:
                    child = _Dir()
                    node.children[part] = child
                else:
                    raise HostFileNotFoundError("/".join(parts[: index + 1]))
            elif not isinstance(child, _Dir):
                raise HostNotADirectoryError("/".join(parts[: index + 1]))
            elif last and not parents:
                raise HostFileExistsError(path)
            node = child

    def listdir(self, path: str = "/") -> list[str]:
        """Names in the directory at ``path``, sorted."""
        node = self._resolve_dir(split_path(path), path)
        return sorted(node.children)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def exists(self, path: str) -> bool:
        """Whether anything lives at ``path``."""
        parts = split_path(path)
        node: _Dir | list[str] = self._root
        for part in parts:
            if not isinstance(node, _Dir):
                return False
            child = node.children.get(part)
            if child is None:
                return False
            node = child
        return True

    def is_dir(self, path: str) -> bool:
        """Whether ``path`` names a directory."""
        parts = split_path(path)
        node: _Dir | list[str] = self._root
        for part in parts:
            if not isinstance(node, _Dir):
                return False
            child = node.children.get(part)
            if child is None:
                return False
            node = child
        return isinstance(node, _Dir)

    def walk(self, path: str = "/") -> Iterator[tuple[str, list[str], list[str]]]:
        """Yield ``(dirpath, dirnames, filenames)`` like :func:`os.walk`."""
        parts = split_path(path)
        start = self._resolve_dir(parts, path)
        stack: list[tuple[str, _Dir]] = [("/" + "/".join(parts), start)]
        while stack:
            dirpath, node = stack.pop()
            dirnames = sorted(
                name for name, child in node.children.items()
                if isinstance(child, _Dir)
            )
            filenames = sorted(
                name for name, child in node.children.items()
                if not isinstance(child, _Dir)
            )
            yield dirpath, dirnames, filenames
            for name in reversed(dirnames):
                child = node.children[name]
                assert isinstance(child, _Dir)
                prefix = dirpath.rstrip("/")
                stack.append((f"{prefix}/{name}", child))
