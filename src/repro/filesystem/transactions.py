"""Nested transactions on directories — the paper's cited future work.

Paper §7: "The preliminary design for the full Eden file system
incorporates nested transactions and atomic updates [10].  The
implementation of a subset which excludes transactions is underway."

This module implements that preliminary design for the Directory type:
a :class:`TransactionalDirectory` supports ``Begin`` / ``Commit`` /
``Abort`` with arbitrary nesting.  Semantics (following Moss-style
nesting, which [10] — the Eden Transaction-Based File System — adopts):

- a transaction sees its own writes, then its ancestors', then the
  committed state (read-your-writes up the chain);
- committing a *nested* transaction merges its write set into its
  parent (nothing durable happens);
- committing a *top-level* transaction applies the merged write set to
  the directory and Checkpoints (the atomic update);
- aborting discards the write set and aborts any live descendants;
- operations on a finished transaction raise
  :class:`~repro.core.errors.TransactionStateError`.

Sibling transactions are not isolated from committed state changes
(no locking): this matches the "preliminary design / subset" status
the paper reports, and DESIGN.md records the simplification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.core.errors import (
    InvocationError,
    NoSuchEntryError,
    TransactionStateError,
)
from repro.core.message import Invocation
from repro.core.uid import UID
from repro.filesystem.directory import Directory

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel

#: Write-set value marking a deletion.
_TOMBSTONE = None


@dataclass
class _Txn:
    txn_id: int
    parent: int | None
    writes: dict[str, UID | None] = field(default_factory=dict)
    children: list[int] = field(default_factory=list)
    state: str = "active"  # active | committed | aborted


class TransactionalDirectory(Directory):
    """A Directory whose updates may be grouped into nested transactions.

    All plain Directory operations remain available and act directly on
    committed state; pass ``txn=<id>`` (keyword) to stage them instead.
    """

    eden_type = "TransactionalDirectory"

    def __init__(
        self, kernel: "Kernel", uid: "UID", name: str | None = None
    ) -> None:
        super().__init__(kernel, uid, name=name)
        self._txns: dict[int, _Txn] = {}
        self._next_txn = 1
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def _get_active(self, txn_id: Any) -> _Txn:
        txn = self._txns.get(int(txn_id))
        if txn is None:
            raise TransactionStateError(f"unknown transaction {txn_id}")
        if txn.state != "active":
            raise TransactionStateError(
                f"transaction {txn_id} is {txn.state}, not active"
            )
        return txn

    def op_Begin(self, invocation: Invocation):
        parent_id = invocation.args[0] if invocation.args else None
        parent: _Txn | None = None
        if parent_id is not None:
            parent = self._get_active(parent_id)
        txn = _Txn(txn_id=self._next_txn, parent=parent_id)
        self._next_txn += 1
        self._txns[txn.txn_id] = txn
        if parent is not None:
            parent.children.append(txn.txn_id)
        return txn.txn_id

    def op_Commit(self, invocation: Invocation):
        if not invocation.args:
            # Plain Directory Commit: checkpoint committed state.
            yield self.checkpoint()
            return True
        txn = self._get_active(invocation.args[0])
        for child_id in txn.children:
            child = self._txns[child_id]
            if child.state == "active":
                raise TransactionStateError(
                    f"transaction {txn.txn_id} has active child {child_id}"
                )
        if txn.parent is not None:
            parent = self._get_active(txn.parent)
            parent.writes.update(txn.writes)
            txn.state = "committed"
            return "merged"
        # Top-level: apply atomically and make durable.
        for entry_name, value in txn.writes.items():
            if value is _TOMBSTONE:
                self.entries.pop(entry_name, None)
            else:
                self.entries[entry_name] = value
        txn.state = "committed"
        self.commits += 1
        yield self.checkpoint()
        return "committed"

    def op_Abort(self, invocation: Invocation):
        txn = self._get_active(invocation.args[0])
        self._abort_tree(txn)
        return True

    def _abort_tree(self, txn: _Txn) -> None:
        for child_id in txn.children:
            child = self._txns[child_id]
            if child.state == "active":
                self._abort_tree(child)
        txn.state = "aborted"
        txn.writes.clear()
        self.aborts += 1

    # ------------------------------------------------------------------
    # Transactional views of the four operations
    # ------------------------------------------------------------------

    def _effective_lookup(self, txn: _Txn, entry_name: str) -> UID:
        current: _Txn | None = txn
        while current is not None:
            if entry_name in current.writes:
                value = current.writes[entry_name]
                if value is _TOMBSTONE:
                    raise NoSuchEntryError(entry_name)
                return value
            current = self._txns.get(current.parent) if current.parent else None
        uid = self.entries.get(entry_name)
        if uid is None:
            raise NoSuchEntryError(entry_name)
        return uid

    def _exists_in(self, txn: _Txn, entry_name: str) -> bool:
        try:
            self._effective_lookup(txn, entry_name)
        except NoSuchEntryError:
            return False
        return True

    def op_AddEntry(self, invocation: Invocation):
        txn_id = invocation.kwargs.get("txn")
        if txn_id is None:
            return super().op_AddEntry(invocation)
        entry_name, entry_uid = invocation.args
        if not isinstance(entry_uid, UID):
            raise InvocationError("AddEntry needs (name, UID)")
        txn = self._get_active(txn_id)
        from repro.core.errors import DuplicateEntryError

        if self._exists_in(txn, str(entry_name)):
            raise DuplicateEntryError(str(entry_name))
        txn.writes[str(entry_name)] = entry_uid
        return True

    def op_Lookup(self, invocation: Invocation):
        txn_id = invocation.kwargs.get("txn")
        if txn_id is None:
            return super().op_Lookup(invocation)
        (entry_name,) = invocation.args
        return self._effective_lookup(self._get_active(txn_id), str(entry_name))

    def op_DeleteEntry(self, invocation: Invocation):
        txn_id = invocation.kwargs.get("txn")
        if txn_id is None:
            return super().op_DeleteEntry(invocation)
        (entry_name,) = invocation.args
        txn = self._get_active(txn_id)
        if not self._exists_in(txn, str(entry_name)):
            raise NoSuchEntryError(str(entry_name))
        txn.writes[str(entry_name)] = _TOMBSTONE
        return True

    def op_Names(self, invocation: Invocation):
        txn_id = invocation.kwargs.get("txn")
        if txn_id is None:
            return super().op_Names(invocation)
        txn = self._get_active(txn_id)
        names = set(self.entries)
        chain: list[_Txn] = []
        current: _Txn | None = txn
        while current is not None:
            chain.append(current)
            current = self._txns.get(current.parent) if current.parent else None
        # Apply outermost first so inner writes win.
        for scope in reversed(chain):
            for entry_name, value in scope.writes.items():
                if value is _TOMBSTONE:
                    names.discard(entry_name)
                else:
                    names.add(entry_name)
        return sorted(names)
