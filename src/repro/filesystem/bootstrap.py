"""The bootstrap Eden transput system (paper §7).

    "a 'Unix File System' Eject for each physical machine, which
    responds to two invocations, NewStream and UseStream. ...
    NewStream takes as input a Unix path name, and returns as its
    result an Eden stream, i.e. a Capability.  The Capability is
    actually the UID of a newly created Eject (of type UnixFile),
    whose purpose is to respond to Transfer invocations with the
    contents of the appropriate Unix file.  When the user closes the
    stream, the UnixFile Eject deactivates itself and, since it has
    never Checkpointed, disappears.  UseStream does the opposite; it
    takes as input a Unix path name and a Capability for a stream, and
    creates a UnixFile Eject which repeatedly invokes Transfer on the
    capability and records the data it receives.  When an end of
    stream status is returned by Transfer, the appropriate Unix file
    is opened, written and closed."

Both directions are reproduced literally, over the simulated
:class:`~repro.filesystem.hostfs.HostFileSystem` of the Eject's node.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.core.errors import InvocationError
from repro.core.message import Invocation
from repro.core.uid import UID
from repro.filesystem.hostfs import HostFileSystem
from repro.transput.primitives import (
    Primitive,
    TransputEject,
)
from repro.transput.stream import END_TRANSFER, StreamEndpoint, Transfer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel


class UnixFile(TransputEject):
    """A transient stream Eject over one Unix file (paper §7).

    In **read mode** it answers ``Transfer`` (and ``Read``) invocations
    with the file's lines; ``Close`` makes it deactivate and — never
    having Checkpointed — disappear.

    In **write mode** its own process "repeatedly invokes Transfer on
    the capability and records the data it receives"; at end of stream
    it writes the Unix file and deactivates.
    """

    eden_type = "UnixFile"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        hostfs: HostFileSystem | None = None,
        path: str = "",
        mode: str = "read",
        source: StreamEndpoint | None = None,
        name: str | None = None,
    ) -> None:
        if mode not in ("read", "write"):
            raise ValueError(f"mode must be 'read' or 'write', got {mode!r}")
        super().__init__(kernel, uid, name=name)
        self.hostfs = hostfs
        self.path = path
        self.mode = mode
        self.source = source
        self._lines: list[str] = []
        self._cursor = 0
        self.finished = False
        if mode == "read" and hostfs is not None:
            self._lines = hostfs.read_file(path)

    # -- read mode ---------------------------------------------------------

    def op_Transfer(self, invocation: Invocation):
        if self.mode != "read":
            raise InvocationError(f"{self.name} is a write-mode stream")
        batch = invocation.args[0] if invocation.args else 1
        batch = max(1, int(batch))
        taken = self._lines[self._cursor : self._cursor + batch]
        self._cursor += len(taken)
        self.note_primitive(Primitive.PASSIVE_OUTPUT)
        if not taken:
            return END_TRANSFER
        return Transfer.of(taken)

    op_Read = op_Transfer

    def op_Close(self, invocation: Invocation):
        """Close the stream: deactivate; never Checkpointed => gone."""
        yield self.reply(invocation, True)
        yield self.deactivate()

    # -- write mode ---------------------------------------------------------

    def process_bodies(self):
        if self.mode == "write":
            return [("pump", self._pump()), ("main", self.main())]
        return [("main", self.main())]

    def _pump(self):
        """Repeatedly invoke Transfer on the source capability (§7)."""
        assert self.source is not None
        while True:
            self.note_primitive(Primitive.ACTIVE_INPUT)
            transfer = yield self.call(
                self.source.uid, "Transfer", 1, channel=self.source.channel
            )
            if transfer.at_end:
                break
            self._lines.extend(str(item) for item in transfer.items)
        assert self.hostfs is not None
        self.hostfs.write_file(self.path, self._lines)
        self.finished = True
        yield self.deactivate()


class UnixFileSystem(TransputEject):
    """The per-machine bootstrap Eject: NewStream / UseStream (§7)."""

    eden_type = "UnixFileSystem"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        hostfs: HostFileSystem | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(kernel, uid, name=name)
        self.hostfs = hostfs if hostfs is not None else HostFileSystem()
        self.streams_created = 0

    def op_NewStream(self, invocation: Invocation) -> Any:
        """Unix path -> an Eden stream (the UID of a reader UnixFile)."""
        (path,) = invocation.args
        reader = self.kernel.create(
            UnixFile,
            hostfs=self.hostfs,
            path=str(path),
            mode="read",
            name=f"unixfile:{path}",
            node=self.node,
        )
        self.streams_created += 1
        return reader.uid

    def op_UseStream(self, invocation: Invocation) -> Any:
        """(Unix path, stream capability) -> a writer UnixFile's UID."""
        path, capability = invocation.args
        if isinstance(capability, UID):
            endpoint = StreamEndpoint(capability, None)
        elif isinstance(capability, StreamEndpoint):
            endpoint = capability
        else:
            raise InvocationError(
                "UseStream needs a UID or StreamEndpoint capability"
            )
        writer = self.kernel.create(
            UnixFile,
            hostfs=self.hostfs,
            path=str(path),
            mode="write",
            source=endpoint,
            name=f"unixfile:{path}",
            node=self.node,
        )
        self.streams_created += 1
        return writer.uid

    def op_ListFiles(self, invocation: Invocation) -> Any:
        """Names under a host directory (convenience beyond the paper)."""
        path = invocation.args[0] if invocation.args else "/"
        return self.hostfs.listdir(str(path))
