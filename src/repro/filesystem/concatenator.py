"""The Directory Concatenator (paper §2).

"it is possible to provide a Directory Concatenator type which is
initialised with a list of directories and which yields the same
result as would be obtained from performing the lookup on all of the
directories in turn until the name is found.  Such a concatenator
provides a facility rather like that offered by the Unix shell and the
PATH environment variable."

This is also the paper's worked example of *behavioural compatibility*:
"From the point of view of an Eject trying to perform a Lookup
operation, any Eject which responds in the appropriate way is a
satisfactory directory" — a concatenator can stand anywhere a
Directory can (tests verify this substitutability, including nesting
concatenators inside concatenators).

Both §2 implementation strategies are provided: ``strategy="forward"``
actually performs the multiple lookups; ``strategy="cache"`` maintains
"some sort of table which represents the concatenation".
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, TYPE_CHECKING

from repro.core.errors import InvocationError, NoSuchEntryError
from repro.core.message import Invocation
from repro.core.uid import UID
from repro.transput.primitives import Primitive, TransputEject
from repro.transput.stream import END_TRANSFER, Transfer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel

_STRATEGIES = ("forward", "cache")


class DirectoryConcatenator(TransputEject):
    """Behaves like the concatenation of several directories."""

    eden_type = "DirectoryConcatenator"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        directories: Iterable[UID] = (),
        name: str | None = None,
        strategy: str = "forward",
    ) -> None:
        if strategy not in _STRATEGIES:
            raise ValueError(f"strategy must be one of {_STRATEGIES}")
        super().__init__(kernel, uid, name=name)
        self.directories: list[UID] = list(directories)
        self.strategy = strategy
        self._cache: dict[str, UID] = {}
        self._cache_valid = False
        self._listing: deque[str] = deque()
        self.lookups_forwarded = 0

    # ------------------------------------------------------------------

    def op_Lookup(self, invocation: Invocation):
        (entry_name,) = invocation.args
        entry_name = str(entry_name)
        if self.strategy == "cache":
            yield from self._ensure_cache()
            if entry_name not in self._cache:
                raise NoSuchEntryError(entry_name)
            return self._cache[entry_name]
        for directory in self.directories:
            try:
                result = yield self.call(directory, "Lookup", entry_name)
            except NoSuchEntryError:
                continue
            finally:
                self.lookups_forwarded += 1
            return result
        raise NoSuchEntryError(entry_name)

    def _ensure_cache(self):
        if self._cache_valid:
            return
        table: dict[str, UID] = {}
        for directory in self.directories:
            names = yield self.call(directory, "Names")
            for entry_name in names:
                if entry_name in table:
                    continue  # earlier directory wins, as with PATH
                uid = yield self.call(directory, "Lookup", entry_name)
                table[entry_name] = uid
        self._cache = table
        self._cache_valid = True

    def op_Invalidate(self, invocation: Invocation):
        """Drop the cached table (after underlying directories change)."""
        self._cache_valid = False
        self._cache = {}
        return True

    def op_AddDirectory(self, invocation: Invocation):
        (directory,) = invocation.args
        if not isinstance(directory, UID):
            raise InvocationError("AddDirectory needs a UID")
        self.directories.append(directory)
        self._cache_valid = False
        return True

    # -- stream protocol: the combined listing -------------------------------

    def op_List(self, invocation: Invocation):
        lines: list[str] = []
        for directory in self.directories:
            count = yield self.call(directory, "List")
            while True:
                transfer = yield self.call(directory, "Read", max(1, count or 1))
                if transfer.at_end:
                    break
                lines.extend(transfer.items)
        self._listing = deque(lines)
        return len(lines)

    def op_Read(self, invocation: Invocation):
        batch = invocation.args[0] if invocation.args else 1
        batch = max(1, int(batch))
        self.note_primitive(Primitive.PASSIVE_OUTPUT)
        if not self._listing:
            return END_TRANSFER
        taken = [
            self._listing.popleft()
            for _ in range(min(batch, len(self._listing)))
        ]
        return Transfer.of(taken)

    # -- durability -----------------------------------------------------------

    def passive_representation(self) -> Any:
        return {
            "directories": list(self.directories),
            "strategy": self.strategy,
        }

    def restore(self, data: Any) -> None:
        self.directories = list(data["directories"])
        self.strategy = data["strategy"]
        self._cache_valid = False
        self._cache = {}
