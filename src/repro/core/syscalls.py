"""Syscall records yielded by Eject processes.

Language-level processes (paper §4: Concurrent Euclid processes inside
an Eject) are Python generators.  A process requests kernel services by
``yield``-ing one of the records below; the scheduler resumes it with
the result.  This style keeps the whole simulation single-threaded and
deterministic while faithfully modelling processes that are "waiting for
incoming invocations, waiting for replies to invocations, or running"
(paper §1).

Typical process body::

    def main(self):
        request = yield Receive(operations={"Read"})
        yield SendReply(request, result="hello")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

from repro.core.capability import ChannelId
from repro.core.message import Invocation
from repro.core.uid import UID

#: The type of a process body: a generator yielding syscalls.
ProcessBody = Generator["Syscall", Any, Any]


class Syscall:
    """Base class for everything a process may ``yield``."""

    __slots__ = ()


@dataclass(frozen=True)
class Invoke(Syscall):
    """Send an invocation without waiting; resumes with a ticket (int).

    This is Eden's asynchronous invocation: "The sending of an
    invocation does not suspend the execution of the sending Eject."
    Await the reply later with :class:`AwaitReply`.
    """

    target: UID
    operation: str
    args: tuple[Any, ...] = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    channel: ChannelId | None = None


@dataclass(frozen=True)
class AwaitReply(Syscall):
    """Block until the reply for ``ticket`` arrives; resumes with the
    invocation's result (or raises the carried error in the process)."""

    ticket: int


@dataclass(frozen=True)
class Call(Syscall):
    """Invoke and await the reply in one step (request/response RPC).

    Counts as exactly one invocation plus one reply — identical on the
    wire to :class:`Invoke` followed by :class:`AwaitReply`.
    """

    target: UID
    operation: str
    args: tuple[Any, ...] = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    channel: ChannelId | None = None


@dataclass(frozen=True)
class Receive(Syscall):
    """Block until a matching invocation arrives; resumes with the
    :class:`~repro.core.message.Invocation`.

    ``operations`` restricts matching to the named operations (``None``
    accepts any).  ``channels`` restricts matching to invocations whose
    channel qualifier is in the set (``None`` accepts any, including
    unqualified).  Matching is FIFO over the Eject's mailbox.
    """

    operations: frozenset[str] | None = None
    channels: frozenset | None = None

    @staticmethod
    def of(
        operations: Iterable[str] | None = None,
        channels: Iterable[ChannelId] | None = None,
    ) -> "Receive":
        """Convenience constructor accepting any iterables."""
        ops = frozenset(operations) if operations is not None else None
        chans = frozenset(channels) if channels is not None else None
        return Receive(operations=ops, channels=chans)


@dataclass(frozen=True)
class SendReply(Syscall):
    """Reply to a previously received invocation; resumes with ``None``.

    ``span`` optionally carries the causal origin of the data being
    returned (a :class:`repro.obs.spans.SpanContext`): a passive buffer
    answering a Read with a record that was deposited under some other
    trace attaches that trace here, and the kernel re-roots the
    reader's request span onto it (*datum-follows-trace*).
    """

    invocation: Invocation
    result: Any = None
    error: BaseException | None = None
    span: Any = None


@dataclass(frozen=True)
class AdoptSpan(Syscall):
    """Make ``span`` the process's causal context; resumes with ``None``.

    Used where a datum crosses an in-Eject queue between two processes
    (e.g. a write-only filter's receiver hands records to its worker):
    the worker adopts the deposit's span so its downstream Write joins
    the datum's trace instead of rooting a fresh one.
    """

    span: Any = None


@dataclass(frozen=True)
class Sleep(Syscall):
    """Block for ``duration`` units of virtual time; resumes with ``None``."""

    duration: float


@dataclass(frozen=True)
class GetTime(Syscall):
    """Resumes immediately with the current virtual time (float)."""


@dataclass(frozen=True)
class Spawn(Syscall):
    """Start another process inside the same Eject.

    ``body_factory`` is called with no arguments and must return a
    generator.  Resumes with the new process's name (str).
    """

    body_factory: Callable[[], ProcessBody]
    name: str = "worker"


@dataclass(frozen=True)
class ExitProcess(Syscall):
    """Terminate the yielding process immediately."""


@dataclass(frozen=True)
class YieldControl(Syscall):
    """Give other ready processes a turn; resumes with ``None``."""


@dataclass(frozen=True)
class DoCheckpoint(Syscall):
    """Write the Eject's passive representation to stable storage.

    Resumes with ``None``.  The Eject's ``passive_representation()``
    hook supplies the data.
    """


@dataclass(frozen=True)
class Deactivate(Syscall):
    """Deactivate the whole Eject (all its processes stop).

    If it has checkpointed, the kernel can reactivate it on the next
    invocation; otherwise it disappears (paper §7: the UnixFile Eject
    "deactivates itself and, since it has never Checkpointed,
    disappears").
    """


class Signal:
    """An intra-Eject condition variable for process cooperation.

    The paper's "standard IO module" shares a buffer between the filter
    process and a server process; they coordinate through signals.
    Signals are kernel objects but carry no messages — waiting/notifying
    never touches the transport and costs no invocations.
    """

    _counter = 0

    def __init__(self, name: str | None = None) -> None:
        Signal._counter += 1
        self.name = name or f"signal-{Signal._counter}"

    def __repr__(self) -> str:
        return f"Signal({self.name})"


@dataclass(frozen=True)
class WaitSignal(Syscall):
    """Block until the signal is notified; resumes with the notify value."""

    signal: Signal


@dataclass(frozen=True)
class NotifySignal(Syscall):
    """Wake every process waiting on ``signal``; resumes with the number
    of processes woken."""

    signal: Signal
    value: Any = None
