"""Capabilities: UIDs optionally qualified by a channel secret.

Section 5 of the paper proposes using UIDs as channel identifiers so
that "the only Ejects which are able to make valid ReadonChannel
requests of F are those to which a channel identifier has been given
explicitly".  We model that with :class:`ChannelCapability`: a channel
identifier minted by the owning Eject whose secret must be presented on
every qualified Read.

Plain integer (or string) channel identifiers are also supported — the
scheme the Eden prototype actually used (§7) — and deliberately provide
*no* security, which benchmark T6 demonstrates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Union

from repro.core.uid import UID

#: The type accepted wherever a channel identifier is expected.
ChannelId = Union[int, str, "ChannelCapability"]

#: Channel identifier conventionally used for a filter's primary output.
PRIMARY_CHANNEL: str = "Output"

#: Channel identifier conventionally used for a filter's report stream.
REPORT_CHANNEL: str = "Report"


@dataclass(frozen=True)
class ChannelCapability:
    """An unforgeable channel identifier (paper §5).

    ``owner`` is the UID of the Eject that provides the channel; the
    ``secret`` is known only to Ejects that were explicitly handed the
    capability.  Equality includes the secret, so a fabricated
    capability with a guessed secret simply compares unequal and fails
    validation.
    """

    owner: UID
    name: str
    secret: int = field(repr=False)

    def __str__(self) -> str:
        return f"chan:{self.owner.brief()}/{self.name}"


class ChannelMinter:
    """Mints channel capabilities for one owning Eject.

    Deterministically seeded from the owner UID so simulations replay
    identically.
    """

    def __init__(self, owner: UID, seed: int = 0) -> None:
        self._owner = owner
        self._rng = random.Random(f"chan:{owner.space}:{owner.serial}:{seed}")
        self._minted: dict[str, ChannelCapability] = {}

    def mint(self, name: str) -> ChannelCapability:
        """Create (or return the previously created) capability for ``name``."""
        if name not in self._minted:
            self._minted[name] = ChannelCapability(
                owner=self._owner, name=name, secret=self._rng.getrandbits(64)
            )
        return self._minted[name]

    def names(self) -> list[str]:
        """All channel names minted so far, in mint order."""
        return list(self._minted)

    def validate(self, presented: ChannelId) -> str | None:
        """Map a presented channel identifier to a channel name.

        Returns the channel name if ``presented`` is a capability this
        minter created (value-equal, secret included); ``None``
        otherwise.  Integer/string identifiers are not handled here —
        they are matched directly by name and carry no secret.
        """
        if not isinstance(presented, ChannelCapability):
            return None
        genuine = self._minted.get(presented.name)
        if genuine is not None and genuine == presented:
            return presented.name
        return None


def channel_key(channel: ChannelId) -> ChannelId:
    """Normalize a channel identifier for dictionary keying.

    Capabilities key by their (hashable) frozen identity; ints and
    strings key by themselves.
    """
    return channel
