"""Exception hierarchy for the simulated Eden kernel.

The paper's kernel reports failures to Ejects through invocation status
codes; in this reproduction those surface as Python exceptions raised at
the syscall boundary.  Every exception used anywhere in the library
derives from :class:`EdenError` so callers can catch the whole family.
"""

from __future__ import annotations


class EdenError(Exception):
    """Base class for every error raised by the simulated Eden system."""


class KernelError(EdenError):
    """Internal kernel invariant violation (a bug in the simulation)."""


class UnknownUIDError(EdenError):
    """An invocation was addressed to a UID the kernel has never issued."""

    def __init__(self, uid: object) -> None:
        super().__init__(f"no Eject is known under UID {uid!r}")
        self.uid = uid


class EjectCrashedError(EdenError):
    """The target Eject (or its node) has crashed and cannot respond."""

    def __init__(self, uid: object) -> None:
        super().__init__(f"Eject {uid!r} has crashed")
        self.uid = uid


class EjectDeactivatedError(EdenError):
    """The target Eject deactivated without a passive representation.

    Such an Eject cannot be reactivated (the paper: a never-Checkpointed
    Eject that deactivates itself "disappears").
    """

    def __init__(self, uid: object) -> None:
        super().__init__(f"Eject {uid!r} deactivated and left no checkpoint")
        self.uid = uid


class InvocationError(EdenError):
    """The target Eject rejected or failed the invocation."""


class NoSuchOperationError(InvocationError):
    """The target Eject's type does not define the requested operation."""

    def __init__(self, operation: str, target: object) -> None:
        super().__init__(f"Eject {target!r} does not respond to {operation!r}")
        self.operation = operation
        self.target = target


class NoSuchChannelError(InvocationError):
    """A Read named a channel identifier the Eject does not provide."""

    def __init__(self, channel: object, target: object) -> None:
        super().__init__(f"Eject {target!r} has no channel {channel!r}")
        self.channel = channel
        self.target = target


class ChannelSecurityError(InvocationError):
    """A capability channel identifier failed validation (forged read)."""


class EndOfStreamError(EdenError):
    """A Read was attempted past the end of a stream.

    Well-behaved clients stop at the END_OF_STREAM status instead of
    provoking this.
    """


class StreamProtocolError(EdenError):
    """The Sequence protocol was violated (e.g. data after end-of-stream)."""


class BufferOverflowError(EdenError):
    """A passive buffer was pushed beyond its capacity bound."""


class CheckpointError(EdenError):
    """Creating or loading a passive representation failed."""


class SchedulerDeadlockError(KernelError):
    """Every process is blocked and no timed event is pending."""


class ProcessFailedError(EdenError):
    """A process inside an Eject raised an uncaught exception."""

    def __init__(self, process_name: str, cause: BaseException) -> None:
        super().__init__(f"process {process_name!r} failed: {cause!r}")
        self.process_name = process_name
        self.cause = cause


class ForgeryError(EdenError):
    """An attempt was made to fabricate a UID or capability."""


class ShellError(EdenError):
    """Base class for errors raised by the pipeline shell."""


class ShellSyntaxError(ShellError):
    """The shell command line could not be parsed."""


class ShellNameError(ShellError):
    """A shell command referred to an unknown name."""


class HostFSError(EdenError):
    """Base class for simulated host (Unix) filesystem errors."""


class HostFileNotFoundError(HostFSError):
    """The named path does not exist in the simulated host filesystem."""

    def __init__(self, path: str) -> None:
        super().__init__(f"no such file or directory: {path!r}")
        self.path = path


class HostFileExistsError(HostFSError):
    """The named path already exists and may not be overwritten."""

    def __init__(self, path: str) -> None:
        super().__init__(f"file exists: {path!r}")
        self.path = path


class HostIsADirectoryError(HostFSError):
    """A file operation was attempted on a directory path."""

    def __init__(self, path: str) -> None:
        super().__init__(f"is a directory: {path!r}")
        self.path = path


class HostNotADirectoryError(HostFSError):
    """A directory operation was attempted on a file path."""

    def __init__(self, path: str) -> None:
        super().__init__(f"not a directory: {path!r}")
        self.path = path


class DirectoryError(EdenError):
    """Base class for Eden Directory Eject errors."""


class NoSuchEntryError(DirectoryError):
    """Lookup failed: the directory has no entry under that name."""

    def __init__(self, name: str) -> None:
        super().__init__(f"no directory entry named {name!r}")
        self.name = name


class DuplicateEntryError(DirectoryError):
    """AddEntry failed: the directory already has an entry by that name."""

    def __init__(self, name: str) -> None:
        super().__init__(f"directory entry {name!r} already exists")
        self.name = name


class TransactionError(EdenError):
    """Base class for the preliminary transaction layer."""


class TransactionAbortedError(TransactionError):
    """The transaction was aborted; none of its effects are visible."""


class TransactionStateError(TransactionError):
    """An operation was issued against a finished transaction."""
