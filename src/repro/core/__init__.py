"""The simulated Eden substrate: UIDs, invocation, Ejects, the kernel.

Public surface of the substrate layer.  Higher layers (``repro.transput``
and friends) are built exclusively on these names.
"""

from repro.core.capability import (
    PRIMARY_CHANNEL,
    REPORT_CHANNEL,
    ChannelCapability,
    ChannelId,
    ChannelMinter,
)
from repro.core.checkpoint import PassiveRepresentation, StableStore
from repro.core.clock import VirtualClock
from repro.core.eject import Eject
from repro.core.errors import (
    BufferOverflowError,
    ChannelSecurityError,
    CheckpointError,
    EdenError,
    EjectCrashedError,
    EjectDeactivatedError,
    EndOfStreamError,
    ForgeryError,
    InvocationError,
    KernelError,
    NoSuchChannelError,
    NoSuchOperationError,
    ProcessFailedError,
    StreamProtocolError,
    UnknownUIDError,
)
from repro.core.kernel import Kernel
from repro.core.message import Invocation, Reply, ReplyStatus
from repro.core.node import Node
from repro.core.process import Process, ProcessState
from repro.core.registry import TypeRegistry
from repro.core.scheduler import Scheduler
from repro.core.stats import KernelStats, StatsSnapshot
from repro.core.syscalls import (
    AwaitReply,
    Call,
    Deactivate,
    DoCheckpoint,
    ExitProcess,
    GetTime,
    Invoke,
    NotifySignal,
    Receive,
    SendReply,
    Signal,
    Sleep,
    Spawn,
    Syscall,
    WaitSignal,
    YieldControl,
)
from repro.core.tracing import TraceEvent, Tracer, load_jsonl
from repro.core.transport import Transport, TransportCosts
from repro.core.uid import UID, UIDFactory
from repro.core.workers import WorkerPoolEject

__all__ = [
    "AwaitReply",
    "BufferOverflowError",
    "Call",
    "ChannelCapability",
    "ChannelId",
    "ChannelMinter",
    "ChannelSecurityError",
    "CheckpointError",
    "Deactivate",
    "DoCheckpoint",
    "EdenError",
    "Eject",
    "EjectCrashedError",
    "EjectDeactivatedError",
    "EndOfStreamError",
    "ExitProcess",
    "ForgeryError",
    "GetTime",
    "Invocation",
    "InvocationError",
    "Invoke",
    "Kernel",
    "KernelError",
    "KernelStats",
    "NoSuchChannelError",
    "NoSuchOperationError",
    "Node",
    "NotifySignal",
    "PRIMARY_CHANNEL",
    "PassiveRepresentation",
    "Process",
    "ProcessFailedError",
    "ProcessState",
    "REPORT_CHANNEL",
    "Receive",
    "Reply",
    "ReplyStatus",
    "Scheduler",
    "SendReply",
    "Signal",
    "Sleep",
    "Spawn",
    "StableStore",
    "StatsSnapshot",
    "StreamProtocolError",
    "Syscall",
    "TraceEvent",
    "Tracer",
    "load_jsonl",
    "Transport",
    "TransportCosts",
    "TypeRegistry",
    "UID",
    "UIDFactory",
    "UnknownUIDError",
    "WorkerPoolEject",
    "VirtualClock",
    "WaitSignal",
    "YieldControl",
]
