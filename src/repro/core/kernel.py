"""The simulated Eden kernel.

The kernel is the meeting point of the substrate: it issues UIDs, maps
them to live Ejects, routes invocations and replies through the
transport, activates passive Ejects on demand, writes passive
representations to the stable store, and simulates crashes of Ejects
and whole nodes.

It also implements the messaging syscalls for the scheduler:
``Invoke``, ``AwaitReply``, ``Call``, ``Receive``, ``SendReply``,
``DoCheckpoint`` and ``Deactivate``.

Simulation drivers (tests, examples, benchmarks) interact through
:meth:`spawn_client`, :meth:`call_sync` and :meth:`run`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Type, TypeVar

from repro.core.capability import ChannelId
from repro.core.checkpoint import StableStore
from repro.core.clock import VirtualClock
from repro.core.eject import Eject
from repro.core.errors import (
    EdenError,
    EjectCrashedError,
    EjectDeactivatedError,
    KernelError,
    ProcessFailedError,
    UnknownUIDError,
)
from repro.core.message import Invocation, Reply, ReplyStatus
from repro.core.node import Node
from repro.core.process import Process
from repro.core.registry import TypeRegistry
from repro.core.scheduler import Disposition, Scheduler
from repro.core.stats import KernelStats
from repro.core.syscalls import (
    AdoptSpan,
    AwaitReply,
    Call,
    Deactivate,
    DoCheckpoint,
    Invoke,
    Receive,
    SendReply,
    Syscall,
)
from repro.core.tracing import Tracer
from repro.core.transport import Transport, TransportCosts
from repro.core.uid import UID, UIDFactory

E = TypeVar("E", bound=Eject)


@dataclass
class _TicketState:
    """Book-keeping for one outstanding invocation."""

    target: UID
    origin_node: Node | None
    waiter: Process | None = None
    reply: Reply | None = None
    replied: bool = False
    # Span bookkeeping (populated only when span tracing is on).
    span: Any = None
    op: str = ""
    invoker: str = ""
    started: float = 0.0
    rerooted: bool = False


@dataclass
class _EjectRecord:
    """Kernel-side record of one UID's current status."""

    eject: Eject | None  # live instance, or None while passive
    node_name: str | None
    deactivated: bool = False
    parked_mail: list[Invocation] = field(default_factory=list)


class Kernel:
    """One simulated Eden system.

    Args:
        seed: seeds the UID nonce stream (full determinism).
        costs: transport cost model; default is uniform unit cost.
        trace: enable structured event tracing.
        spans: also assign causal span contexts to every invocation and
            record a ``span`` trace event per request/reply pair
            (implies ``trace``).  Off by default so golden traces and
            zero-instrumentation benchmarks are unchanged.
    """

    def __init__(
        self,
        seed: int = 0,
        costs: TransportCosts | None = None,
        trace: bool = False,
        spans: bool = False,
    ) -> None:
        from repro.obs.spans import SpanIds

        self.clock = VirtualClock()
        self.stats = KernelStats()
        self.tracer = Tracer(enabled=trace or spans)
        self.spans_enabled = spans
        self._span_ids = SpanIds(prefix="k")
        self.scheduler = Scheduler(
            clock=self.clock,
            stats=self.stats,
            tracer=self.tracer,
            syscall_handler=self._handle_syscall,
        )
        self.transport = Transport(self.scheduler, costs=costs, stats=self.stats)
        self.uids = UIDFactory(space=0, seed=seed)
        self.store = StableStore()
        self.registry = TypeRegistry()
        self._nodes: dict[str, Node] = {}
        self.default_node = self.node("node-0")
        self._records: dict[UID, _EjectRecord] = {}
        self._tickets: dict[int, _TicketState] = {}
        self._client_counter = 0
        # Tickets are kernel state so whole simulations replay
        # identically, including trace contents.
        self._ticket_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def node(self, name: str) -> Node:
        """Get or create the node called ``name``."""
        if name not in self._nodes:
            self._nodes[name] = Node(name)
        return self._nodes[name]

    def nodes(self) -> list[Node]:
        """All nodes, in creation order."""
        return list(self._nodes.values())

    # ------------------------------------------------------------------
    # Eject lifecycle
    # ------------------------------------------------------------------

    def create(
        self,
        cls: Type[E],
        *args: Any,
        node: Node | str | None = None,
        name: str | None = None,
        **kwargs: Any,
    ) -> E:
        """Instantiate an Eject of type ``cls`` and start its processes.

        Extra positional/keyword arguments are passed to the subclass
        constructor after ``(kernel, uid)``.
        """
        self.registry.register(cls)
        uid = self.uids.issue()
        eject = cls(self, uid, *args, name=name, **kwargs)
        home = self._resolve_node(node)
        self._install(eject, home)
        self.stats.bump("ejects_created")
        self.tracer.emit(
            self.clock.now, "create", eject.name,
            type=cls.eden_type, node=home.name,
        )
        return eject

    def _resolve_node(self, node: Node | str | None) -> Node:
        if node is None:
            return self.default_node
        if isinstance(node, str):
            return self.node(node)
        return node

    def _install(self, eject: Eject, node: Node) -> None:
        eject.node = node
        node.host(eject.uid)
        record = self._records.get(eject.uid)
        if record is None:
            record = _EjectRecord(eject=eject, node_name=node.name)
            self._records[eject.uid] = record
        else:
            record.eject = eject
            record.node_name = node.name
            record.deactivated = False
        self._start_processes(eject)
        # Re-deliver mail parked while the Eject was passive.
        parked, record.parked_mail = record.parked_mail, []
        for invocation in parked:
            self._hand_to_eject(eject, invocation)

    def _start_processes(self, eject: Eject) -> None:
        for proc_name, body in eject.process_bodies():
            process = self.scheduler.spawn(
                body, name=f"{eject.name}/{proc_name}", owner=eject
            )
            eject.processes.append(process)

    def find(self, uid: UID) -> Eject | None:
        """The live Eject for ``uid``, or ``None`` if passive/unknown."""
        record = self._records.get(uid)
        return record.eject if record is not None else None

    def live_ejects(self) -> list[Eject]:
        """Every currently live (instantiated) Eject."""
        return [r.eject for r in self._records.values() if r.eject is not None]

    # ------------------------------------------------------------------
    # Crash and recovery simulation
    # ------------------------------------------------------------------

    def crash_eject(self, uid: UID) -> None:
        """Crash one Eject: volatile state is lost.

        Pending invocations (queued or in service) fail with
        :class:`EjectCrashedError`; later invocations reactivate it from
        its checkpoint if one exists.
        """
        record = self._records.get(uid)
        if record is None or record.eject is None:
            return
        eject = record.eject
        eject.crashed = True
        self.tracer.emit(self.clock.now, "crash", eject.name)
        self.scheduler.kill_processes(eject.processes)
        eject.processes.clear()
        eject._drop_waiters()
        queued = list(eject.mailbox)
        eject.mailbox.clear()
        for invocation in queued:
            self._reply_error(invocation.ticket, EjectCrashedError(uid))
        # In-service invocations (delivered, unreplied) also fail.
        for ticket, state in list(self._tickets.items()):
            if state.target == uid and not state.replied:
                self._reply_error(ticket, EjectCrashedError(uid))
        if eject.node is not None:
            eject.node.evict(uid)
        record.eject = None

    def crash_node(self, node: Node | str) -> None:
        """Crash a node and every Eject resident on it."""
        node = self._resolve_node(node)
        node.crash()
        for uid in list(node.resident_uids):
            self.crash_eject(uid)

    def recover_node(self, node: Node | str) -> None:
        """Bring a crashed node back; Ejects reactivate lazily."""
        self._resolve_node(node).recover()

    # ------------------------------------------------------------------
    # Mobility
    # ------------------------------------------------------------------

    def migrate(self, uid: UID, node: Node | str) -> Node:
        """Move a live Eject to another node.

        Eden invocation is location-independent ("It is not necessary
        to know the physical location of an Eject"), so moving an Eject
        is invisible to its clients except through transport costs.
        In-flight messages are unaffected: routing is by UID and the
        local/remote decision is taken per message at send time.
        """
        record = self._records.get(uid)
        if record is None or record.eject is None:
            raise KernelError(f"cannot migrate {uid}: no live Eject")
        target = self._resolve_node(node)
        if target.crashed:
            raise KernelError(f"cannot migrate {uid} to crashed {target.name}")
        eject = record.eject
        if eject.node is not None:
            eject.node.evict(uid)
        eject.node = target
        target.host(uid)
        record.node_name = target.name
        self.stats.bump("migrations")
        self.tracer.emit(self.clock.now, "migrate", eject.name,
                         to=target.name)
        return target

    # ------------------------------------------------------------------
    # Syscall handling (installed into the scheduler)
    # ------------------------------------------------------------------

    def _handle_syscall(self, process: Process, syscall: Syscall) -> Disposition:
        if isinstance(syscall, Invoke):
            return self._do_invoke(process, syscall, block_for_reply=False)
        if isinstance(syscall, Call):
            return self._do_invoke(process, syscall, block_for_reply=True)
        if isinstance(syscall, AwaitReply):
            return self._do_await(process, syscall.ticket)
        if isinstance(syscall, Receive):
            return self._do_receive(process, syscall)
        if isinstance(syscall, SendReply):
            return self._do_send_reply(process, syscall)
        if isinstance(syscall, DoCheckpoint):
            return self._do_checkpoint(process)
        if isinstance(syscall, Deactivate):
            return self._do_deactivate(process)
        if isinstance(syscall, AdoptSpan):
            process.current_span = syscall.span
            return ("resume", None)
        raise KernelError(f"unhandled syscall {type(syscall).__name__}")

    # -- invocation sending --------------------------------------------

    def _do_invoke(
        self, process: Process, syscall: Invoke | Call, block_for_reply: bool
    ) -> Disposition:
        try:
            self.uids.verify(syscall.target)
        except EdenError as exc:
            return ("throw", exc)
        if syscall.target not in self._records:
            return ("throw", UnknownUIDError(syscall.target))
        sender = process.owner if isinstance(process.owner, Eject) else None
        span = None
        if self.spans_enabled:
            # The causal parent is whatever invocation this process is
            # serving right now; a process serving nothing (a driver, an
            # active pump) roots a fresh trace — the demand chain of the
            # read-only discipline starts at the sink exactly this way.
            span = self._span_ids.derive(process.current_span)
        invocation = Invocation(
            target=syscall.target,
            operation=syscall.operation,
            args=tuple(syscall.args),
            kwargs=dict(syscall.kwargs),
            channel=syscall.channel,
            ticket=next(self._ticket_counter),
            sender=sender.uid if sender is not None else None,
            span=span,
        )
        origin_node = sender.node if sender is not None else None
        target_node_name = self._records[syscall.target].node_name
        remote = (
            origin_node is not None
            and target_node_name is not None
            and origin_node.name != target_node_name
        )
        state = _TicketState(target=syscall.target, origin_node=origin_node)
        if span is not None:
            state.span = span
            state.op = invocation.operation
            state.invoker = sender.name if sender else process.name
            state.started = self.clock.now
        self._tickets[invocation.ticket] = state
        self.tracer.emit(
            self.clock.now, "invoke",
            sender.name if sender else process.name,
            op=invocation.operation, target=str(invocation.target),
            ticket=invocation.ticket, channel=invocation.channel,
        )
        self.transport.send(
            size=invocation.payload_size(),
            remote=remote,
            deliver=lambda: self._deliver_invocation(invocation),
            kind="invocation",
        )
        if block_for_reply:
            state.waiter = process
            return ("block", f"call({invocation.operation}#{invocation.ticket})")
        return ("resume", invocation.ticket)

    def _deliver_invocation(self, invocation: Invocation) -> None:
        ticket = invocation.ticket
        record = self._records.get(invocation.target)
        if record is None:
            self._reply_error(ticket, UnknownUIDError(invocation.target))
            return
        if record.eject is not None:
            node = self._nodes.get(record.node_name) if record.node_name else None
            if node is not None and node.crashed:
                self._reply_error(ticket, EjectCrashedError(invocation.target))
                return
        if record.eject is None:
            # Passive: activate from checkpoint, or report the Eject gone.
            if self.store.has(invocation.target):
                self._reactivate(invocation.target)
                record = self._records[invocation.target]
            elif record.deactivated:
                self._reply_error(
                    ticket, EjectDeactivatedError(invocation.target)
                )
                return
            else:
                self._reply_error(ticket, EjectCrashedError(invocation.target))
                return
        assert record.eject is not None
        # Redact the sender before the invocation reaches user code: the
        # originator's UID is private to the kernel (paper §5).
        redacted = Invocation(
            target=invocation.target,
            operation=invocation.operation,
            args=invocation.args,
            kwargs=invocation.kwargs,
            channel=invocation.channel,
            ticket=invocation.ticket,
            sender=None,
            span=invocation.span,
        )
        self.tracer.emit(
            self.clock.now, "deliver", record.eject.name,
            op=redacted.operation, ticket=redacted.ticket,
        )
        self._hand_to_eject(record.eject, redacted)

    def _hand_to_eject(self, eject: Eject, invocation: Invocation) -> None:
        waiting = eject._enqueue(invocation)
        if waiting is not None:
            # The serving process inherits the invocation's span as its
            # causal context until it picks up different work.
            waiting.current_span = invocation.span
            self.scheduler.unblock(waiting, invocation)

    def _reactivate(self, uid: UID) -> None:
        representation = self.store.read(uid)
        if representation is None:
            raise KernelError(f"no passive representation for {uid}")
        wrapper = representation.data
        record = self._records[uid]
        node = self._pick_reactivation_node(record)
        eject = self.registry.instantiate_blank(
            representation.eden_type, self, uid, wrapper["name"]
        )
        eject.restore(wrapper["state"])
        self._install(eject, node)
        self.stats.bump("ejects_activated")
        self.tracer.emit(self.clock.now, "activate", eject.name)

    def _pick_reactivation_node(self, record: _EjectRecord) -> Node:
        if record.node_name is not None:
            node = self.node(record.node_name)
            if not node.crashed:
                return node
        if self.default_node.crashed:
            for node in self._nodes.values():
                if not node.crashed:
                    return node
            raise KernelError("every node has crashed; nowhere to reactivate")
        return self.default_node

    # -- replies --------------------------------------------------------

    def _do_send_reply(self, process: Process, syscall: SendReply) -> Disposition:
        ticket = syscall.invocation.ticket
        state = self._tickets.get(ticket)
        if state is None or state.replied:
            return (
                "throw",
                KernelError(f"no outstanding invocation with ticket {ticket}"),
            )
        if syscall.error is not None:
            reply = Reply(ticket=ticket, status=ReplyStatus.ERROR,
                          error=syscall.error)
        else:
            reply = Reply(ticket=ticket, status=ReplyStatus.OK,
                          result=syscall.result, span=syscall.span)
        state.replied = True
        replier = process.owner if isinstance(process.owner, Eject) else None
        if replier is not None:
            replier.replied_count += 1
        replier_node = replier.node if replier is not None else None
        remote = (
            replier_node is not None
            and state.origin_node is not None
            and replier_node.name != state.origin_node.name
        )
        self.tracer.emit(
            self.clock.now, "reply", process.name,
            ticket=ticket, status=reply.status.value,
        )
        self.transport.send(
            size=reply.payload_size(),
            remote=remote,
            deliver=lambda: self._deliver_reply(reply),
            kind="reply",
        )
        return ("resume", None)

    def _reply_error(self, ticket: int, error: EdenError) -> None:
        """Kernel-originated error reply (target gone, crashed, …)."""
        state = self._tickets.get(ticket)
        if state is None or state.replied:
            return
        state.replied = True
        reply = Reply(ticket=ticket, status=ReplyStatus.ERROR, error=error)
        self.transport.send(
            size=0,
            remote=False,
            deliver=lambda: self._deliver_reply(reply),
            kind="reply",
        )

    def _deliver_reply(self, reply: Reply) -> None:
        state = self._tickets.pop(reply.ticket, None)
        if state is None:
            return  # awaiter's Eject crashed meanwhile; drop silently
        if state.span is not None:
            override = reply.span
            if override is not None and override.trace != state.span.trace:
                # Datum-follows-trace: the replier handed back data
                # deposited under another trace.  Keep our span id but
                # join the datum's trace as a child of the depositing
                # hop — exactly the wire runtime's re-rooting rule.
                state.span = type(state.span)(
                    trace=override.trace,
                    span=state.span.span,
                    parent=override.span,
                )
                state.rerooted = True
            # The request span closes when its reply reaches the
            # invoker — the same instant the wire runtime uses.
            self.tracer.emit(
                self.clock.now, "span", state.invoker,
                trace=state.span.trace, span=state.span.span,
                parent=state.span.parent, op=state.op,
                start=state.started, end=self.clock.now,
                status=reply.status.value,
            )
        if state.waiter is not None:
            if state.rerooted:
                # The resuming process adopts the datum's trace, so a
                # following downstream Write chains onto this Read.
                state.waiter.current_span = state.span
            self._resume_with_reply(state.waiter, reply)
        else:
            state.reply = reply
            self._tickets[reply.ticket] = state  # hold for AwaitReply

    def _resume_with_reply(self, process: Process, reply: Reply) -> None:
        if reply.status is ReplyStatus.ERROR:
            assert reply.error is not None
            self.scheduler.unblock_with_exception(process, reply.error)
        else:
            self.scheduler.unblock(process, reply.result)

    def _do_await(self, process: Process, ticket: int) -> Disposition:
        state = self._tickets.get(ticket)
        if state is None:
            return (
                "throw",
                KernelError(f"unknown or already-awaited ticket {ticket}"),
            )
        if state.reply is not None:
            self._tickets.pop(ticket, None)
            reply = state.reply
            if state.rerooted:
                process.current_span = state.span
            if reply.status is ReplyStatus.ERROR:
                assert reply.error is not None
                return ("throw", reply.error)
            return ("resume", reply.result)
        if state.waiter is not None:
            return (
                "throw",
                KernelError(f"ticket {ticket} already has an awaiting process"),
            )
        state.waiter = process
        return ("block", f"await(#{ticket})")

    # -- receive ---------------------------------------------------------

    def _do_receive(self, process: Process, syscall: Receive) -> Disposition:
        owner = process.owner
        if not isinstance(owner, Eject):
            return (
                "throw",
                KernelError("only Eject processes may Receive invocations"),
            )
        queued = owner._register_receiver(process, syscall)
        if queued is not None:
            process.current_span = queued.span
            return ("resume", queued)
        ops = sorted(syscall.operations) if syscall.operations else "any"
        return ("block", f"receive({ops})")

    # -- checkpoint / deactivate ------------------------------------------

    def _do_checkpoint(self, process: Process) -> Disposition:
        owner = process.owner
        if not isinstance(owner, Eject):
            return ("throw", KernelError("only Ejects may Checkpoint"))
        self.registry.register(type(owner))
        wrapper = {"name": owner.name, "state": owner.passive_representation()}
        self.store.write(owner.uid, owner.eden_type, wrapper, self.clock.now)
        self.stats.bump("checkpoints")
        self.tracer.emit(self.clock.now, "checkpoint", owner.name)
        return ("resume", None)

    def _do_deactivate(self, process: Process) -> Disposition:
        owner = process.owner
        if not isinstance(owner, Eject):
            return ("throw", KernelError("only Ejects may Deactivate"))
        record = self._records[owner.uid]
        self.tracer.emit(self.clock.now, "deactivate", owner.name)
        owner.active = False
        self.scheduler.kill_processes(
            [p for p in owner.processes if p is not process]
        )
        owner.processes.clear()
        owner._drop_waiters()
        if self.store.has(owner.uid):
            # Reactivatable: park unconsumed mail for the next incarnation.
            record.parked_mail.extend(owner.mailbox)
        else:
            for invocation in owner.mailbox:
                self._reply_error(
                    invocation.ticket, EjectDeactivatedError(owner.uid)
                )
        owner.mailbox.clear()
        # Invocations a (now killed) worker process had in service can
        # never be answered by this incarnation: fail them rather than
        # strand their senders.
        for ticket, state in list(self._tickets.items()):
            if state.target == owner.uid and not state.replied:
                self._reply_error(ticket, EjectDeactivatedError(owner.uid))
        record.deactivated = True
        record.eject = None
        if owner.node is not None:
            owner.node.evict(owner.uid)
        return ("exit", None)

    # ------------------------------------------------------------------
    # Driver interface (tests, examples, benchmarks)
    # ------------------------------------------------------------------

    def spawn_client(self, body, name: str | None = None) -> Process:
        """Start a driver process that is not owned by any Eject.

        ``body`` is a generator (already called).  Client invocations
        carry no sender and pay local transport cost.
        """
        self._client_counter += 1
        return self.scheduler.spawn(
            body, name=name or f"client-{self._client_counter}", owner=None
        )

    def run(
        self,
        max_steps: int | None = 10_000_000,
        until: Callable[[], bool] | None = None,
        raise_on_failure: bool = True,
    ) -> int:
        """Run the simulation to quiescence; see :meth:`Scheduler.run`."""
        return self.scheduler.run(
            max_steps=max_steps, until=until, raise_on_failure=raise_on_failure
        )

    def describe_world(self) -> str:
        """A human-readable snapshot of the simulated system.

        One line per node listing its residents, then one line per live
        Eject with its process states — the first thing to print when a
        simulation does something surprising.
        """
        lines = [f"virtual time: {self.clock.now:g}"]
        for node in self.nodes():
            status = "CRASHED" if node.crashed else "up"
            residents = sorted(
                eject.name
                for eject in self.live_ejects()
                if eject.node is node
            )
            lines.append(
                f"node {node.name} [{status}]: "
                + (", ".join(residents) if residents else "(empty)")
            )
        for eject in sorted(self.live_ejects(), key=lambda e: e.name):
            states = ", ".join(
                f"{p.name.rsplit('/', 1)[-1]}={p.state.value}"
                + (f"({p.blocked_on})" if p.blocked_on else "")
                for p in eject.processes
            )
            mailbox = f" mailbox={len(eject.mailbox)}" if eject.mailbox else ""
            lines.append(f"  {eject.name}: {states}{mailbox}")
        pending = len(self._tickets)
        if pending:
            lines.append(f"outstanding invocations: {pending}")
        return "\n".join(lines)

    def call_sync(
        self,
        target: UID,
        operation: str,
        *args: Any,
        channel: ChannelId | None = None,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``operation`` on ``target`` and run until it replies.

        Returns the invocation result (raising the carried error on an
        error reply).  This is the standard way for host-level test code
        to poke the simulated world.
        """
        box: dict[str, Any] = {}

        def body():
            box["result"] = yield Call(
                target=target,
                operation=operation,
                args=args,
                kwargs=kwargs,
                channel=channel,
            )

        process = self.spawn_client(body())
        try:
            self.run(until=lambda: not process.alive)
        except ProcessFailedError as failure:
            if failure.process_name == process.name and isinstance(
                failure.cause, EdenError
            ):
                raise failure.cause from None
            raise
        if process.failure is not None:
            raise process.failure
        if process.alive:
            raise KernelError(
                f"call_sync({operation}) did not complete; "
                f"blocked on {process.blocked_on}"
            )
        return box.get("result")
