"""Passive representations and the stable store.

Paper §1: "An Eject may perform a Checkpoint operation.  The effect of
Checkpointing is to create a Passive Representation, a data structure
designed to be durable across system crashes. ... The checkpoint
primitive is the only mechanism provided by the Eden kernel whereby an
Eject may access 'stable storage'."

The stable store survives simulated crashes (it is held outside nodes),
mirroring the disk of the prototype.  Representations are deep-copied
on both write and read so a live Eject can never mutate its own
checkpoint in place — durability tests rely on this isolation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any

from repro.core.errors import CheckpointError
from repro.core.uid import UID


@dataclass(frozen=True)
class PassiveRepresentation:
    """A durable snapshot of one Eject.

    Attributes:
        uid: the Eject the snapshot belongs to.
        eden_type: registered type name used to re-instantiate it.
        data: type-specific state (must be deep-copyable).
        checkpoint_time: virtual time of the Checkpoint operation.
        generation: 1 for the first checkpoint, then 2, 3, …
    """

    uid: UID
    eden_type: str
    data: Any
    checkpoint_time: float
    generation: int


class StableStore:
    """The kernel's stable storage: UID -> latest passive representation."""

    def __init__(self) -> None:
        self._representations: dict[UID, PassiveRepresentation] = {}
        self._writes = 0

    @property
    def write_count(self) -> int:
        """Total checkpoints ever written (across all Ejects)."""
        return self._writes

    def write(
        self, uid: UID, eden_type: str, data: Any, checkpoint_time: float
    ) -> PassiveRepresentation:
        """Persist a new passive representation for ``uid``."""
        previous = self._representations.get(uid)
        generation = 1 if previous is None else previous.generation + 1
        try:
            frozen = copy.deepcopy(data)
        except Exception as exc:
            raise CheckpointError(
                f"passive representation for {uid} is not deep-copyable: {exc}"
            ) from exc
        representation = PassiveRepresentation(
            uid=uid,
            eden_type=eden_type,
            data=frozen,
            checkpoint_time=checkpoint_time,
            generation=generation,
        )
        self._representations[uid] = representation
        self._writes += 1
        return representation

    def read(self, uid: UID) -> PassiveRepresentation | None:
        """Fetch the latest representation for ``uid`` (or ``None``).

        The caller receives a copy whose ``data`` is safe to mutate.
        """
        representation = self._representations.get(uid)
        if representation is None:
            return None
        return PassiveRepresentation(
            uid=representation.uid,
            eden_type=representation.eden_type,
            data=copy.deepcopy(representation.data),
            checkpoint_time=representation.checkpoint_time,
            generation=representation.generation,
        )

    def has(self, uid: UID) -> bool:
        """Whether any representation exists for ``uid``."""
        return uid in self._representations

    def forget(self, uid: UID) -> None:
        """Discard the representation (used when an Eject is destroyed)."""
        self._representations.pop(uid, None)

    def uids(self) -> list[UID]:
        """UIDs with at least one stored representation."""
        return sorted(self._representations)
