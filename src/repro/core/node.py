"""Simulated machines ("nodes") hosting Ejects.

The Eden prototype was distributed over several VAX processors; an
Eject lives on one node, but invocation is location-independent — the
only observable difference between local and remote communication is
cost (and node crashes).  Benchmarks place pipeline stages on distinct
nodes to measure the remote-invocation savings of the read-only scheme.
"""

from __future__ import annotations

from repro.core.uid import UID


class Node:
    """One simulated machine."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.crashed = False
        self._resident: set[UID] = set()

    @property
    def resident_uids(self) -> frozenset[UID]:
        """UIDs of Ejects currently hosted on this node."""
        return frozenset(self._resident)

    def host(self, uid: UID) -> None:
        """Record that ``uid``'s Eject lives here."""
        self._resident.add(uid)

    def evict(self, uid: UID) -> None:
        """Record that ``uid``'s Eject no longer lives here."""
        self._resident.discard(uid)

    def crash(self) -> None:
        """Mark the node (and so every resident Eject) as crashed."""
        self.crashed = True

    def recover(self) -> None:
        """Bring the node back up; Ejects reactivate lazily on demand."""
        self.crashed = False

    def __repr__(self) -> str:
        status = "crashed" if self.crashed else "up"
        return f"Node({self.name}, {status}, {len(self._resident)} ejects)"
