"""Deterministic cooperative scheduler for the simulated Eden system.

The scheduler owns the ready queue, the timed-event heap and the
intra-Eject signal tables.  Messaging syscalls (``Invoke``, ``Receive``,
``Call``, …) are delegated to a pluggable handler — in practice the
:class:`~repro.core.kernel.Kernel` — so the scheduler itself knows
nothing about UIDs or transports.

Determinism: ready processes run round-robin in arrival order; timed
events tie-break on a monotonically increasing sequence number.  Two
runs of the same simulation produce identical schedules, counters and
virtual times.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Iterable

from repro.core.clock import VirtualClock
from repro.core.errors import KernelError, ProcessFailedError
from repro.core.process import Process, ProcessState
from repro.core.stats import KernelStats
from repro.core.syscalls import (
    ExitProcess,
    GetTime,
    NotifySignal,
    Signal,
    Sleep,
    Spawn,
    Syscall,
    WaitSignal,
    YieldControl,
)
from repro.core.tracing import Tracer

#: What a syscall handler may do with the issuing process.
#:   ("resume", value)  — ready again; ``value`` sent in at next step.
#:   ("throw", exc)     — ready again; ``exc`` thrown in at next step.
#:   ("block", why)     — parked; someone must call unblock() later.
#:   ("exit", None)     — terminated.
Disposition = tuple[str, Any]

SyscallHandler = Callable[[Process, Syscall], Disposition]


class Scheduler:
    """Runs processes and timed events against a virtual clock."""

    def __init__(
        self,
        clock: VirtualClock | None = None,
        stats: KernelStats | None = None,
        tracer: Tracer | None = None,
        syscall_handler: SyscallHandler | None = None,
    ) -> None:
        self.clock = clock or VirtualClock()
        self.stats = stats or KernelStats()
        self.tracer = tracer or Tracer()
        self._handler = syscall_handler
        self._ready: deque[Process] = deque()
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._event_seq = 0
        self._signal_waiters: dict[Signal, list[Process]] = {}
        self._processes: list[Process] = []
        self.failures: list[ProcessFailedError] = []

    # ------------------------------------------------------------------
    # Configuration and registration
    # ------------------------------------------------------------------

    def set_syscall_handler(self, handler: SyscallHandler) -> None:
        """Install the handler for messaging syscalls (the kernel)."""
        self._handler = handler

    def add_process(self, process: Process) -> Process:
        """Register a new process and make it ready."""
        self._processes.append(process)
        self._make_ready(process)
        self.tracer.emit(self.clock.now, "spawn", process.name)
        return process

    def spawn(self, body, name: str, owner: Any = None) -> Process:
        """Create, register and return a new process."""
        return self.add_process(Process(body, name=name, owner=owner))

    # ------------------------------------------------------------------
    # Blocking / unblocking / timed events
    # ------------------------------------------------------------------

    def _make_ready(self, process: Process) -> None:
        if not process.alive:
            return
        process.state = ProcessState.READY
        self._ready.append(process)

    def unblock(self, process: Process, value: Any = None) -> None:
        """Move a blocked process back to the ready queue with ``value``."""
        if process.state is not ProcessState.BLOCKED:
            if not process.alive:
                return  # killed while blocked (e.g. its Eject crashed)
            raise KernelError(f"cannot unblock {process!r}")
        process.resume_with(value)
        self._make_ready(process)

    def unblock_with_exception(self, process: Process, exc: BaseException) -> None:
        """Move a blocked process back to ready; ``exc`` is thrown into it."""
        if process.state is not ProcessState.BLOCKED:
            if not process.alive:
                return
            raise KernelError(f"cannot unblock {process!r}")
        process.resume_with_exception(exc)
        self._make_ready(process)

    def schedule_event(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._event_seq += 1
        heapq.heappush(
            self._events, (self.clock.now + delay, self._event_seq, action)
        )

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def run(
        self,
        max_steps: int | None = 10_000_000,
        until: Callable[[], bool] | None = None,
        raise_on_failure: bool = True,
    ) -> int:
        """Run to quiescence (or until the predicate holds).

        Quiescence means: no ready process and no pending timed event.
        Blocked processes (servers waiting for invocations) are normal
        at quiescence.

        Args:
            max_steps: guard against runaway simulations; ``None``
                disables the guard.
            until: checked after every step/event; run stops once true.
            raise_on_failure: raise the first uncaught process failure
                instead of merely recording it in ``self.failures``.

        Returns:
            The number of process steps executed.
        """
        steps = 0
        while True:
            if until is not None and until():
                break
            if self._ready:
                process = self._ready.popleft()
                if not process.alive:
                    continue
                self._step_process(process, raise_on_failure)
                steps += 1
                if max_steps is not None and steps > max_steps:
                    raise KernelError(
                        f"simulation exceeded {max_steps} steps; "
                        "likely a spinning process"
                    )
                continue
            if self._events:
                when, _seq, action = heapq.heappop(self._events)
                self.clock.advance_to(when)
                self.stats.bump("events_processed")
                action()
                continue
            break
        return steps

    def _step_process(self, process: Process, raise_on_failure: bool) -> None:
        self.stats.bump("context_switches")
        try:
            syscall = process.step()
        except BaseException as exc:  # body raised: record, optionally re-raise
            failure = ProcessFailedError(process.name, exc)
            self.failures.append(failure)
            self.tracer.emit(
                self.clock.now, "fail", process.name, error=repr(exc)
            )
            if raise_on_failure:
                raise failure from exc
            return
        if syscall is None:  # body returned normally
            self.tracer.emit(self.clock.now, "exit", process.name)
            return
        self._dispatch(process, syscall)

    def _dispatch(self, process: Process, syscall: Syscall) -> None:
        disposition = self._handle_builtin(process, syscall)
        if disposition is None:
            if self._handler is None:
                raise KernelError(
                    f"no syscall handler installed for {type(syscall).__name__}"
                )
            disposition = self._handler(process, syscall)
        kind, value = disposition
        if kind == "resume":
            process.resume_with(value)
            self._make_ready(process)
        elif kind == "throw":
            process.resume_with_exception(value)
            self._make_ready(process)
        elif kind == "block":
            process.state = ProcessState.BLOCKED
            process.blocked_on = str(value)
        elif kind == "exit":
            process.kill()
            self.tracer.emit(self.clock.now, "exit", process.name)
        else:
            raise KernelError(f"unknown disposition {kind!r}")

    def _handle_builtin(
        self, process: Process, syscall: Syscall
    ) -> Disposition | None:
        """Handle syscalls the scheduler can service without the kernel."""
        if isinstance(syscall, Sleep):
            self.schedule_event(
                syscall.duration, lambda: self.unblock(process, None)
            )
            return ("block", f"sleep({syscall.duration})")
        if isinstance(syscall, GetTime):
            return ("resume", self.clock.now)
        if isinstance(syscall, YieldControl):
            return ("resume", None)
        if isinstance(syscall, ExitProcess):
            return ("exit", None)
        if isinstance(syscall, Spawn):
            child = Process(
                syscall.body_factory(),
                name=self._child_name(process, syscall.name),
                owner=process.owner,
            )
            self.add_process(child)
            return ("resume", child.name)
        if isinstance(syscall, WaitSignal):
            self._signal_waiters.setdefault(syscall.signal, []).append(process)
            return ("block", f"wait({syscall.signal.name})")
        if isinstance(syscall, NotifySignal):
            waiters = self._signal_waiters.pop(syscall.signal, [])
            for waiter in waiters:
                self.unblock(waiter, syscall.value)
            return ("resume", len(waiters))
        return None

    def _child_name(self, parent: Process, base: str) -> str:
        prefix = parent.name.rsplit("/", 1)[0]
        existing = {p.name for p in self._processes}
        candidate = f"{prefix}/{base}"
        counter = 1
        while candidate in existing:
            counter += 1
            candidate = f"{prefix}/{base}-{counter}"
        return candidate

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def processes(self) -> list[Process]:
        """Every process ever registered (including finished ones)."""
        return list(self._processes)

    def live_processes(self) -> list[Process]:
        """Processes that can still run."""
        return [p for p in self._processes if p.alive]

    def blocked_processes(self) -> list[Process]:
        """Processes currently parked on a syscall."""
        return [p for p in self._processes if p.state is ProcessState.BLOCKED]

    def kill_processes(self, processes: Iterable[Process]) -> None:
        """Terminate the given processes (used for crash simulation)."""
        for process in processes:
            process.kill()

    def has_pending_events(self) -> bool:
        """Whether any timed event is still scheduled."""
        return bool(self._events)

    def stuck_processes(self) -> list[Process]:
        """Blocked processes that are *not* harmlessly serving.

        At quiescence, a process parked on ``Receive`` is a server
        waiting for work — normal.  A process parked on a reply, a
        signal or anything else will never run again unless someone
        wakes it: if the simulation has quiesced, that is a deadlock
        symptom.  Callers that expected progress use this to fail
        loudly instead of returning silently incomplete.
        """
        return [
            process
            for process in self.blocked_processes()
            if not (process.blocked_on or "").startswith("receive")
        ]
