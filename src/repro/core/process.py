"""Language-level processes: generator coroutines owned by Ejects.

The Eden programming language provides each Eject with multiple
processes (paper §1).  Here a process wraps a generator; the scheduler
resumes it with syscall results and collects the next syscall.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.core.errors import KernelError
from repro.core.syscalls import ProcessBody, Syscall


class ProcessState(enum.Enum):
    """Lifecycle of a process."""

    READY = "ready"  # runnable, queued for the CPU
    RUNNING = "running"  # currently being stepped
    BLOCKED = "blocked"  # waiting on a reply, invocation, timer or signal
    DONE = "done"  # body returned or ExitProcess
    FAILED = "failed"  # body raised


class Process:
    """One schedulable generator coroutine.

    Attributes:
        name: unique printable name, ``<eject>/<process>``.
        owner: the owning Eject (``None`` for kernel-internal drivers).
        state: current :class:`ProcessState`.
        blocked_on: human-readable description of what blocks it.
    """

    def __init__(self, body: ProcessBody, name: str, owner: Any = None) -> None:
        if not hasattr(body, "send"):
            raise TypeError(
                f"process body must be a generator, got {type(body).__name__}; "
                "did you call the generator function?"
            )
        self._body = body
        self.name = name
        self.owner = owner
        self.state = ProcessState.READY
        self.blocked_on: str | None = None
        # Value (or exception) to deliver at the next resumption.
        self._pending_value: Any = None
        self._pending_exception: BaseException | None = None
        self.failure: BaseException | None = None
        self.result: Any = None
        # Span context of the invocation this process is currently
        # serving (set by the kernel when span tracing is on): the
        # causal parent for any invocation this process sends.
        self.current_span: Any = None

    @property
    def alive(self) -> bool:
        """Whether the process can still run."""
        return self.state in (
            ProcessState.READY,
            ProcessState.RUNNING,
            ProcessState.BLOCKED,
        )

    def resume_with(self, value: Any) -> None:
        """Arrange for ``value`` to be sent into the body next step."""
        self._pending_value = value
        self._pending_exception = None

    def resume_with_exception(self, exc: BaseException) -> None:
        """Arrange for ``exc`` to be thrown into the body next step."""
        self._pending_value = None
        self._pending_exception = exc

    def step(self) -> Syscall | None:
        """Advance the body to its next syscall.

        Returns the syscall it yielded, or ``None`` if the body
        finished.  On an uncaught exception the process moves to
        ``FAILED`` and the exception is re-raised for the scheduler to
        report.
        """
        if not self.alive:
            raise KernelError(f"cannot step {self.state.value} process {self.name}")
        self.state = ProcessState.RUNNING
        self.blocked_on = None
        try:
            if self._pending_exception is not None:
                exc, self._pending_exception = self._pending_exception, None
                yielded = self._body.throw(exc)
            else:
                value, self._pending_value = self._pending_value, None
                yielded = self._body.send(value)
        except StopIteration as stop:
            self.state = ProcessState.DONE
            self.result = stop.value
            return None
        except BaseException as exc:
            self.state = ProcessState.FAILED
            self.failure = exc
            raise
        if not isinstance(yielded, Syscall):
            self.state = ProcessState.FAILED
            error = KernelError(
                f"process {self.name} yielded {yielded!r}, which is not a Syscall"
            )
            self.failure = error
            raise error
        return yielded

    def kill(self) -> None:
        """Terminate the process without running it further."""
        if self.alive:
            self._body.close()
            self.state = ProcessState.DONE

    def __repr__(self) -> str:
        suffix = f" blocked_on={self.blocked_on}" if self.blocked_on else ""
        return f"Process({self.name}, {self.state.value}{suffix})"
