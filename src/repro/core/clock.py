"""The virtual clock of the simulated Eden system.

All time in the simulation is virtual: the clock only advances when the
scheduler runs out of ready processes and pops the next timed event.
Benchmarks report virtual makespans, which are therefore deterministic
and independent of host machine speed.
"""

from __future__ import annotations

from repro.core.errors import KernelError


class VirtualClock:
    """A monotone virtual clock measured in abstract time units.

    One time unit is conventionally "the cost of one local message hop";
    the transport scales other costs relative to it.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises:
            KernelError: on any attempt to move time backwards, which
                would indicate a scheduler bug.
        """
        if when < self._now:
            raise KernelError(
                f"virtual time may not run backwards ({when} < {self._now})"
            )
        self._now = when

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now})"
