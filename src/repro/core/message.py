"""Invocation and reply messages.

An *invocation* is "a request to perform some named operation, and may
be thought of as a kind of remote procedure call" (paper §1).  Replies
travel back on a ticket that the sender may await later — sending an
invocation does not suspend the sender.

Messages are plain records; the transport and kernel route them.  The
``sender`` UID is carried "so that the reply may be returned correctly"
but, exactly as the paper argues in §5, it is *private to the kernel*:
the dispatching machinery never exposes it to the receiving Eject's
type code.  (Tests assert this.)
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.core.capability import ChannelId
from repro.core.uid import UID

_ticket_counter = itertools.count(1)


def _next_ticket() -> int:
    return next(_ticket_counter)


class ReplyStatus(Enum):
    """Outcome of an invocation, carried on the reply message."""

    OK = "ok"
    ERROR = "error"


@dataclass(frozen=True)
class Invocation:
    """One invocation message, in flight or queued at the target.

    Attributes:
        target: UID of the Eject being invoked.
        operation: name of the requested operation.
        args: positional-style payload tuple.
        kwargs: keyword payload mapping.
        channel: optional channel qualifier (paper §5); ``None`` means
            the invocation is not channel-qualified.
        ticket: correlation id used to route the reply.
        sender: UID of the invoking Eject — kernel-private (see module
            docstring); ``None`` for invocations injected by the
            simulation driver.
        span: causal span context (:class:`repro.obs.spans.SpanContext`)
            assigned by the kernel when span tracing is on; ``None``
            otherwise.  Like ``sender`` it is kernel bookkeeping, but it
            is *not* secret — observability tooling reads it from
            traces.
    """

    target: UID
    operation: str
    args: tuple[Any, ...] = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    channel: ChannelId | None = None
    ticket: int = field(default_factory=_next_ticket)
    sender: UID | None = None
    span: Any = None

    def __str__(self) -> str:
        chan = f" on {self.channel}" if self.channel is not None else ""
        return f"{self.operation}{chan} -> {self.target.brief()} #{self.ticket}"

    def payload_size(self) -> int:
        """Crude size estimate (in 'bytes') used by the transport model."""
        return _estimate_size(self.args) + _estimate_size(self.kwargs)


@dataclass(frozen=True)
class Reply:
    """The reply to one invocation.

    ``span`` optionally carries the causal origin of the returned data
    (datum-follows-trace): when a passive buffer answers a Read with a
    record deposited under another trace, the kernel re-roots the
    reader's request span onto this context at delivery.
    """

    ticket: int
    status: ReplyStatus
    result: Any = None
    error: BaseException | None = None
    span: Any = None

    @property
    def ok(self) -> bool:
        """Whether the invocation completed successfully."""
        return self.status is ReplyStatus.OK

    def payload_size(self) -> int:
        """Crude size estimate (in 'bytes') used by the transport model."""
        return _estimate_size(self.result)

    def unwrap(self) -> Any:
        """Return the result, raising the carried error on failure."""
        if self.status is ReplyStatus.ERROR:
            assert self.error is not None
            raise self.error
        return self.result


def _estimate_size(value: Any) -> int:
    """Estimate the wire size of a payload value, in bytes.

    Only needs to be stable and roughly proportional to content; it
    feeds the transport's bandwidth model, not any correctness logic.
    Dataclass records (Transfers, WriteAcks, …) are traversed so bulk
    payloads are charged for what they carry.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, enum.Enum):
        return 4
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8", errors="replace"))
    if isinstance(value, (list, tuple, set, frozenset)):
        return 8 + sum(_estimate_size(item) for item in value)
    if isinstance(value, dict):
        return 8 + sum(
            _estimate_size(k) + _estimate_size(v) for k, v in value.items()
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return 8 + sum(
            _estimate_size(getattr(value, field.name))
            for field in dataclasses.fields(value)
        )
    # Opaque objects: flat estimate.
    return 16
