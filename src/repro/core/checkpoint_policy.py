"""Checkpoint policies: when should an Eject make itself durable?

The paper gives the mechanism — "the checkpoint primitive is the only
mechanism provided by the Eden kernel whereby an Eject may access
'stable storage'" — and leaves policy to the Eject.  This module
provides the two standard policies as reusable process bodies:

- :func:`periodic_checkpointing` — checkpoint every T units of virtual
  time; after a crash, at most one window of work is lost (tests bound
  this exactly);
- :func:`checkpoint_every` — checkpoint after every N state-changing
  operations, driven by the Eject bumping a dirty counter.

Both are ordinary processes: add them from ``process_bodies`` and the
scheduler interleaves them with the Eject's servers.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.core.syscalls import (
    DoCheckpoint,
    NotifySignal,
    Signal,
    Sleep,
    Syscall,
    WaitSignal,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eject import Eject


def periodic_checkpointing(
    eject: "Eject", interval: float
) -> Generator[Syscall, None, None]:
    """A process body that Checkpoints ``eject`` every ``interval``.

    Runs forever (dies with the Eject).  The first checkpoint happens
    after the first interval, so a brand-new Eject that crashes
    immediately has no representation — matching Eden's "never
    Checkpointed, disappears" semantics.

    Simulation caveat: an immortal timer keeps the event heap non-empty,
    so a kernel hosting this policy never quiesces — drive such
    simulations with explicit ``until=`` bounds (or use the counted
    policy, which only wakes on actual changes).
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    while True:
        yield Sleep(interval)
        yield DoCheckpoint()
        eject.kernel.stats.bump("policy_checkpoints")


class DirtyCounter:
    """Counts state changes and wakes the checkpointing process.

    The Eject calls :meth:`mark` (via ``yield from``) from its
    operation handlers; the policy process checkpoints once ``limit``
    changes have accumulated.
    """

    def __init__(self, name: str = "dirty") -> None:
        self.changes = 0
        self.total_changes = 0
        self._signal = Signal(name)

    def mark(self) -> Generator[Syscall, None, None]:
        """Record one state change (call from an operation handler)."""
        self.changes += 1
        self.total_changes += 1
        yield NotifySignal(self._signal)

    def policy_body(
        self, eject: "Eject", limit: int
    ) -> Generator[Syscall, None, None]:
        """The process that checkpoints after every ``limit`` changes."""
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        while True:
            while self.changes < limit:
                yield WaitSignal(self._signal)
            self.changes = 0
            yield DoCheckpoint()
            eject.kernel.stats.bump("policy_checkpoints")


def checkpoint_every(
    eject: "Eject", counter: DirtyCounter, changes: int
) -> Generator[Syscall, None, None]:
    """Convenience wrapper: ``counter.policy_body(eject, changes)``."""
    return counter.policy_body(eject, changes)
