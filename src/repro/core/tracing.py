"""Structured event tracing for the simulated kernel.

Traces serve two audiences: tests assert on precise event sequences
(e.g. "the sink's Read reached the source before any data moved"), and
humans debug simulations by printing them.  Tracing is off by default;
benchmarks that only need counters leave it off.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any, Callable, Iterable, Union


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    Attributes:
        time: virtual time at which the event occurred.
        kind: event category, e.g. ``"invoke"``, ``"reply"``,
            ``"deliver"``, ``"switch"``, ``"activate"``, ``"checkpoint"``,
            ``"crash"``, ``"spawn"``, ``"exit"``.
        subject: printable identifier of the acting entity.
        detail: free-form extra fields.
    """

    time: float
    kind: str
    subject: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.3f}] {self.kind:<10} {self.subject} {extras}".rstrip()


class Tracer:
    """Collects :class:`TraceEvent` records when enabled."""

    def __init__(self, enabled: bool = False, capacity: int | None = None) -> None:
        self.enabled = enabled
        self._capacity = capacity
        # A deque evicts the oldest event in O(1) when at capacity;
        # the old list-backed store paid O(n) per emit once full.
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._listeners: list[Callable[[TraceEvent], None]] = []

    def emit(
        self, time: float, kind: str, subject: str, **detail: Any
    ) -> None:
        """Record one event (no-op while disabled)."""
        if not self.enabled:
            return
        event = TraceEvent(time=time, kind=kind, subject=subject, detail=detail)
        self._events.append(event)
        for listener in self._listeners:
            listener(event)

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Also deliver each event to ``listener`` as it is emitted."""
        self._listeners.append(listener)

    @property
    def events(self) -> list[TraceEvent]:
        """All retained events, oldest first."""
        return list(self._events)

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        """Retained events whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [event for event in self._events if event.kind in wanted]

    def clear(self) -> None:
        """Drop all retained events."""
        self._events.clear()

    def format(self, events: Iterable[TraceEvent] | None = None) -> str:
        """Human-readable multi-line rendering of ``events`` (default all)."""
        chosen = self._events if events is None else list(events)
        return "\n".join(str(event) for event in chosen)

    def to_jsonl(self, sink: Union[str, IO[str]]) -> int:
        """Export retained events as JSON Lines; returns the line count.

        One event per line, keys ``time``/``kind``/``subject``/
        ``detail``.  This is the interchange format shared by simulator
        traces and the TCP runtime's frame logs (``eden-stage
        --trace-file``), so one set of analysis tools reads both.
        Detail values that are not JSON-representable are stringified
        rather than lost.
        """
        if isinstance(sink, str):
            with open(sink, "w", encoding="utf-8") as handle:
                return self.to_jsonl(handle)
        count = 0
        for event in self._events:
            sink.write(json.dumps(event_to_dict(event), sort_keys=True) + "\n")
            count += 1
        return count


def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    """The JSONL wire form of one event (stringifying exotic details)."""
    detail: dict[str, Any] = {}
    for key, value in event.detail.items():
        try:
            json.dumps(value)
            detail[str(key)] = value
        except (TypeError, ValueError):
            detail[str(key)] = str(value)
    return {
        "time": event.time,
        "kind": event.kind,
        "subject": event.subject,
        "detail": detail,
    }


def load_jsonl(source: Union[str, IO[str], Iterable[str]]) -> list[TraceEvent]:
    """Parse :meth:`Tracer.to_jsonl` output back into events.

    Accepts a path, an open text file, or any iterable of lines; blank
    lines are skipped so concatenated logs load cleanly.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return load_jsonl(handle)
    events: list[TraceEvent] = []
    for line in source:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        events.append(
            TraceEvent(
                time=float(record["time"]),
                kind=str(record["kind"]),
                subject=str(record["subject"]),
                detail=dict(record.get("detail", {})),
            )
        )
    return events
