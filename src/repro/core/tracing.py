"""Structured event tracing for the simulated kernel.

Traces serve two audiences: tests assert on precise event sequences
(e.g. "the sink's Read reached the source before any data moved"), and
humans debug simulations by printing them.  Tracing is off by default;
benchmarks that only need counters leave it off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    Attributes:
        time: virtual time at which the event occurred.
        kind: event category, e.g. ``"invoke"``, ``"reply"``,
            ``"deliver"``, ``"switch"``, ``"activate"``, ``"checkpoint"``,
            ``"crash"``, ``"spawn"``, ``"exit"``.
        subject: printable identifier of the acting entity.
        detail: free-form extra fields.
    """

    time: float
    kind: str
    subject: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.3f}] {self.kind:<10} {self.subject} {extras}".rstrip()


class Tracer:
    """Collects :class:`TraceEvent` records when enabled."""

    def __init__(self, enabled: bool = False, capacity: int | None = None) -> None:
        self.enabled = enabled
        self._capacity = capacity
        self._events: list[TraceEvent] = []
        self._listeners: list[Callable[[TraceEvent], None]] = []

    def emit(
        self, time: float, kind: str, subject: str, **detail: Any
    ) -> None:
        """Record one event (no-op while disabled)."""
        if not self.enabled:
            return
        event = TraceEvent(time=time, kind=kind, subject=subject, detail=detail)
        self._events.append(event)
        if self._capacity is not None and len(self._events) > self._capacity:
            del self._events[0]
        for listener in self._listeners:
            listener(event)

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Also deliver each event to ``listener`` as it is emitted."""
        self._listeners.append(listener)

    @property
    def events(self) -> list[TraceEvent]:
        """All retained events, oldest first."""
        return list(self._events)

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        """Retained events whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [event for event in self._events if event.kind in wanted]

    def clear(self) -> None:
        """Drop all retained events."""
        self._events.clear()

    def format(self, events: Iterable[TraceEvent] | None = None) -> str:
        """Human-readable multi-line rendering of ``events`` (default all)."""
        chosen = self._events if events is None else list(events)
        return "\n".join(str(event) for event in chosen)
