"""The coordinator/workers Eject organisation (paper §4, footnote †).

    "An Eject which provides a set of services to clients will
    typically be organised as a 'coordinator' process that receives
    incoming invocations, and a number of 'worker' processes that
    actually perform the processing necessary to satisfy them."

:class:`WorkerPoolEject` packages that organisation: the coordinator
drains the mailbox into an internal work queue; ``worker_count`` worker
processes take jobs and run the ``op_*`` handlers.  Unlike the default
single-process dispatcher, slow operations overlap — tests show two
``Sleep(10)`` operations completing in ~10 virtual time units, not 20.

Handlers are ordinary ``op_`` methods; they may yield syscalls.  State
shared between handlers needs no locks: processes only interleave at
``yield`` points (cooperative scheduling), the same discipline
Concurrent Euclid monitors gave the original.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.core.eject import Eject
from repro.core.syscalls import (
    NotifySignal,
    Receive,
    Signal,
    WaitSignal,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID


class WorkerPoolEject(Eject):
    """An Eject whose operations are served by a pool of workers.

    Subclass and define ``op_*`` handlers as usual; set
    ``worker_count`` (or pass it to ``__init__``) to size the pool.
    """

    eden_type = "WorkerPoolEject"
    worker_count = 2

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        name: str | None = None,
        worker_count: int | None = None,
    ) -> None:
        super().__init__(kernel, uid, name=name)
        if worker_count is not None:
            if worker_count < 1:
                raise ValueError(
                    f"worker_count must be >= 1, got {worker_count}"
                )
            self.worker_count = worker_count
        self._queue: deque = deque()
        self._work = Signal(f"{self.name}.work")
        self.jobs_completed = 0

    def process_bodies(self):
        bodies = [("coordinator", self._coordinator())]
        bodies.extend(
            (f"worker-{index}", self._worker())
            for index in range(self.worker_count)
        )
        return bodies

    def _coordinator(self):
        """Receive invocations and queue them for the pool (§4 †)."""
        while True:
            invocation = yield Receive()
            self._queue.append(invocation)
            yield NotifySignal(self._work)

    def _worker(self):
        while True:
            while not self._queue:
                yield WaitSignal(self._work)
            invocation = self._queue.popleft()
            yield from self.dispatch(invocation)
            self.jobs_completed += 1

    @property
    def queue_depth(self) -> int:
        """Jobs accepted but not yet picked up by a worker."""
        return len(self._queue)
