"""Behavioural compatibility: Eden types as abstract machines (paper §2).

    "The behaviour of an Eject is the only aspect that is important to
    its users.  The Eden type of the Eject, i.e. the identity of the
    particular piece of type-code which defines that behaviour, is
    irrelevant. ... provided that S' contains all the operations of S
    and that their semantics are the same, it does not matter to E
    that S' contains other operations in addition."

A :class:`BehaviourSpec` names the operations an abstract machine must
answer; :func:`implements` checks a concrete Eden type against it by
introspecting its dispatchable operations.  Specs compose the way the
paper describes: a type may implement several specs at once (MapFile
implements both the Map and the Sequence machines), and supersets
satisfy clients of subsets (:meth:`BehaviourSpec.specializes`).

This is a *static* check over the dispatcher table; semantic
equivalence is what the test suite establishes (e.g. the concatenator
tests run the same Lookup scenarios against Directory and
DirectoryConcatenator).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Type

from repro.core.eject import Eject

_OP_PREFIX = "op_"
_RECEIVE_OPS = re.compile(r"operations=\{([^}]*)\}")


def operations_of(cls: Type[Eject]) -> frozenset[str]:
    """The operations a type's default dispatcher answers.

    Collected from ``op_<Name>`` methods across the class hierarchy.
    Types with hand-written ``main`` loops (buffers, filters) declare
    extra operations via a class attribute ``answers_operations``.
    """
    operations = {
        name[len(_OP_PREFIX):]
        for name in dir(cls)
        if name.startswith(_OP_PREFIX) and callable(getattr(cls, name))
    }
    declared = getattr(cls, "answers_operations", ())
    operations.update(declared)
    return frozenset(operations)


@dataclass(frozen=True)
class BehaviourSpec:
    """An abstract machine: a name and the operations it answers."""

    name: str
    operations: frozenset[str]

    @staticmethod
    def of(name: str, *operations: str) -> "BehaviourSpec":
        """Build a spec from operation names."""
        return BehaviourSpec(name=name, operations=frozenset(operations))

    def specializes(self, other: "BehaviourSpec") -> bool:
        """Whether this machine is an S' for the other's S (superset)."""
        return self.operations >= other.operations

    def missing_from(self, cls: Type[Eject]) -> frozenset[str]:
        """Operations the type does not answer (empty = conforms)."""
        return self.operations - operations_of(cls)


def implements(cls: Type[Eject], spec: BehaviourSpec) -> bool:
    """Whether ``cls`` answers every operation of ``spec``.

    "From the point of view of an Eject trying to perform a Lookup
    operation, any Eject which responds in the appropriate way is a
    satisfactory directory."
    """
    return not spec.missing_from(cls)


# ---------------------------------------------------------------------------
# The standard abstract machines of this system
# ---------------------------------------------------------------------------

#: Anything a name can be looked up in (paper §2's directory machine).
DIRECTORY_SPEC = BehaviourSpec.of(
    "directory", "Lookup", "AddEntry", "DeleteEntry", "List"
)

#: Anything that supplies a stream on demand (paper §4's source).
SOURCE_SPEC = BehaviourSpec.of("source", "Read")

#: The §7 bootstrap stream machine.
TRANSFER_SPEC = BehaviourSpec.of("transfer-stream", "Transfer")

#: Anything that accepts a pushed stream (the write-only consumer).
SINK_SPEC = BehaviourSpec.of("sink", "Write")

#: The §6 random-access machine.
MAP_SPEC = BehaviourSpec.of("map", "ReadAt", "WriteAt", "Size")
