"""Unforgeable unique identifiers (UIDs) for Ejects.

The paper: "Each Eject has a unique unforgeable identifier (UID); one
Eject may communicate with another only by knowing its UID."

In a real capability system unforgeability is enforced by the kernel.
In this in-process reproduction we model it with a *sparse secret*: every
UID carries a nonce drawn from a random stream private to the kernel's
:class:`UIDFactory`.  Constructing a UID without the factory requires
guessing a 64-bit nonce; the kernel verifies the nonce on every use, so
tests can demonstrate that fabricated UIDs are rejected (paper §5, the
channel-security argument).

The nonce stream is seeded so simulations are fully deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.errors import ForgeryError

#: Number of bits of secret in a UID nonce.
NONCE_BITS = 64


@dataclass(frozen=True, order=True)
class UID:
    """An unforgeable identifier for one Eject.

    UIDs are value objects: equality and hashing include the secret
    nonce, so two UIDs naming the same serial but carrying different
    nonces are different (and at most one of them is genuine).

    Attributes:
        space: identifies the issuing kernel (one simulated Eden system).
        serial: issue order within that kernel; purely informational.
        nonce: the sparse secret that makes the UID unforgeable.
    """

    space: int
    serial: int
    nonce: int = field(repr=False)

    def __str__(self) -> str:
        return f"uid:{self.space}.{self.serial}"

    def brief(self) -> str:
        """Short printable form used in traces and shell output."""
        return f"{self.space}.{self.serial}"


class UIDFactory:
    """Issues UIDs and verifies their authenticity.

    One factory belongs to one kernel.  ``seed`` makes the nonce stream
    (and therefore whole-simulation behaviour) reproducible.
    """

    def __init__(self, space: int = 0, seed: int = 0) -> None:
        self._space = space
        self._serial = 0
        self._rng = random.Random(f"uid:{space}:{seed}")
        self._issued: dict[int, int] = {}  # serial -> nonce

    @property
    def space(self) -> int:
        """The space (kernel) identifier stamped on every issued UID."""
        return self._space

    @property
    def issued_count(self) -> int:
        """How many UIDs this factory has issued so far."""
        return self._serial

    def issue(self) -> UID:
        """Issue a fresh, genuine UID."""
        serial = self._serial
        self._serial += 1
        nonce = self._rng.getrandbits(NONCE_BITS)
        self._issued[serial] = nonce
        return UID(space=self._space, serial=serial, nonce=nonce)

    def issue_many(self, count: int) -> Iterator[UID]:
        """Issue ``count`` fresh UIDs."""
        for _ in range(count):
            yield self.issue()

    def is_genuine(self, uid: UID) -> bool:
        """Return whether ``uid`` was really issued by this factory."""
        if not isinstance(uid, UID):
            return False
        if uid.space != self._space:
            return False
        return self._issued.get(uid.serial) == uid.nonce

    def verify(self, uid: UID) -> UID:
        """Return ``uid`` unchanged, or raise :class:`ForgeryError`.

        The kernel calls this on the target of every invocation, which
        is what makes guessing UIDs useless in this reproduction.
        """
        if not self.is_genuine(uid):
            raise ForgeryError(f"{uid!r} was not issued by this kernel")
        return uid
