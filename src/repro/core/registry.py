"""Eden-type registry: type name -> class, used for reactivation.

When a passive Eject is invoked, the kernel must re-instantiate its
type code and hand it the passive representation (paper §1).  The
registry records how to build a blank instance of each type.

Reactivation convention: a reactivatable type is constructible as
``cls(kernel, uid, name=name)``; all configuration must live in the
passive representation and be re-established by ``restore()``.  Types
with richer constructors override the classmethod
``reactivate_blank(kernel, uid, name)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Type

from repro.core.errors import KernelError
from repro.core.uid import UID

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.eject import Eject
    from repro.core.kernel import Kernel


class TypeRegistry:
    """Maps Eden type names to their implementing classes."""

    def __init__(self) -> None:
        self._types: dict[str, Type["Eject"]] = {}

    def register(self, cls: Type["Eject"]) -> Type["Eject"]:
        """Register ``cls`` under its ``eden_type`` name.

        Re-registering the same class is a no-op; registering a
        *different* class under an existing name is an error (two Eden
        types may implement the same abstract machine, but they need
        distinct type names).
        """
        name = cls.eden_type
        existing = self._types.get(name)
        if existing is not None and existing is not cls:
            raise KernelError(
                f"Eden type name {name!r} already registered to "
                f"{existing.__name__}, cannot rebind to {cls.__name__}"
            )
        self._types[name] = cls
        return cls

    def get(self, name: str) -> Type["Eject"]:
        """Look up the class for ``name``."""
        try:
            return self._types[name]
        except KeyError:
            raise KernelError(f"unknown Eden type {name!r}") from None

    def known(self, name: str) -> bool:
        """Whether ``name`` is registered."""
        return name in self._types

    def names(self) -> list[str]:
        """All registered type names, sorted."""
        return sorted(self._types)

    def instantiate_blank(
        self, name: str, kernel: "Kernel", uid: UID, eject_name: str
    ) -> "Eject":
        """Build a blank instance of type ``name`` for reactivation."""
        cls = self.get(name)
        factory = getattr(cls, "reactivate_blank", None)
        if factory is not None:
            return factory(kernel, uid, eject_name)
        return cls(kernel, uid, name=eject_name)
