"""The Eject: Eden's active object.

An Eject has a UID, a concrete Eden type, its own processes, a mailbox
of pending invocations, and may Checkpoint a passive representation
(paper §1).  This class provides the dispatcher machinery; concrete
types either

* override :meth:`main` (or :meth:`process_bodies`) with explicit
  process loops yielding syscalls — the style used by filters, or
* define ``op_<Operation>`` generator methods and inherit the default
  server loop, which receives any invocation and dispatches it — the
  style used by directories, files and devices.

Handler example::

    class Greeter(Eject):
        eden_type = "Greeter"

        def op_Greet(self, invocation):
            name, = invocation.args
            return f"hello, {name}"
            yield  # makes this a generator even with no syscalls

(Any ``op_`` method may be a plain function or a generator; plain
functions are wrapped automatically.)
"""

from __future__ import annotations

import inspect
from collections import deque
from typing import Any, Callable, Iterable, TYPE_CHECKING

from repro.core.capability import ChannelCapability, ChannelId, ChannelMinter
from repro.core.errors import EdenError, NoSuchOperationError
from repro.core.message import Invocation
from repro.core.process import Process
from repro.core.syscalls import (
    AwaitReply,
    Call,
    DoCheckpoint,
    Deactivate,
    Invoke,
    ProcessBody,
    Receive,
    SendReply,
)
from repro.core.uid import UID

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.kernel import Kernel
    from repro.core.node import Node


class Eject:
    """Base class for every Eden object in the simulation.

    Construction happens through :meth:`Kernel.create`, which issues the
    UID, places the Eject on a node and starts its processes.  Concrete
    subclasses set :attr:`eden_type` to their registered type name.
    """

    #: Registered Eden type name; subclasses must override.
    eden_type: str = "Eject"

    def __init__(self, kernel: "Kernel", uid: UID, name: str | None = None) -> None:
        self.kernel = kernel
        self.uid = uid
        self.name = name or f"{type(self).__name__}-{uid.serial}"
        self.node: "Node | None" = None
        self.active = True
        self.crashed = False
        self.mailbox: deque[Invocation] = deque()
        #: processes parked on a Receive, in wait order.
        self._waiting_receivers: list[tuple[Process, Receive]] = []
        self.processes: list[Process] = []
        self.channels = ChannelMinter(uid)
        self.received_count = 0
        self.replied_count = 0

    # ------------------------------------------------------------------
    # Lifecycle hooks for subclasses
    # ------------------------------------------------------------------

    def process_bodies(self) -> Iterable[tuple[str, ProcessBody]]:
        """The processes to start on (re)activation.

        Default: a single ``main`` process running :meth:`main`.
        """
        return [("main", self.main())]

    def main(self) -> ProcessBody:
        """Default server loop: receive anything, dispatch to ``op_*``."""
        while True:
            invocation = yield Receive()
            yield from self.dispatch(invocation)

    def passive_representation(self) -> Any:
        """State to checkpoint; override in durable types."""
        return None

    def restore(self, data: Any) -> None:
        """Reconstruct state from a passive representation; override."""

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------

    def dispatch(self, invocation: Invocation) -> ProcessBody:
        """Run the ``op_`` handler for ``invocation`` and reply.

        Errors raised by the handler (any :class:`EdenError`) are turned
        into error replies rather than killing the server process.
        """
        handler = getattr(self, f"op_{invocation.operation}", None)
        if handler is None:
            yield SendReply(
                invocation,
                error=NoSuchOperationError(invocation.operation, self.name),
            )
            return
        try:
            result = yield from _as_generator(handler, invocation)
        except EdenError as error:
            yield SendReply(invocation, error=error)
        else:
            yield SendReply(invocation, result=result)

    # ------------------------------------------------------------------
    # Syscall construction helpers (for readable process bodies)
    # ------------------------------------------------------------------

    def invoke(
        self,
        target: UID,
        operation: str,
        *args: Any,
        channel: ChannelId | None = None,
        **kwargs: Any,
    ) -> Invoke:
        """Build an asynchronous :class:`Invoke` syscall."""
        return Invoke(
            target=target,
            operation=operation,
            args=args,
            kwargs=kwargs,
            channel=channel,
        )

    def call(
        self,
        target: UID,
        operation: str,
        *args: Any,
        channel: ChannelId | None = None,
        **kwargs: Any,
    ) -> Call:
        """Build a synchronous :class:`Call` syscall."""
        return Call(
            target=target,
            operation=operation,
            args=args,
            kwargs=kwargs,
            channel=channel,
        )

    def await_reply(self, ticket: int) -> AwaitReply:
        """Build an :class:`AwaitReply` syscall."""
        return AwaitReply(ticket=ticket)

    def receive(
        self,
        operations: Iterable[str] | None = None,
        channels: Iterable[ChannelId] | None = None,
    ) -> Receive:
        """Build a :class:`Receive` syscall."""
        return Receive.of(operations, channels)

    def reply(
        self, invocation: Invocation, result: Any = None,
        error: BaseException | None = None, span: Any = None,
    ) -> SendReply:
        """Build a :class:`SendReply` syscall.

        ``span`` is the causal origin of the returned data, if it was
        deposited under a different trace (datum-follows-trace).
        """
        return SendReply(invocation, result=result, error=error, span=span)

    def checkpoint(self) -> DoCheckpoint:
        """Build a :class:`DoCheckpoint` syscall."""
        return DoCheckpoint()

    def deactivate(self) -> Deactivate:
        """Build a :class:`Deactivate` syscall."""
        return Deactivate()

    # ------------------------------------------------------------------
    # Channel helpers (paper §5)
    # ------------------------------------------------------------------

    def mint_channel(self, name: str) -> ChannelCapability:
        """Mint (or fetch) the unforgeable capability for channel ``name``."""
        return self.channels.mint(name)

    def validate_channel(self, presented: ChannelId | None) -> str | None:
        """Resolve a presented channel identifier to a channel name.

        Integer/string identifiers resolve to themselves (no security);
        capabilities must have been minted by this Eject.
        """
        if presented is None:
            return None
        if isinstance(presented, ChannelCapability):
            return self.channels.validate(presented)
        return str(presented) if isinstance(presented, int) else presented

    # ------------------------------------------------------------------
    # Mailbox machinery (driven by the kernel)
    # ------------------------------------------------------------------

    @staticmethod
    def _matches(receive: Receive, invocation: Invocation) -> bool:
        if (
            receive.operations is not None
            and invocation.operation not in receive.operations
        ):
            return False
        if (
            receive.channels is not None
            and invocation.channel not in receive.channels
        ):
            return False
        return True

    def _enqueue(self, invocation: Invocation) -> Process | None:
        """Accept a delivered invocation.

        Returns the waiting process that should be resumed with it, or
        ``None`` if no process matched (the invocation stays queued).
        """
        self.received_count += 1
        for index, (process, receive) in enumerate(self._waiting_receivers):
            if self._matches(receive, invocation):
                del self._waiting_receivers[index]
                return process
        self.mailbox.append(invocation)
        return None

    def _register_receiver(
        self, process: Process, receive: Receive
    ) -> Invocation | None:
        """Park ``process`` on ``receive``, or satisfy it from the mailbox.

        Returns the matching queued invocation if one exists (FIFO),
        otherwise ``None`` after registering the waiter.
        """
        for index, queued in enumerate(self.mailbox):
            if self._matches(receive, queued):
                del self.mailbox[index]
                return queued
        self._waiting_receivers.append((process, receive))
        return None

    def _drop_waiters(self) -> None:
        """Forget parked receivers (crash/deactivate path)."""
        self._waiting_receivers.clear()

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else ("active" if self.active else "passive")
        return f"<{type(self).__name__} {self.name} {self.uid} {state}>"


def _as_generator(handler: Callable, invocation: Invocation) -> ProcessBody:
    """Invoke a handler, wrapping plain functions as trivial generators."""
    if inspect.isgeneratorfunction(handler):
        return handler(invocation)
    return _wrap_plain(handler, invocation)


def _wrap_plain(handler: Callable, invocation: Invocation) -> ProcessBody:
    return handler(invocation)
    yield  # pragma: no cover - makes this function a generator
