"""Kernel instrumentation: counters, gauges and histograms.

The paper's quantitative claims are about *counts*: invocations per
datum, Ejects per pipeline, process switches saved.  The kernel feeds a
:class:`KernelStats` instance, and benchmarks snapshot/diff it around a
measured region.

Beyond the monotone counters the seed shipped with, stats now carry
two more instrument kinds the observability layer exposes
(:mod:`repro.obs.registry` renders all three as Prometheus text and
JSON):

- **gauges** — point-in-time values that go up and down (credit-window
  occupancy, queue depths);
- **histograms** — fixed-bucket distributions (frame latency, per-hop
  service time), cheap to merge across stages because the bucket
  edges are part of the data.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Sequence

#: Default bucket upper bounds for latency-style histograms, in
#: milliseconds.  Roughly logarithmic from 50µs to 2.5s; everything
#: above the last edge lands in the implicit +Inf bucket.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)


class Histogram:
    """A fixed-bucket histogram (Prometheus semantics).

    ``bounds`` are the inclusive upper edges of each bucket; one extra
    implicit bucket catches everything above the last edge.  Counts
    are cumulative only at exposition time — internally each bucket
    holds its own tally so merges are plain elementwise sums.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS) -> None:
        edges = tuple(float(edge) for edge in bounds)
        if not edges:
            raise ValueError("a histogram needs at least one bucket edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"bucket edges must be strictly increasing: {edges}")
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)  # + the +Inf bucket
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the ``q``-th observation).

        Returns ``0.0`` on an empty histogram; observations above the
        last edge report the last edge (the +Inf bucket has no upper
        bound to return).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = max(1, round(q * self.total))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return self.bounds[min(index, len(self.bounds) - 1)]
        return self.bounds[-1]  # pragma: no cover - unreachable

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bucket edges must match)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe form (exact round trip via :meth:`from_dict`)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Histogram":
        """Rebuild from :meth:`as_dict` output (validating shape)."""
        bounds = data.get("bounds")
        counts = data.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            raise ValueError(f"malformed histogram payload: {data!r}")
        histogram = cls(bounds)
        if len(counts) != len(histogram.counts):
            raise ValueError(
                f"histogram counts length {len(counts)} does not match "
                f"{len(bounds)} bucket edges"
            )
        histogram.counts = [_as_count(value) for value in counts]
        histogram.total = sum(histogram.counts)
        histogram.sum = float(data.get("sum", 0.0))
        return histogram

    def __repr__(self) -> str:
        return f"Histogram(n={self.total}, sum={self.sum:g})"


def _as_count(value: Any) -> int:
    """Validate one bucket count: a non-negative integral number."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"histogram count must be a number, got {value!r}")
    if isinstance(value, float) and not value.is_integer():
        raise ValueError(f"histogram count must be integral, got {value!r}")
    count = int(value)
    if count < 0:
        raise ValueError(f"histogram count must be >= 0, got {count}")
    return count


@dataclass
class StatsSnapshot:
    """Immutable copy of the counters at one instant."""

    counters: dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> int:
        return self.counters.get(name, 0)

    def diff(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        """Return this snapshot minus an earlier one, per counter."""
        names = set(self.counters) | set(earlier.counters)
        return StatsSnapshot(
            {name: self[name] - earlier[name] for name in sorted(names)}
        )

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (a copy) of the counters."""
        return dict(self.counters)


class KernelStats:
    """Counters, gauges and histograms maintained by the kernel and
    transports.

    Counter names used by the core (others may be added by subsystems):

    - ``invocations_sent`` — invocation messages handed to the transport;
    - ``replies_sent`` — reply messages handed to the transport;
    - ``local_messages`` / ``remote_messages`` — per transport hop kind;
    - ``bytes_transferred`` — estimated payload bytes moved;
    - ``context_switches`` — process resumptions by the scheduler;
    - ``ejects_created`` — Ejects instantiated;
    - ``ejects_activated`` — passive Ejects reactivated by the kernel;
    - ``checkpoints`` — passive representations written;
    - ``events_processed`` — timed events popped by the scheduler.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- counters (monotone) --------------------------------------------

    def bump(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount`` (which must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counters are monotone; got {amount} for {name}")
        self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never bumped)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> StatsSnapshot:
        """Copy all counters for later diffing."""
        return StatsSnapshot(dict(self._counters))

    def names(self) -> list[str]:
        """Sorted list of counters that have been bumped at least once."""
        return sorted(self._counters)

    # -- gauges (point-in-time, may go up and down) ----------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self._gauges[name] = float(value)

    def get_gauge(self, name: str, default: float = 0.0) -> float:
        """Current value of gauge ``name`` (``default`` if never set)."""
        return self._gauges.get(name, default)

    def gauges(self) -> dict[str, float]:
        """All gauges (a copy), by name."""
        return dict(self._gauges)

    # -- histograms ------------------------------------------------------

    def observe(
        self, name: str, value: float,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        """Record ``value`` into histogram ``name`` (created on first use
        with the given bucket ``bounds``)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(bounds)
        histogram.observe(value)

    def histogram(self, name: str) -> Histogram | None:
        """The histogram called ``name``, or ``None`` if never observed."""
        return self._histograms.get(name)

    def install_histogram(self, name: str, histogram: Histogram) -> None:
        """Adopt ``histogram`` under ``name``, merging into any existing
        one (used when rebuilding stats from a dump)."""
        existing = self._histograms.get(name)
        if existing is None:
            self._histograms[name] = histogram
        else:
            existing.merge(histogram)

    def histograms(self) -> dict[str, Histogram]:
        """All histograms (a shallow copy), by name."""
        return dict(self._histograms)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"KernelStats({inner})"
