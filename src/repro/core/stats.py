"""Kernel instrumentation counters.

The paper's quantitative claims are about *counts*: invocations per
datum, Ejects per pipeline, process switches saved.  The kernel feeds a
:class:`KernelStats` instance, and benchmarks snapshot/diff it around a
measured region.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StatsSnapshot:
    """Immutable copy of the counters at one instant."""

    counters: dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> int:
        return self.counters.get(name, 0)

    def diff(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        """Return this snapshot minus an earlier one, per counter."""
        names = set(self.counters) | set(earlier.counters)
        return StatsSnapshot(
            {name: self[name] - earlier[name] for name in sorted(names)}
        )

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (a copy) of the counters."""
        return dict(self.counters)


class KernelStats:
    """Monotone counters maintained by the kernel and transport.

    Counter names used by the core (others may be added by subsystems):

    - ``invocations_sent`` — invocation messages handed to the transport;
    - ``replies_sent`` — reply messages handed to the transport;
    - ``local_messages`` / ``remote_messages`` — per transport hop kind;
    - ``bytes_transferred`` — estimated payload bytes moved;
    - ``context_switches`` — process resumptions by the scheduler;
    - ``ejects_created`` — Ejects instantiated;
    - ``ejects_activated`` — passive Ejects reactivated by the kernel;
    - ``checkpoints`` — passive representations written;
    - ``events_processed`` — timed events popped by the scheduler.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}

    def bump(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount`` (which must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counters are monotone; got {amount} for {name}")
        self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never bumped)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> StatsSnapshot:
        """Copy all counters for later diffing."""
        return StatsSnapshot(dict(self._counters))

    def names(self) -> list[str]:
        """Sorted list of counters that have been bumped at least once."""
        return sorted(self._counters)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"KernelStats({inner})"
