"""Simulated interconnect: the cost model for invocations and replies.

The Eden prototype ran on VAXen joined by a 10 Mbit Ethernet (paper §7),
and the paper notes that "the cost of an invocation must inevitably be
higher than that of a system call ... because invocation is
location-independent".  The transport charges virtual time per message:
a cheap local hop when sender and receiver share a node, an expensive
remote hop otherwise, plus a bandwidth term proportional to payload
size.  Benchmarks T3 sweeps these parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.scheduler import Scheduler
from repro.core.stats import KernelStats


@dataclass(frozen=True)
class TransportCosts:
    """Virtual-time cost parameters for one simulated interconnect.

    Attributes:
        local_latency: per-message cost when both ends share a node
            (roughly "a system call plus a context switch").
        remote_latency: per-message cost across the Ethernet.
        bandwidth: payload bytes moved per unit of virtual time;
            ``None`` models infinite bandwidth (latency only).
    """

    local_latency: float = 1.0
    remote_latency: float = 10.0
    bandwidth: float | None = None

    def message_cost(self, size: int, remote: bool) -> float:
        """Virtual time consumed by one message of ``size`` bytes."""
        latency = self.remote_latency if remote else self.local_latency
        if self.bandwidth is None or size == 0:
            return latency
        return latency + size / self.bandwidth


class Transport:
    """Delivers messages with simulated latency and counts traffic.

    The transport is deliberately dumb: it does not know about UIDs or
    Ejects, only about opaque delivery thunks and whether a hop crosses
    nodes.  The kernel supplies both.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        costs: TransportCosts | None = None,
        stats: KernelStats | None = None,
    ) -> None:
        self._scheduler = scheduler
        self.costs = costs or TransportCosts()
        self._stats = stats or scheduler.stats

    def send(
        self,
        size: int,
        remote: bool,
        deliver: Callable[[], None],
        kind: str = "message",
    ) -> float:
        """Queue a message for delivery; returns its virtual latency.

        Args:
            size: estimated payload bytes (feeds the bandwidth term).
            remote: whether the hop crosses simulated nodes.
            deliver: thunk run when the message arrives.
            kind: stats label — ``"invocation"`` or ``"reply"``.
        """
        cost = self.costs.message_cost(size, remote)
        self._stats.bump("remote_messages" if remote else "local_messages")
        plural = {"invocation": "invocations", "reply": "replies"}.get(
            kind, f"{kind}s"
        )
        self._stats.bump(f"{plural}_sent")
        self._stats.bump("bytes_transferred", size)
        self._scheduler.schedule_event(cost, deliver)
        return cost
