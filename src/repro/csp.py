"""CSP-style communication on Eden invocation (paper §3's comparison).

The paper compares its four primitives with Hoare's CSP:

    "In these languages transput occurs when one process executes an
    output (!) operation and its correspondent executes an input (?)
    operation.  This interaction may be regarded in several different
    ways.  Both ! and ? may be regarded as active, and the (software
    or hardware) interpreter as the passive connection which transfers
    data from one to the other.  Alternatively, input may be regarded
    as active ('get me data!') and output as passive ('wait until I am
    asked for data').  The converse interpretation is also possible."

This module makes the comparison concrete.  All three interpretations
move the same values between the same two parties; they differ in who
is active — and therefore in how many invocations and Ejects they need:

1. **Both active** — :class:`RendezvousChannel`, a passive "interpreter"
   Eject both sides invoke.  Two invocations per value plus a
   middleman: the CSP-as-implemented view, and structurally the
   conventional discipline's buffer with capacity zero.
2. **Input active / output passive** — the read-only discipline: a
   passive source answers its consumer's Reads directly.  One
   invocation per value, no middleman.
3. **Output active / input passive** — the write-only discipline:
   the producer Writes straight at a passive consumer.  One invocation
   per value, no middleman.  (Hoare's choice of allowing input in
   guards but not output corresponds to this passive-input view.)

:func:`run_interpretations` runs all three on fresh kernels and returns
their outputs and invocation counts — tests assert outputs agree and
costs are 2:1:1.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Sequence, TYPE_CHECKING

from repro.core.eject import Eject
from repro.core.kernel import Kernel
from repro.core.message import Invocation
from repro.core.syscalls import Receive
from repro.transput.sink import PassiveSink
from repro.transput.source import ActiveSource, ListSource
from repro.transput.sink import CollectorSink
from repro.transput.stream import StreamEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.uid import UID

#: Sentinel a rendezvous Receive returns once the channel is closed.
CHANNEL_CLOSED = "__channel_closed__"


class RendezvousChannel(Eject):
    """A synchronous CSP channel: interpretation 1 (both ends active).

    ``Send(value)`` completes only when a matching ``Receive`` arrives
    and vice versa — no buffering, pure rendezvous.  ``Close()`` makes
    every later (and parked) Receive complete with
    :data:`CHANNEL_CLOSED`.
    """

    eden_type = "RendezvousChannel"
    #: Operations the main loop answers (for behaviour specs).
    answers_operations = ("Send", "Receive", "Close")

    def __init__(self, kernel: Kernel, uid: "UID", name: str | None = None) -> None:
        super().__init__(kernel, uid, name=name)
        self._waiting_sends: deque[Invocation] = deque()
        self._waiting_receives: deque[Invocation] = deque()
        self.closed = False
        self.rendezvous_count = 0

    def main(self):
        while True:
            invocation = yield Receive(
                operations={"Send", "Receive", "Close"}
            )
            if invocation.operation == "Close":
                self.closed = True
                yield self.reply(invocation, True)
                while self._waiting_receives:
                    parked = self._waiting_receives.popleft()
                    yield self.reply(parked, CHANNEL_CLOSED)
                continue
            if invocation.operation == "Send":
                if self.closed:
                    from repro.core.errors import StreamProtocolError

                    yield self.reply(
                        invocation,
                        error=StreamProtocolError("Send on closed channel"),
                    )
                    continue
                if self._waiting_receives:
                    receiver = self._waiting_receives.popleft()
                    self.rendezvous_count += 1
                    yield self.reply(receiver, invocation.args[0])
                    yield self.reply(invocation, True)
                else:
                    self._waiting_sends.append(invocation)
                continue
            # Receive
            if self._waiting_sends:
                sender = self._waiting_sends.popleft()
                self.rendezvous_count += 1
                yield self.reply(invocation, sender.args[0])
                yield self.reply(sender, True)
            elif self.closed:
                yield self.reply(invocation, CHANNEL_CLOSED)
            else:
                self._waiting_receives.append(invocation)


class CSPProducer(Eject):
    """A process performing CSP output (!) actively on a channel."""

    eden_type = "CSPProducer"

    def __init__(self, kernel, uid, channel=None, values: Iterable[Any] = (),
                 name=None):
        super().__init__(kernel, uid, name=name)
        self.channel = channel
        self.values = list(values)
        self.done = False

    def main(self):
        for value in self.values:
            yield self.call(self.channel, "Send", value)
        yield self.call(self.channel, "Close")
        self.done = True


class CSPConsumer(Eject):
    """A process performing CSP input (?) actively on a channel."""

    eden_type = "CSPConsumer"

    def __init__(self, kernel, uid, channel=None, name=None):
        super().__init__(kernel, uid, name=name)
        self.channel = channel
        self.received: list[Any] = []
        self.done = False

    def main(self):
        while True:
            value = yield self.call(self.channel, "Receive")
            if value == CHANNEL_CLOSED:
                break
            self.received.append(value)
        self.done = True


@dataclass(frozen=True)
class InterpretationResult:
    """Output and cost of one §3 interpretation."""

    name: str
    output: list[Any]
    invocations: int
    ejects: int


def _measure(kernel: Kernel, build) -> tuple[list[Any], int]:
    start = kernel.stats.snapshot()
    done_flag, output_of = build()
    kernel.run(until=done_flag)
    kernel.run()
    delta = kernel.stats.snapshot().diff(start)
    return output_of(), delta["invocations_sent"]


def run_both_active(values: Sequence[Any]) -> InterpretationResult:
    """Interpretation 1: ! and ? both active, a passive interpreter."""
    kernel = Kernel()
    channel = kernel.create(RendezvousChannel, name="chan")
    consumer = kernel.create(CSPConsumer, channel=channel.uid)
    producer = kernel.create(CSPProducer, channel=channel.uid, values=values)

    def build():
        return (lambda: consumer.done and producer.done,
                lambda: list(consumer.received))

    output, invocations = _measure(kernel, build)
    return InterpretationResult("both-active", output, invocations, ejects=3)


def run_input_active(values: Sequence[Any]) -> InterpretationResult:
    """Interpretation 2: input active, output passive (read-only)."""
    kernel = Kernel()
    producer = kernel.create(ListSource, items=list(values))
    consumer = kernel.create(
        CollectorSink, inputs=[producer.output_endpoint()]
    )

    def build():
        return (lambda: consumer.done, lambda: list(consumer.collected))

    output, invocations = _measure(kernel, build)
    return InterpretationResult("input-active", output, invocations, ejects=2)


def run_output_active(values: Sequence[Any]) -> InterpretationResult:
    """Interpretation 3: output active, input passive (write-only).

    Hoare allows input commands in guards but not output — treating
    input as "a passive wait for data, and output as the active
    operation which generates data" (§3).
    """
    kernel = Kernel()
    consumer = kernel.create(PassiveSink)
    producer = kernel.create(
        ActiveSource, items=list(values),
        outputs=[StreamEndpoint(consumer.uid, None)],
    )

    def build():
        return (lambda: consumer.done and producer.done,
                lambda: list(consumer.collected))

    output, invocations = _measure(kernel, build)
    return InterpretationResult("output-active", output, invocations, ejects=2)


def run_interpretations(values: Sequence[Any]) -> dict[str, InterpretationResult]:
    """Run all three §3 interpretations over the same values."""
    return {
        result.name: result
        for result in (
            run_both_active(values),
            run_input_active(values),
            run_output_active(values),
        )
    }
