"""repro.broker: the control plane for hosted, multiplexed fleets.

The process-per-stage runtime (:mod:`repro.net.launch`) scales to
dozens of stages per machine; this package is the path to thousands:

- :mod:`repro.broker.daemon` — ``eden-broker``, a naming/discovery/
  relay daemon.  Stages register under fleet-scoped names, request
  channels to peers *by name*, and receive ticket-book-verified
  identities (the paper's C4 UID story at fleet scale); the broker
  validates endpoint-role compatibility at issuance time and relays
  channel frames between host connections without decoding them.
- :mod:`repro.broker.client` — :class:`BrokerClient`, one process's
  attachment to the broker: registration, channel opens, and the
  accept/hangup notifications, all over logical channel 0 of a
  multiplexed connection (:mod:`repro.net.mux`).
- :mod:`repro.broker.host` — ``eden-host``, an asyncio stage host
  running hundreds of lightweight stages in one process over one
  broker connection, with per-stage restart supervision, fault
  plans, and span tracing intact.
- :mod:`repro.broker.launch` — :func:`plan_hosted_fleet`, which turns
  a pipeline description into a broker daemon plus stage hosts under
  the ordinary :class:`repro.net.launch.FleetSupervisor`; surfaced as
  ``Pipeline(..., placement="hosted")`` in :mod:`repro.api`.
"""

from typing import Any

__all__ = [
    "Broker",
    "BrokerClient",
    "BrokerError",
    "HostConfig",
    "HostedStageSpec",
    "StageHost",
    "plan_hosted_fleet",
]

_EXPORTS = {
    "Broker": "repro.broker.daemon",
    "BrokerError": "repro.broker.daemon",
    "BrokerClient": "repro.broker.client",
    "HostConfig": "repro.broker.host",
    "HostedStageSpec": "repro.broker.host",
    "StageHost": "repro.broker.host",
    "plan_hosted_fleet": "repro.broker.launch",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.broker' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
