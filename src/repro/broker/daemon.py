"""eden-broker: naming, discovery, channel issuance, and frame relay.

One broker daemon owns the control plane of a hosted fleet:

- **Naming.**  Stage hosts attach with a ``host``-role ticket
  handshake, then register their stages under fleet-scoped names.
  Each name is assigned a **ticket serial** from the shared
  :class:`~repro.net.handshake.TicketBook`, so every stage's identity
  is a verifiable UID that any peer holding the same ``(space, seed)``
  can check offline — the paper's C4 capability story with the broker
  as the issuing kernel.  A name that re-registers (a restarted host)
  keeps its serial: identity survives the crash.

- **Channel issuance with compatibility checking.**  A stage opens a
  channel *by name and role*: ``open(to="source", role="pull")``.
  The broker refuses the open at issuance time — error
  ``incompatible-channel`` — unless the target registered as serving
  that role, so an active reader wired to an active writer fails
  loudly *before* either end blocks, rather than deadlocking at
  runtime (the behavioural-compatibility discipline of Hennicker &
  Bidoit, enforced where the paper's type rules live: at Open).  An
  open naming an unregistered name parks until the name appears or
  ``park_deadline`` expires (``no-such-name``) — restart transparency
  for free, since a dead stage's clients just re-open and wait.

- **Relay.**  Channel ids are per-connection: each endpoint of a
  channel has its own id, allocated from its own connection's
  namespace, so two stages in the *same* host process converse
  through the broker exactly like stages in different hosts.  Data
  frames are relayed **without decoding**: the broker reads the fixed
  header plus the 4-byte channel extension, rewrites the extension to
  the peer's id, and forwards header+extension+body bytes verbatim —
  codec-blind (binary and JSON alike) and O(bytes).  Relay counters
  (``relayed_frames``/``relayed_bytes``) are deliberately *not* named
  like stage counters, so summing a fleet's stats never double-counts
  invocations through the broker.

Wire protocol (all control on logical channel 0, JSON codec):

=============  ====================================  ======================
command        request body                          reply payload
=============  ====================================  ======================
``register``   ``name``, ``serves`` (role list)      ``serial``
``open``       ``to`` (name), ``role``               ``chan`` (caller's id)
``close-chan`` ``chan``                              ``{}``
``ping``       —                                     ``{}``
=============  ====================================  ======================

Unsolicited notices the broker sends: ``accept`` (``chan``, ``name``,
``role`` — a peer opened a channel to your registration; attach the
id before touching the connection again) and ``hangup`` (``chan`` —
the peer endpoint is gone).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import struct
import sys
import time
from dataclasses import replace
from typing import Any, Sequence

from repro.core.errors import EdenError
from repro.net.framing import (
    CHAN_FLAG,
    CODEC_JSON,
    Frame,
    FrameError,
    FrameType,
    HEADER,
    MAGIC,
    MAX_FRAME_BODY,
    decode_frame,
    encode_frame_into,
)
from repro.net.handshake import (
    ROLE_HOST,
    STREAM_ROLES,
    HandshakeError,
    TicketBook,
    expect_hello,
)
from repro.net.metrics import NetStats
from repro.net.mux import CONTROL_CHANNEL, FairWriter
from repro.obs.control import start_control_server
from repro.obs.registry import snapshot_payload

__all__ = [
    "BROKER_SERIAL",
    "FIRST_HOST_SERIAL",
    "FIRST_STAGE_SERIAL",
    "MAX_HOST_SERIAL",
    "Broker",
    "BrokerError",
    "main",
]

#: The broker's own ticket serial in the fleet's book.
BROKER_SERIAL = 1

#: Serials the fleet planner hands out to stage-host processes.
FIRST_HOST_SERIAL = 2
MAX_HOST_SERIAL = 63

#: First serial the broker assigns to registered stages (serials below
#: are reserved for the broker itself and the stage-host processes).
FIRST_STAGE_SERIAL = 64

_CHAN_EXT = struct.Struct("!I")


class BrokerError(EdenError):
    """The broker refused a control command."""


class _Registration:
    """One name on the board: who serves it, with what identity."""

    __slots__ = ("name", "serves", "conn", "serial")

    def __init__(self, name: str, serves: tuple[str, ...],
                 conn: "_HostLink", serial: int) -> None:
        self.name = name
        self.serves = serves
        self.conn = conn
        self.serial = serial


class _Route:
    """One issued channel: two (connection, channel-id) endpoints."""

    __slots__ = ("a_conn", "a_chan", "b_conn", "b_chan", "name", "role",
                 "frames", "bytes")

    def __init__(self, a_conn: "_HostLink", a_chan: int,
                 b_conn: "_HostLink", b_chan: int,
                 name: str, role: str) -> None:
        self.a_conn = a_conn
        self.a_chan = a_chan
        self.b_conn = b_conn
        self.b_chan = b_chan
        self.name = name
        self.role = role
        self.frames = 0
        self.bytes = 0

    def peer_of(self, conn: "_HostLink", chan: int) -> tuple["_HostLink", int]:
        if conn is self.a_conn and chan == self.a_chan:
            return self.b_conn, self.b_chan
        return self.a_conn, self.a_chan


class _Parked:
    """An open waiting for its target name to register."""

    __slots__ = ("conn", "req", "role", "deadline")

    def __init__(self, conn: "_HostLink", req: Any, role: str,
                 deadline: float) -> None:
        self.conn = conn
        self.req = req
        self.role = role
        self.deadline = deadline


class _HostLink:
    """One attached host connection: its writer, names, and channels."""

    def __init__(self, index: int, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.index = index
        self.reader = reader
        self.writer = writer
        self.fair = FairWriter(writer)
        self.fair.start()
        self.label = f"host#{index}"
        self.names: set[str] = set()
        #: This connection's channel-id namespace: local id -> route.
        self.routes: dict[int, _Route] = {}
        self._next_chan = CONTROL_CHANNEL + 1
        self.alive = True
        self._closed = False
        #: The relay-loop task serving this link (set on accept).
        self.task: asyncio.Task[None] | None = None

    def alloc_chan(self) -> int:
        chan = self._next_chan
        self._next_chan += 1
        return chan

    async def send_control(self, body: dict[str, Any],
                           reply: bool = False,
                           queue_on: int = CONTROL_CHANNEL) -> None:
        # ``queue_on`` keeps a notice FIFO behind one channel's queued
        # relay frames (a hangup must never overtake the data whose
        # route it tears down); the frame itself is still chan 0.
        frame_type = FrameType.CTRL_REPLY if reply else FrameType.CTRL
        out = bytearray()
        encode_frame_into(
            replace(Frame(frame_type, body), chan=CONTROL_CHANNEL),
            out, CODEC_JSON,
        )
        await self.fair.enqueue(queue_on, bytes(out))

    async def shut(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.alive = False
        await self.fair.close()
        try:
            self.writer.close()
            # Bounded: a peer that vanished mid-write can leave the
            # close waiter pending; the socket is torn down regardless.
            await asyncio.wait_for(self.writer.wait_closed(), timeout=1.0)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass


class Broker:
    """The daemon: accept hosts, run naming + issuance + relay.

    Usable in-process (tests drive :meth:`start` / :meth:`close`
    directly) or as the ``eden-broker`` CLI via :func:`main`.
    """

    def __init__(
        self,
        book: TicketBook,
        host: str = "127.0.0.1",
        port: int = 0,
        park_deadline: float = 10.0,
        clock: Any = time.monotonic,
        log: Any = None,
        flight: Any | None = None,
    ) -> None:
        if park_deadline < 0:
            raise ValueError(f"park_deadline must be >= 0, got {park_deadline}")
        self.book = book
        self.uid = book.ticket(BROKER_SERIAL)
        self.host = host
        self.port = port
        self.park_deadline = park_deadline
        self.clock = clock
        self.log = log if log is not None else (lambda line: None)
        #: Optional flight recorder: the relay path records each frame
        #: as received (opener's channel id) and as sent (peer's id),
        #: so a broker capture shows both sides of every route.
        self.flight = flight
        self.stats = NetStats()
        self.started_mono = clock()
        self._server: asyncio.AbstractServer | None = None
        self._links: set[_HostLink] = set()
        self._handler_tasks: set[asyncio.Task[None]] = set()
        self._names: dict[str, _Registration] = {}
        self._parked: dict[str, list[_Parked]] = {}
        self._next_serial = FIRST_STAGE_SERIAL
        self._next_link = 0
        self._sweeper: asyncio.Task[None] | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._accept, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._sweeper = asyncio.ensure_future(self._sweep_parked())
        self.log(f"eden-broker listening on {self.host}:{self.port}")

    async def close(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Closing a link's transport breaks its relay loop's read, so
        # each handler task unwinds through _drop_link on its own — no
        # cancellation (which asyncio's server wrapper logs as noise).
        for link in list(self._links):
            await link.shut()
        pending = [task for task in self._handler_tasks
                   if task is not asyncio.current_task()]
        if pending:
            done, still = await asyncio.wait(pending, timeout=2.0)
            for task in still:
                task.cancel()
            for task in done:
                task.exception()  # consume, teardown errors are expected
        self._links.clear()

    # -- admission + relay loop ----------------------------------------------

    async def _accept(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            await expect_hello(
                reader, writer, self.book, self.uid, roles=(ROLE_HOST,),
            )
        except HandshakeError as error:
            self.stats.bump("rejected_attachments")
            self.log(f"rejected attachment: {error}")
            return
        except (ConnectionError, OSError, FrameError, EOFError):
            return
        link = _HostLink(self._next_link, reader, writer)
        link.task = asyncio.current_task()
        if link.task is not None:
            self._handler_tasks.add(link.task)
            link.task.add_done_callback(self._handler_tasks.discard)
        self._next_link += 1
        self._links.add(link)
        self.stats.bump("attachments")
        self.stats.set_gauge("hosts_attached", float(len(self._links)))
        self.log(f"{link.label} attached")
        try:
            await self._relay_loop(link)
        except (ConnectionError, OSError, FrameError, EOFError) as error:
            self.log(f"{link.label} link failed: {error}")
        finally:
            await self._drop_link(link)

    async def _relay_loop(self, link: _HostLink) -> None:
        """Read frames from one host; relay or handle control.

        The fast path never decodes a body: header + channel extension
        in, extension rewritten to the peer's id, bytes out.
        """
        reader = link.reader
        while True:
            try:
                header = await reader.readexactly(HEADER.size)
            except asyncio.IncompleteReadError as error:
                if not error.partial:
                    return  # clean EOF
                raise FrameError("connection closed mid-header") from error
            magic, type_code, length = HEADER.unpack(header)
            if magic != MAGIC:
                raise FrameError(f"bad magic {magic!r}")
            if length > MAX_FRAME_BODY:
                raise FrameError(f"declared body of {length} bytes exceeds cap")
            chan = None
            if type_code & CHAN_FLAG:
                ext = await reader.readexactly(_CHAN_EXT.size)
                chan = _CHAN_EXT.unpack(ext)[0]
            body = await reader.readexactly(length)
            if chan is not None and chan != CONTROL_CHANNEL:
                route = link.routes.get(chan)
                if route is None:
                    self.stats.bump("orphan_frames")
                    continue
                peer_conn, peer_chan = route.peer_of(link, chan)
                if not peer_conn.alive:
                    self.stats.bump("orphan_frames")
                    continue
                wire = header + _CHAN_EXT.pack(peer_chan) + body
                if self.flight is not None:
                    self.flight.on_received(header + ext + body)
                    self.flight.on_sent(wire)
                await peer_conn.fair.enqueue(peer_chan, wire)
                route.frames += 1
                route.bytes += len(wire)
                self.stats.bump("relayed_frames")
                self.stats.bump("relayed_bytes", len(wire))
            else:
                frame, _used = decode_frame(
                    header + (b"" if chan is None
                              else _CHAN_EXT.pack(chan)) + body
                )
                await self._handle_control(link, frame)

    # -- control commands ----------------------------------------------------

    async def _handle_control(self, link: _HostLink, frame: Frame) -> None:
        if frame.type is not FrameType.CTRL:
            self.stats.bump("bad_control_frames")
            return
        body = frame.body
        cmd = body.get("cmd")
        req = body.get("req")
        self.stats.bump(f"cmd_{cmd}" if isinstance(cmd, str) else "cmd_bad")
        if cmd == "register":
            await self._cmd_register(link, req, body)
        elif cmd == "open":
            await self._cmd_open(link, req, body)
        elif cmd == "close-chan":
            await self._cmd_close_chan(link, req, body)
        elif cmd == "ping":
            await self._reply(link, req, {})
        else:
            await self._reply_error(link, req, "unknown-command",
                                    f"unknown command {cmd!r}")

    async def _reply(self, link: _HostLink, req: Any,
                     payload: dict[str, Any]) -> None:
        await link.send_control(
            {"ok": True, "req": req, "payload": payload}, reply=True
        )

    async def _reply_error(self, link: _HostLink, req: Any, code: str,
                           message: str) -> None:
        await link.send_control(
            {"ok": False, "req": req, "error": code, "message": message},
            reply=True,
        )

    async def _cmd_register(self, link: _HostLink, req: Any,
                            body: dict[str, Any]) -> None:
        name = body.get("name")
        serves = body.get("serves", [])
        if not isinstance(name, str) or not name:
            await self._reply_error(link, req, "bad-name",
                                    f"name must be a non-empty string, "
                                    f"got {name!r}")
            return
        if (not isinstance(serves, (list, tuple))
                or any(role not in STREAM_ROLES for role in serves)):
            await self._reply_error(
                link, req, "bad-roles",
                f"serves must list roles from {STREAM_ROLES}, got {serves!r}",
            )
            return
        existing = self._names.get(name)
        if existing is not None and existing.conn is not link \
                and existing.conn.alive:
            await self._reply_error(link, req, "name-taken",
                                    f"{name!r} is registered by "
                                    f"{existing.conn.label}")
            return
        # A re-registration (same host, or a restarted host's new link)
        # keeps its serial: the stage's UID survives the crash.
        if existing is not None:
            serial = existing.serial
        else:
            serial = self._next_serial
            self._next_serial += 1
        self._names[name] = _Registration(name, tuple(serves), link, serial)
        link.names.add(name)
        self.stats.bump("registrations")
        self.stats.set_gauge("names_registered", float(len(self._names)))
        await self._reply(link, req, {"serial": serial})
        # Anyone parked on this name gets their channel now.
        for parked in self._parked.pop(name, []):
            if parked.conn.alive:
                await self._issue(parked.conn, parked.req,
                                  self._names[name], parked.role)

    async def _cmd_open(self, link: _HostLink, req: Any,
                        body: dict[str, Any]) -> None:
        to = body.get("to")
        role = body.get("role")
        if not isinstance(to, str) or not to:
            await self._reply_error(link, req, "bad-name",
                                    f"to must be a name, got {to!r}")
            return
        if role not in STREAM_ROLES:
            await self._reply_error(link, req, "bad-role",
                                    f"role must be one of {STREAM_ROLES}, "
                                    f"got {role!r}")
            return
        registration = self._names.get(to)
        if registration is not None and registration.conn.alive:
            await self._issue(link, req, registration, role)
            return
        if self.park_deadline <= 0:
            await self._reply_error(link, req, "no-such-name",
                                    f"no registration for {to!r}")
            return
        self._parked.setdefault(to, []).append(
            _Parked(link, req, role, self.clock() + self.park_deadline)
        )
        self.stats.bump("parked_opens")

    async def _issue(self, link: _HostLink, req: Any,
                     registration: _Registration, role: str) -> None:
        """Issue one channel, or refuse it for role incompatibility."""
        if role not in registration.serves:
            # The Hennicker & Bidoit check: both endpoints' declared
            # behaviours must correspond, and the mismatch surfaces at
            # issuance — not as a runtime deadlock of two active (or
            # two passive) ends.
            self.stats.bump("incompatible_opens")
            await self._reply_error(
                link, req, "incompatible-channel",
                f"{registration.name!r} serves "
                f"{list(registration.serves) or 'nothing'}; "
                f"a {role!r} endpoint cannot connect to it",
            )
            return
        target = registration.conn
        a_chan = link.alloc_chan()
        b_chan = target.alloc_chan()
        route = _Route(link, a_chan, target, b_chan, registration.name, role)
        link.routes[a_chan] = route
        target.routes[b_chan] = route
        self.stats.bump("channels_opened")
        self.stats.set_gauge("channels_open", float(self._routes_open()))
        # Accept reaches the server before the opener's reply can
        # produce a first frame: both ride FIFO control/relay queues.
        await target.send_control({
            "cmd": "accept", "chan": b_chan,
            "name": registration.name, "role": role,
        })
        await self._reply(link, req, {"chan": a_chan,
                                      "serial": registration.serial})

    async def _cmd_close_chan(self, link: _HostLink, req: Any,
                              body: dict[str, Any]) -> None:
        chan = body.get("chan")
        route = link.routes.pop(chan, None) if isinstance(chan, int) else None
        if route is not None:
            peer_conn, peer_chan = route.peer_of(link, chan)
            peer_conn.routes.pop(peer_chan, None)
            if peer_conn.alive and peer_conn is not link:
                await peer_conn.send_control(
                    {"cmd": "hangup", "chan": peer_chan}, queue_on=peer_chan
                )
            elif peer_conn is link and peer_chan != chan:
                await link.send_control(
                    {"cmd": "hangup", "chan": peer_chan}, queue_on=peer_chan
                )
            self.stats.bump("channels_closed")
            self.stats.set_gauge("channels_open", float(self._routes_open()))
        await self._reply(link, req, {})

    # -- teardown + housekeeping ---------------------------------------------

    async def _drop_link(self, link: _HostLink) -> None:
        self._links.discard(link)
        link.alive = False
        self.stats.set_gauge("hosts_attached", float(len(self._links)))
        # Hang up every channel the dead host was an endpoint of.
        for chan, route in list(link.routes.items()):
            peer_conn, peer_chan = route.peer_of(link, chan)
            peer_conn.routes.pop(peer_chan, None)
            if peer_conn.alive and peer_conn is not link:
                try:
                    await peer_conn.send_control(
                        {"cmd": "hangup", "chan": peer_chan},
                        queue_on=peer_chan,
                    )
                except (ConnectionError, OSError):
                    pass
        link.routes.clear()
        # Registrations stay on the board (keeping their serials) but
        # point at a dead link, so new opens park until re-registration.
        self.stats.set_gauge("channels_open", float(self._routes_open()))
        await link.shut()
        self.log(f"{link.label} detached")

    async def _sweep_parked(self) -> None:
        while True:
            await asyncio.sleep(min(0.25, self.park_deadline or 0.25))
            now = self.clock()
            for name in list(self._parked):
                keep: list[_Parked] = []
                for parked in self._parked[name]:
                    if not parked.conn.alive:
                        continue
                    if parked.deadline <= now:
                        self.stats.bump("park_timeouts")
                        try:
                            await self._reply_error(
                                parked.conn, parked.req, "no-such-name",
                                f"no registration for {name!r} within "
                                f"{self.park_deadline:.1f}s",
                            )
                        except (ConnectionError, OSError):
                            pass
                    else:
                        keep.append(parked)
                if keep:
                    self._parked[name] = keep
                else:
                    del self._parked[name]

    def _routes_open(self) -> int:
        # Each open route appears once per endpoint namespace; count
        # distinct route objects.
        seen: set[int] = set()
        for link in self._links:
            for route in link.routes.values():
                seen.add(id(route))
        return len(seen)

    # -- introspection -------------------------------------------------------

    def control_handlers(self) -> dict[str, Any]:
        def stats_cmd(_body: dict[str, Any]) -> Any:
            return snapshot_payload(self.stats)

        def health_cmd(_body: dict[str, Any]) -> Any:
            return {
                "label": "broker",
                "role": "broker",
                "uptime_s": self.clock() - self.started_mono,
                "hosts": len(self._links),
                "names": len(self._names),
                "channels_open": self._routes_open(),
                "parked": sum(len(v) for v in self._parked.values()),
                "flight": (self.flight.describe()
                           if self.flight is not None else None),
            }

        def channels_cmd(_body: dict[str, Any]) -> Any:
            rows = []
            seen: set[int] = set()
            for link in self._links:
                for route in link.routes.values():
                    if id(route) in seen:
                        continue
                    seen.add(id(route))
                    rows.append({
                        "name": route.name, "role": route.role,
                        "a": f"{route.a_conn.label}:{route.a_chan}",
                        "b": f"{route.b_conn.label}:{route.b_chan}",
                        "frames": route.frames, "bytes": route.bytes,
                    })
            return rows

        return {"stats": stats_cmd, "health": health_cmd,
                "channels": channels_cmd}


# ---------------------------------------------------------------------------
# Command line.
# ---------------------------------------------------------------------------


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="eden-broker",
        description="Run the hosted-fleet control plane: naming, "
                    "channel issuance, and frame relay.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--ticket-space", type=int, default=0)
    parser.add_argument("--ticket-seed", type=int, default=0)
    parser.add_argument("--park-deadline", type=float, default=10.0,
                        help="seconds an open may wait for its target "
                             "name to register")
    parser.add_argument("--control-port", type=int, default=None,
                        metavar="PORT",
                        help="serve STATS/HEALTH/CHANNELS requests here")
    parser.add_argument("--stats-file", default=None,
                        help="dump broker counters here on exit")
    parser.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="record every relayed frame to segment files")
    parser.add_argument("--flight-mode", default="full",
                        choices=("digest", "full"))
    return parser


async def _serve(options: argparse.Namespace) -> int:
    book = TicketBook(space=options.ticket_space, seed=options.ticket_seed)
    flight = None
    if options.flight_dir is not None:
        from repro.obs.flight import FlightRecorder

        flight = FlightRecorder(
            options.flight_dir, "broker", mode=options.flight_mode,
            meta={"role": "broker", "serial": BROKER_SERIAL},
        )
    broker = Broker(
        book, host=options.host, port=options.port,
        park_deadline=options.park_deadline,
        log=lambda line: print(line, file=sys.stderr, flush=True),
        flight=flight,
    )
    await broker.start()
    print(f"eden-broker listening on {broker.host}:{broker.port}", flush=True)
    control = None
    if options.control_port is not None:
        control = await start_control_server(
            broker.control_handlers(), host=options.host,
            port=options.control_port,
        )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass
    try:
        await stop.wait()
    finally:
        if control is not None:
            control.close()
            await control.wait_closed()
        await broker.close()
        if flight is not None:
            flight.close()
        if options.stats_file:
            payload = {"role": "broker",
                       **snapshot_payload(broker.stats)}
            with open(options.stats_file, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    options = _parser().parse_args(argv)
    try:
        return asyncio.run(_serve(options))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
