"""Plan a *hosted* fleet: one broker, few host processes, many stages.

:func:`plan_hosted_fleet` is the hosted placement's analogue of
:func:`repro.net.launch.plan_linear_fleet`: it turns the same pipeline
description (discipline, transducers, source, faults) into
:class:`~repro.net.launch.StagePlan` entries the ordinary
:class:`~repro.net.launch.FleetSupervisor` can run — except the
processes are one ``eden-broker`` daemon plus ``hosts`` ``eden-host``
processes, each hosting a contiguous run of the pipeline's stages over
a single multiplexed broker connection.  Stage-level fault plans,
resume, tracing, and per-position fault addressing all carry over;
process count is ``hosts + 1`` regardless of pipeline length, which is
the point.

The broker plan is marked ``daemon=True``: the supervisor terminates
it once every host has drained its streams (the broker dumps its
stats on SIGTERM), and restarts it like a crashed stage if it dies
mid-run — hosts ride out the gap through connect backoff and
re-registration.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping, Sequence

from repro.devices import random_lines
from repro.fault.plan import FaultPlan
from repro.net.affinity import assign_cores
from repro.net.framing import CODEC_JSON
from repro.net.launch import StagePlan, TransducerSpec, _manifest_entry
from repro.net.stage import pick_free_port
from repro.transput.flow import FlowPolicy
from repro.broker.daemon import FIRST_HOST_SERIAL, MAX_HOST_SERIAL

__all__ = ["plan_hosted_fleet"]


def _stage_names(count: int) -> list[str]:
    """Fleet-scoped names by pipeline position: source, f1..fn, sink."""
    return (["source"]
            + [f"filter{i}" for i in range(1, count - 1)]
            + ["sink"])


def plan_hosted_fleet(
    discipline: str,
    transducers: Sequence[TransducerSpec],
    workdir: str,
    source_items: Sequence[Any] | None = None,
    source_count: int | None = None,
    source_width: int = 8,
    source_seed: int = 0,
    flow: FlowPolicy | None = None,
    ticket_space: int = 0,
    ticket_seed: int = 0,
    host: str = "127.0.0.1",
    connect_deadline: float = 15.0,
    trace: bool = False,
    control: bool = False,
    faults: Mapping[int, FaultPlan] | None = None,
    resume: bool = False,
    io_timeout: float | None = None,
    codec: str = CODEC_JSON,
    hosts: int = 1,
    broker: str | None = None,
    max_restarts: int = 0,
    restart_backoff: float = 0.05,
    park_deadline: float = 10.0,
    placement_policy: str = "cores",
    flight_dir: str | None = None,
    flight_mode: str = "full",
) -> list[StagePlan]:
    """Plan broker + stage hosts for one pipeline.

    ``faults`` addresses stages by pipeline position exactly as
    :func:`~repro.net.launch.plan_linear_fleet` does (source = 0, filters
    1..n, sink = n+1).  ``hosts`` spreads the stages over that many
    ``eden-host`` processes (contiguous runs, so a cut crosses as few
    links as possible).  ``broker`` as ``"host:port"`` attaches the
    fleet to an externally-run broker instead of planning one;
    ``max_restarts`` is each hosted stage's *in-process* restart
    budget (the supervisor's own budget still governs whole
    processes).  ``placement_policy`` (``"cores"`` / ``"none"``)
    round-robins each host process onto its own CPU core exactly as
    :func:`~repro.net.launch.plan_sharded_fleet` does per shard.
    """
    if discipline not in ("readonly", "writeonly"):
        raise ValueError(
            f"hosted placement supports readonly/writeonly, got "
            f"{discipline!r} (conventional needs a pipe process per link)"
        )
    if hosts < 1:
        raise ValueError(f"hosts must be >= 1, got {hosts}")
    if FIRST_HOST_SERIAL + hosts - 1 > MAX_HOST_SERIAL:
        raise ValueError(
            f"at most {MAX_HOST_SERIAL - FIRST_HOST_SERIAL + 1} hosts per "
            f"ticket space, got {hosts}"
        )
    flow = flow or FlowPolicy()
    faults = dict(faults or {})
    if source_items is None:
        if source_count is None:
            raise ValueError("give source_items or source_count")
        source_items = random_lines(
            count=source_count, width=source_width, seed=source_seed
        )
    workpath = pathlib.Path(workdir)
    workpath.mkdir(parents=True, exist_ok=True)

    names = _stage_names(len(transducers) + 2)
    stage_count = len(names)
    if hosts > stage_count:
        raise ValueError(
            f"{hosts} hosts for {stage_count} stages: at most one host "
            f"per stage"
        )

    # One spec dict per pipeline position, in HostedStageSpec shape.
    specs: list[dict[str, Any]] = []
    for position, name in enumerate(names):
        if position == 0:
            role = "source"
            spec_name, spec_args = None, []
        elif position == stage_count - 1:
            role = "sink"
            spec_name, spec_args = None, []
        else:
            role = "filter"
            spec_name, spec_args = transducers[position - 1]
        entry: dict[str, Any] = {
            "name": name,
            "role": role,
            "transducer_spec": spec_name,
            "transducer_args": list(spec_args),
        }
        if role == "source":
            entry["source_items"] = list(source_items)
        if discipline == "readonly" and role != "source":
            entry["upstream"] = names[position - 1]
        if discipline == "writeonly" and role != "sink":
            entry["downstream"] = names[position + 1]
        fault = faults.pop(position, None)
        if fault is not None and not fault.is_benign:
            entry["fault"] = fault.as_dict()
        specs.append(entry)
    if faults:
        raise ValueError(
            f"faults named positions that do not exist: {sorted(faults)} "
            f"(the pipeline has positions 0..{stage_count - 1})"
        )

    plans: list[StagePlan] = []

    if broker is None:
        broker_host, broker_port = host, pick_free_port(host)
        broker_stats = str(workpath / "broker.stats.json")
        broker_argv = [
            "--host", broker_host, "--port", str(broker_port),
            "--ticket-space", str(ticket_space),
            "--ticket-seed", str(ticket_seed),
            "--park-deadline", str(park_deadline),
            "--stats-file", broker_stats,
        ]
        if flight_dir is not None:
            broker_argv += ["--flight-dir", flight_dir,
                            "--flight-mode", flight_mode]
        broker_control = None
        if control:
            broker_control = pick_free_port(host)
            broker_argv += ["--control-port", str(broker_control)]
        plans.append(StagePlan(
            role="broker",
            argv=tuple(broker_argv),
            stats_file=broker_stats,
            control_port=broker_control,
            serial=1,
            stdout_file=str(workpath / "broker.stdout.log"),
            stderr_file=str(workpath / "broker.stderr.log"),
            module="repro.broker.daemon",
            daemon=True,
        ))
    else:
        broker_host, _sep, port_text = broker.rpartition(":")
        broker_port = int(port_text)
        broker_host = broker_host or "127.0.0.1"

    # Contiguous runs of stages per host, remainder to the early hosts.
    host_cores = assign_cores(hosts, placement_policy)
    per_host, extra = divmod(stage_count, hosts)
    cursor = 0
    for index in range(hosts):
        take = per_host + (1 if index < extra else 0)
        chunk = specs[cursor:cursor + take]
        cursor += take
        serial = FIRST_HOST_SERIAL + index
        stem = f"host-{index}"
        stats_file = str(workpath / f"{stem}.stats.json")
        trace_file = str(workpath / f"{stem}.trace.jsonl") if trace else None
        control_port = pick_free_port(host) if control else None
        plan_data = {
            "broker_host": broker_host,
            "broker_port": broker_port,
            "stages": chunk,
            "discipline": discipline,
            "ticket_space": ticket_space,
            "ticket_seed": ticket_seed,
            "serial": serial,
            "resume": resume,
            "codec": codec,
            "flow": flow.describe(),
            "io_timeout": io_timeout,
            "connect_deadline": connect_deadline,
            "max_restarts": max_restarts,
            "restart_backoff": restart_backoff,
            "stats_file": stats_file,
            "trace_file": trace_file,
            "control_port": control_port,
            "cpu": host_cores[index],
            "flight_dir": flight_dir,
            "flight_mode": flight_mode,
        }
        plan_file = workpath / f"{stem}.plan.json"
        with open(plan_file, "w", encoding="utf-8") as handle:
            json.dump(plan_data, handle, indent=2, sort_keys=True)
        plans.append(StagePlan(
            role="host",
            argv=("--plan-file", str(plan_file)),
            stats_file=stats_file,
            trace_file=trace_file,
            control_port=control_port,
            serial=serial,
            stdout_file=str(workpath / f"{stem}.stdout.log"),
            stderr_file=str(workpath / f"{stem}.stderr.log"),
            module="repro.broker.host",
            cpu=host_cores[index],
        ))

    if trace or control:
        manifest = {
            "discipline": discipline,
            "host": host,
            "resume": resume,
            "codec": codec,
            "placement": "hosted",
            "flight_dir": flight_dir,
            "flight_mode": flight_mode if flight_dir is not None else None,
            "placement_policy": placement_policy,
            "host_cores": host_cores,
            "broker": f"{broker_host}:{broker_port}",
            "stages": [_manifest_entry(plan, plan.serial) for plan in plans],
        }
        with open(workpath / "fleet.json", "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
    return plans
