"""BrokerClient: one process's attachment to the eden-broker.

Wraps a :class:`~repro.net.mux.ChannelMux` around one TCP connection
to the broker, speaking the channel-0 control protocol documented in
:mod:`repro.broker.daemon`: register names, open channels by name,
and field the broker's ``accept``/``hangup`` notices.

The ``accept`` path has one hard ordering rule: the broker relays the
opener's first frame (its HELLO) immediately after the accept notice
on the same connection, so the channel **must** be attached to the mux
before the control handler yields.  :meth:`_on_control` therefore
attaches synchronously and only then invokes ``on_accept``, which is
expected to *schedule* serving (``asyncio.ensure_future``), never to
block the read loop.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable

from repro.core.tracing import Tracer
from repro.net.framing import Frame, FrameType
from repro.net.handshake import ROLE_HOST, TicketBook, send_hello
from repro.net.metrics import NetStats
from repro.net.mux import ChannelMux, ChannelOpener, MuxChannel
from repro.net.protocol import connect_with_backoff
from repro.broker.daemon import BrokerError

__all__ = ["BrokerClient"]


class BrokerClient:
    """Control-plane client + channel factory for one host process."""

    def __init__(
        self,
        host: str,
        port: int,
        book: TicketBook,
        serial: int,
        label: str = "host",
        stats: NetStats | None = None,
        tracer: Tracer | None = None,
        clock: Callable[[], float] = time.monotonic,
        connect_deadline: float = 15.0,
        request_timeout: float = 30.0,
        on_accept: Callable[[MuxChannel, dict[str, Any]], None] | None = None,
        flight: Any | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.book = book
        self.uid = book.ticket(serial)
        self.label = label
        self.stats = stats if stats is not None else NetStats()
        self.tracer = tracer
        self.clock = clock
        self.connect_deadline = connect_deadline
        self.request_timeout = request_timeout
        self.on_accept = on_accept
        self.flight = flight
        self.mux: ChannelMux | None = None
        self._pending: dict[int, asyncio.Future[dict[str, Any]]] = {}
        self._next_req = 0

    # -- lifecycle -----------------------------------------------------------

    async def connect(self) -> None:
        """Dial the broker and complete the host-role admission."""
        reader, writer = await connect_with_backoff(
            self.host, self.port, deadline=self.connect_deadline
        )
        await send_hello(
            reader, writer, self.uid, ROLE_HOST, book=self.book,
            roles=(ROLE_HOST,),
        )
        self.mux = ChannelMux(
            reader, writer,
            on_control=self._on_control,
            on_close=self._on_close,
            stats=self.stats,
            clock=self.clock,
            label=f"{self.label}-mux",
            flight=self.flight,
        )
        self.mux.start()

    @property
    def connected(self) -> bool:
        return self.mux is not None and not self.mux.closed

    async def close(self) -> None:
        if self.mux is not None:
            await self.mux.close()
        self._fail_pending(ConnectionResetError("broker client closed"))

    # -- the command surface -------------------------------------------------

    async def request(self, cmd: str, timeout: float | None = None,
                      queue_on: int = 0, **args: Any) -> dict[str, Any]:
        """One correlated control round trip; returns the reply payload.

        ``queue_on`` routes the request through that channel's fair-
        writer queue so it stays FIFO behind the channel's queued data
        (used by ``close-chan``, which must not overtake a final ACK).
        """
        if self.mux is None or self.mux.closed:
            raise ConnectionResetError("not attached to a broker")
        self._next_req += 1
        req = self._next_req
        future: asyncio.Future[dict[str, Any]] = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[req] = future
        try:
            await self.mux.send_control(
                Frame(FrameType.CTRL, {"cmd": cmd, "req": req, **args}),
                queue_on=queue_on,
            )
            return await asyncio.wait_for(
                future, timeout if timeout is not None else self.request_timeout
            )
        except asyncio.TimeoutError:
            raise BrokerError(
                f"broker did not answer {cmd!r} within "
                f"{timeout if timeout is not None else self.request_timeout}s"
            ) from None
        finally:
            self._pending.pop(req, None)

    async def register(self, name: str, serves: Any = ()) -> int:
        """Register ``name`` (serving ``serves`` roles); returns its serial.

        The registration round trip is timed into the
        ``broker_register_ms`` histogram — the fleet-density benchmark's
        control-plane latency metric.
        """
        started = self.clock()
        payload = await self.request("register", name=name,
                                     serves=list(serves))
        self.stats.observe("broker_register_ms",
                           (self.clock() - started) * 1000.0)
        return int(payload["serial"])

    async def open(self, to: str, role: str,
                   **channel_options: Any) -> MuxChannel:
        """Open a channel to registration ``to`` as a ``role`` endpoint.

        Raises :class:`BrokerError` for ``incompatible-channel`` /
        ``no-such-name`` refusals.  The returned channel is attached
        and ready for the stream handshake.
        """
        payload = await self.request("open", to=to, role=role)
        assert self.mux is not None
        channel = self.mux.attach(int(payload["chan"]), **channel_options)
        channel.on_closed = self._channel_closed
        return channel

    def opener(self, **channel_options: Any) -> ChannelOpener:
        """An ``(target, role) -> MuxChannel`` factory for Hosted* ends."""

        async def open_channel(target: str, role: str) -> MuxChannel:
            return await self.open(target, role, **channel_options)

        return open_channel

    async def release(self, channel: MuxChannel) -> None:
        """Close a channel locally and free its broker route."""
        await channel.close()  # the on_closed hook notifies the broker

    def _channel_closed(self, channel: MuxChannel) -> None:
        """Tell the broker a locally-closed route is dead (best effort).

        Runs from ``MuxChannel.close`` — possibly deep inside stream
        teardown — so the round trip is fired as its own task.  The
        broker answers ``close-chan`` for unknown channels with an
        empty success, so racing the peer's close (or a dead route)
        is harmless.
        """
        if self.mux is None or self.mux.closed:
            return

        async def notify() -> None:
            try:
                await self.request("close-chan", chan=channel.chan,
                                   queue_on=channel.chan)
            except (ConnectionError, OSError, BrokerError):
                pass  # broker gone or route already dead: nothing to free

        asyncio.ensure_future(notify())

    # -- notices from the broker ---------------------------------------------

    async def _on_control(self, frame: Frame) -> None:
        body = frame.body
        if frame.type is FrameType.CTRL_REPLY:
            future = self._pending.get(body.get("req"))
            if future is None or future.done():
                return
            if body.get("ok"):
                future.set_result(body.get("payload") or {})
            else:
                future.set_exception(BrokerError(
                    f"{body.get('error')}: {body.get('message')}"
                ))
            return
        if frame.type is not FrameType.CTRL:
            return
        cmd = body.get("cmd")
        if cmd == "accept":
            assert self.mux is not None
            # Attach BEFORE yielding: the opener's HELLO is already
            # behind this notice in the connection's frame order.
            channel = self.mux.attach(int(body["chan"]))
            channel.on_closed = self._channel_closed
            if self.on_accept is not None:
                self.on_accept(channel, dict(body))
            else:
                await channel.close()
        elif cmd == "hangup":
            assert self.mux is not None
            channel = self.mux.channels.get(body.get("chan"))
            if channel is not None:
                channel.hangup()

    def _on_close(self, error: BaseException | None) -> None:
        self._fail_pending(
            error if error is not None
            else ConnectionResetError("broker connection closed")
        )

    def _fail_pending(self, error: BaseException) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
