"""eden-host: hundreds of pipeline stages in one asyncio process.

``python -m repro.broker.host`` (installed as ``eden-host``) runs many
lightweight stages — the same transducers, flow policies, and resume
machinery :mod:`repro.net.stage` hosts one-per-process — inside a
single event loop, over a *single* TCP connection to the broker.
Every inter-stage link is a logical channel (:mod:`repro.net.mux`)
opened by fleet-scoped *name* through the broker, so the host never
binds a data port and two stages in the same host talk through the
broker exactly like stages on different machines.

What survives the density jump:

- **Ticketed identity per stage.**  Each stage registers with the
  broker and receives its own serial, hence its own ticket UID; every
  channel handshake still verifies tickets (C4), and span ids keep
  their ``s<serial>-`` fleet-unique prefixes.
- **Supervision.**  Each stage runs under its own in-process
  supervise loop with the FleetSupervisor's semantics: a crash (a
  ``kill_after`` fault, a non-resumable link error) tears down only
  that stage's incarnation, which restarts with backoff against a
  restart budget.  Mid-stream peers observe a channel hangup and
  reopen by name — the broker parks their opens until the stage's
  next incarnation re-registers its serve loop.
- **Fault plans.**  ``kill_after`` trips an in-process kill (the
  stage dies; the host lives), frame faults inject per-channel, and
  ``refuse_accepts`` declines accepted channels before the handshake.
- **Observability.**  One tracer carries every stage's spans (one
  trace file for the whole host; the merger groups evidence by each
  span's own stage label), and the host serves live STATS / HEALTH /
  STAGES control requests for ``eden-top``.

The conventional discipline is refused: its every adjacent pair needs
a separate passive pipe *process*, which is exactly the cost the
hosted placement exists to avoid (the paper's §1 argument, inverted).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.core.capability import PRIMARY_CHANNEL
from repro.core.errors import EdenError
from repro.core.tracing import Tracer
from repro.aio.streams import (
    AioCollector,
    AioReadOnlyStage,
    AioSource,
    AioWriteOnlyStage,
    collect,
)
from repro.fault.inject import (
    KillSwitch,
    KillingReadable,
    KillingWritable,
    build_injector,
    killing_transducer,
)
from repro.fault.plan import FaultPlan
from repro.net.affinity import current_affinity, pin_to_core
from repro.net.bufpool import POOL
from repro.net.framing import CODEC_JSON, CODECS, FrameError
from repro.net.handshake import (
    ROLE_PULL,
    ROLE_PUSH,
    HandshakeError,
    Hello,
    TicketBook,
    expect_hello_over,
)
from repro.net.metrics import NetStats
from repro.net.mux import HostedReadable, HostedWritable, MuxChannel
from repro.net.protocol import PushState, ReplayLog, serve_pull, serve_push
from repro.net.stage import _state_key, load_transducer
from repro.obs.context import set_span
from repro.obs.control import start_control_server
from repro.obs.flight import FLIGHT_MODES, MODE_FULL, FlightRecorder
from repro.obs.registry import snapshot_payload
from repro.obs.spans import CLOCK_KIND, SpanIds
from repro.transput.filterbase import identity_transducer
from repro.broker.client import BrokerClient

__all__ = [
    "HostConfig",
    "HostError",
    "HostedStageSpec",
    "StageHost",
    "run_host",
    "main",
]

HOSTED_ROLES = ("source", "filter", "sink")
HOSTED_DISCIPLINES = ("readonly", "writeonly")


class HostError(EdenError):
    """A stage host failed (restart budget spent, broker lost, ...)."""


class _InjectedKill(BaseException):
    """A kill_after fault tripped: kills the *stage*, not the host.

    Derives from ``BaseException`` so stream-level ``except Exception``
    recovery paths cannot swallow a scheduled crash — the same reason
    the process runtime uses ``os._exit``.
    """


@dataclass
class HostedStageSpec:
    """One stage's entry in a host plan.

    ``upstream`` / ``downstream`` are fleet-scoped *names*, not
    addresses: the host opens channels to them through the broker, so
    a spec is placement-free — the named peer may live in this host,
    another host, or (future) anywhere the broker can reach.
    """

    name: str
    role: str
    upstream: str | None = None
    downstream: str | None = None
    transducer_spec: str | None = None
    transducer_args: list[Any] = field(default_factory=list)
    source_items: list[Any] | None = None
    expected_clients: int | None = None
    channel: Any = PRIMARY_CHANNEL
    fault: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("every hosted stage needs a non-empty name")
        if self.role not in HOSTED_ROLES:
            raise ValueError(
                f"role must be one of {HOSTED_ROLES}, got {self.role!r}"
            )
        if not isinstance(self.fault, FaultPlan):
            raise ValueError(f"fault must be a FaultPlan, got {self.fault!r}")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HostedStageSpec":
        fault = data.get("fault")
        return cls(
            name=data["name"],
            role=data["role"],
            upstream=data.get("upstream"),
            downstream=data.get("downstream"),
            transducer_spec=data.get("transducer_spec"),
            transducer_args=list(data.get("transducer_args") or []),
            source_items=data.get("source_items"),
            expected_clients=data.get("expected_clients"),
            channel=data.get("channel", PRIMARY_CHANNEL),
            fault=FaultPlan.from_dict(fault) if fault else FaultPlan(),
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "role": self.role,
            "upstream": self.upstream,
            "downstream": self.downstream,
            "transducer_spec": self.transducer_spec,
            "transducer_args": list(self.transducer_args),
            "source_items": self.source_items,
            "expected_clients": self.expected_clients,
            "channel": self.channel,
            "fault": self.fault.as_dict(),
        }


_FLOW_KEYS = (
    "lookahead", "batch", "buffer_capacity", "inbox_capacity",
    "credit_window", "pipeline_depth", "adaptive",
)


@dataclass
class HostConfig:
    """Everything one stage-host process needs to know."""

    broker_host: str
    broker_port: int
    stages: list[HostedStageSpec]
    discipline: str = "readonly"
    ticket_space: int = 0
    ticket_seed: int = 0
    serial: int = 2
    resume: bool = False
    codec: str = CODEC_JSON
    flow: "FlowPolicy" = None  # type: ignore[assignment]
    io_timeout: float | None = None
    connect_deadline: float = 15.0
    max_restarts: int = 0
    restart_backoff: float = 0.05
    stats_file: str | None = None
    trace_file: str | None = None
    output_file: str | None = None
    control_port: int | None = None
    #: CPU core this host process pins itself to (None = unpinned).
    cpu: int | None = None
    flight_dir: str | None = None
    flight_mode: str = MODE_FULL

    def __post_init__(self) -> None:
        from repro.transput.flow import FlowPolicy

        if self.flow is None:
            self.flow = FlowPolicy()
        if self.flight_mode not in FLIGHT_MODES:
            raise ValueError(
                f"flight_mode must be one of {FLIGHT_MODES}, "
                f"got {self.flight_mode!r}"
            )
        if self.discipline not in HOSTED_DISCIPLINES:
            raise ValueError(
                f"hosted discipline must be one of {HOSTED_DISCIPLINES}, got "
                f"{self.discipline!r} (conventional needs a pipe process per "
                f"link; use the process placement)"
            )
        if self.codec not in CODECS:
            raise ValueError(f"codec must be one of {CODECS}, got {self.codec!r}")
        if not self.stages:
            raise ValueError("a host plan needs at least one stage")
        names = [spec.name for spec in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"stage names must be unique, got {names}")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HostConfig":
        from repro.transput.flow import FlowPolicy

        flow_data = data.get("flow") or {}
        return cls(
            broker_host=data["broker_host"],
            broker_port=int(data["broker_port"]),
            stages=[HostedStageSpec.from_dict(raw) for raw in data["stages"]],
            discipline=data.get("discipline", "readonly"),
            ticket_space=int(data.get("ticket_space", 0)),
            ticket_seed=int(data.get("ticket_seed", 0)),
            serial=int(data.get("serial", 2)),
            resume=bool(data.get("resume", False)),
            codec=data.get("codec", CODEC_JSON),
            flow=FlowPolicy(**{
                key: flow_data[key] for key in _FLOW_KEYS if key in flow_data
            }),
            io_timeout=data.get("io_timeout"),
            connect_deadline=float(data.get("connect_deadline", 15.0)),
            max_restarts=int(data.get("max_restarts", 0)),
            restart_backoff=float(data.get("restart_backoff", 0.05)),
            stats_file=data.get("stats_file"),
            trace_file=data.get("trace_file"),
            output_file=data.get("output_file"),
            control_port=data.get("control_port"),
            cpu=data.get("cpu"),
            flight_dir=data.get("flight_dir"),
            flight_mode=data.get("flight_mode", MODE_FULL),
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "broker_host": self.broker_host,
            "broker_port": self.broker_port,
            "stages": [spec.as_dict() for spec in self.stages],
            "discipline": self.discipline,
            "ticket_space": self.ticket_space,
            "ticket_seed": self.ticket_seed,
            "serial": self.serial,
            "resume": self.resume,
            "codec": self.codec,
            "flow": self.flow.describe(),
            "io_timeout": self.io_timeout,
            "connect_deadline": self.connect_deadline,
            "max_restarts": self.max_restarts,
            "restart_backoff": self.restart_backoff,
            "stats_file": self.stats_file,
            "trace_file": self.trace_file,
            "output_file": self.output_file,
            "control_port": self.control_port,
            "cpu": self.cpu,
            "flight_dir": self.flight_dir,
            "flight_mode": self.flight_mode,
        }


def serves_roles(role: str, discipline: str) -> tuple[str, ...]:
    """The channel roles a stage's passive end accepts, if any."""
    if discipline == "readonly" and role in ("source", "filter"):
        return (ROLE_PULL,)
    if discipline == "writeonly" and role in ("filter", "sink"):
        return (ROLE_PUSH,)
    return ()


class _HostedStage:
    """The runtime state of one stage inside the host."""

    def __init__(self, spec: HostedStageSpec, host: "StageHost") -> None:
        self.spec = spec
        self.host = host
        self.serial = 0  # assigned by broker registration
        self.uid = None  # ticket minted once the serial is known
        self.label = f"{spec.role}/{host.config.discipline}"
        self.spans: SpanIds | None = None
        self.accepts: asyncio.Queue[tuple[MuxChannel, dict[str, Any]]] = (
            asyncio.Queue()
        )
        self.ready = asyncio.Event()
        self.collected: list[Any] | None = None
        self.restarts = 0
        self.state = "pending"
        self.injector = build_injector(
            spec.fault, stats=host.stats, label=spec.name
        )
        self._refusals_left = spec.fault.refuse_accepts

    def adopt_serial(self, serial: int) -> None:
        self.serial = serial
        self.uid = self.host.book.ticket(serial)
        # The same label shape eden-stage uses, so merged traces read
        # identically whatever the placement was.
        self.label = (
            f"{self.spec.role}/{self.host.config.discipline}#{serial}"
        )
        if self.host.tracer.enabled:
            self.spans = SpanIds(prefix=f"s{serial}-")

    def kill_switch(self) -> KillSwitch | None:
        """The incarnation's kill switch, if the fault plan arms one.

        One-shot semantics match the process supervisor, which strips
        ``kill_after`` from a survivor's argv: only the first
        incarnation is armed, so a restarted stage does not die again
        on schedule.
        """
        if self.spec.fault.kill_after is None or self.restarts > 0:
            return None

        def trip() -> None:
            raise _InjectedKill(
                f"[{self.spec.name}] fault: killed "
                f"(kill_after={self.spec.fault.kill_after})"
            )

        return KillSwitch(
            self.spec.fault.kill_after, label=self.spec.name, on_kill=trip
        )


class StageHost:
    """Run every stage of a :class:`HostConfig` inside one event loop."""

    def __init__(self, config: HostConfig) -> None:
        self.config = config
        self.stats = NetStats()
        self.tracer = Tracer(enabled=config.trace_file is not None)
        self.book = TicketBook(space=config.ticket_space, seed=config.ticket_seed)
        # One recorder for the whole host: every hosted stage's frames
        # cross the single broker connection, so hooking the mux sees
        # them all (the channel id in each record says whose they are).
        self.flight = None
        if config.flight_dir is not None:
            self.flight = FlightRecorder(
                config.flight_dir, f"host#{config.serial}",
                mode=config.flight_mode, stats=self.stats,
                meta={
                    "role": "host",
                    "discipline": config.discipline,
                    "serial": config.serial,
                    "codec": config.codec,
                    "resume": config.resume,
                    "stages": [
                        {
                            "name": spec.name,
                            "role": spec.role,
                            "transducer_spec": spec.transducer_spec,
                            "transducer_args": list(spec.transducer_args),
                        }
                        for spec in config.stages
                    ],
                },
            )
        self.client = BrokerClient(
            config.broker_host, config.broker_port, self.book,
            serial=config.serial, label=f"host#{config.serial}",
            stats=self.stats, tracer=self.tracer,
            connect_deadline=config.connect_deadline,
            on_accept=self._on_accept,
            flight=self.flight,
        )
        self.stages = [_HostedStage(spec, self) for spec in config.stages]
        self._by_name = {stage.spec.name: stage for stage in self.stages}
        self.started_mono = time.monotonic()
        self.pinned = False

    # -- broker side ---------------------------------------------------------

    def _on_accept(self, channel: MuxChannel, notice: dict[str, Any]) -> None:
        """Route an accepted channel to its stage's inbox.

        Runs inside the mux read loop, so it must not block: the
        channel just lands in the stage's accept queue, where the
        handshake frames wait (buffered in the channel inbox) until
        the stage's current incarnation picks it up — which is also
        what parks new clients during a restart backoff.
        """
        stage = self._by_name.get(notice.get("name"))
        if stage is None:
            self.stats.bump("host_orphan_accepts")
            asyncio.ensure_future(channel.close())
            return
        stage.accepts.put_nowait((channel, notice))

    async def _register_all(self) -> None:
        for stage in self.stages:
            serial = await self.client.register(
                stage.spec.name,
                serves=serves_roles(stage.spec.role, self.config.discipline),
            )
            stage.adopt_serial(serial)
        self.stats.set_gauge("hosted_stages", float(len(self.stages)))

    # -- per-stage stream plumbing -------------------------------------------

    def _hosted_readable(self, stage: _HostedStage) -> HostedReadable:
        config = self.config
        return HostedReadable(
            self.client.opener(), stage.spec.upstream,
            uid=stage.uid, book=self.book, channel=stage.spec.channel,
            stats=self.stats, tracer=self.tracer, label=stage.label,
            connect_deadline=config.connect_deadline, spans=stage.spans,
            resume=config.resume, io_timeout=config.io_timeout,
            injector=stage.injector, codec=config.codec,
            pipeline_depth=config.flow.effective_pipeline_depth(),
        )

    def _hosted_writable(self, stage: _HostedStage) -> HostedWritable:
        config = self.config
        return HostedWritable(
            self.client.opener(), stage.spec.downstream,
            uid=stage.uid, book=self.book, channel=stage.spec.channel,
            stats=self.stats, tracer=self.tracer, label=stage.label,
            connect_deadline=config.connect_deadline, spans=stage.spans,
            resume=config.resume, io_timeout=config.io_timeout,
            injector=stage.injector, codec=config.codec,
        )

    def _transducer(self, stage: _HostedStage, switch: KillSwitch | None):
        if stage.spec.transducer_spec is None:
            made = identity_transducer()
        else:
            made = load_transducer(
                stage.spec.transducer_spec, stage.spec.transducer_args
            )
        if switch is not None and stage.spec.role == "filter":
            made = killing_transducer(made, switch)
        return made

    @staticmethod
    async def _pump(readable: Any, writable: Any, batch: int) -> None:
        """The active middle (same contract as eden-stage's pump)."""
        while True:
            transfer = await readable.read(batch)
            last = getattr(readable, "last_span", None)
            if last is not None:
                set_span(last)
            await writable.write(transfer)
            if transfer.at_end:
                return

    async def _serve_accepts(
        self,
        stage: _HostedStage,
        readables: Any = None,
        writable: Any = None,
        clients: int = 1,
        replay_logs: dict[Any, ReplayLog] | None = None,
        push_states: dict[Any, PushState] | None = None,
    ) -> None:
        """Serve accepted channels until ``clients`` streams complete.

        The hosted analogue of eden-stage's ``_serve``: channels come
        from the broker's accept notices instead of a TCP listener,
        and a crash in any serve task (an injected kill, a
        non-resumable link failure) propagates out to the stage's
        supervise loop rather than killing a process.
        """
        config = self.config
        credit = config.flow.effective_credit_window()
        resume = config.resume
        codec_offer = (
            CODECS if config.codec != CODEC_JSON else (CODEC_JSON,)
        )

        def push_state_for(hello: Hello) -> PushState:
            assert push_states is not None
            return push_states.setdefault(_state_key(hello.channel), PushState())

        resume_seq_for = None
        if resume and push_states is not None:
            def resume_seq_for(hello: Hello) -> int | None:
                if hello.role != ROLE_PUSH:
                    return None
                return push_state_for(hello).received

        async def serve_one(channel: MuxChannel) -> bool:
            if stage._refusals_left > 0:
                stage._refusals_left -= 1
                self.stats.bump("refused_accepts")
                await self.client.release(channel)
                return False
            channel.stats = self.stats
            channel.tracer = self.tracer
            channel.label = stage.label
            channel.injector = stage.injector
            try:
                hello = await expect_hello_over(
                    channel, self.book, stage.uid, credit=credit,
                    resume_seq_for=resume_seq_for, codec_offer=codec_offer,
                )
                channel.codec = hello.codec
                if hello.role == ROLE_PULL and readables is not None:
                    completed = await serve_pull(
                        channel, readables, hello, batch_limit=None,
                        logs=replay_logs if resume else None,
                    )
                elif hello.role == ROLE_PUSH and writable is not None:
                    completed = await serve_push(
                        channel, writable, hello,
                        state=push_state_for(hello) if resume else None,
                    )
                else:
                    await self.client.release(channel)
                    return False
                await self.client.release(channel)
                return completed
            except HandshakeError as error:
                print(f"[{stage.label}] rejected channel: {error}",
                      file=sys.stderr)
                await self.client.release(channel)
                return False
            except (ConnectionError, OSError, FrameError, EOFError) as error:
                await self.client.release(channel)
                if not resume:
                    raise
                self.stats.bump("client_disconnects")
                print(f"[{stage.label}] client channel failed: {error}",
                      file=sys.stderr)
                return False
            except BaseException:
                # A crash mid-serve: free the route so the peer sees a
                # hangup (and reopens by name into the next
                # incarnation), then let the supervisor have it.
                await self.client.release(channel)
                raise

        completed_count = 0
        serving: set[asyncio.Task[bool]] = set()
        intake: asyncio.Task[Any] = asyncio.ensure_future(stage.accepts.get())
        try:
            while completed_count < clients:
                done, _pending = await asyncio.wait(
                    {intake, *serving}, return_when=asyncio.FIRST_COMPLETED
                )
                if intake in done:
                    done.discard(intake)
                    channel, _notice = intake.result()
                    serving.add(asyncio.ensure_future(serve_one(channel)))
                    intake = asyncio.ensure_future(stage.accepts.get())
                for task in done:
                    serving.discard(task)
                    if task.result():  # re-raises a crashed serve
                        completed_count += 1
        finally:
            intake.cancel()
            for task in serving:
                task.cancel()
            for task in (intake, *serving):
                try:
                    await task
                except BaseException:
                    pass

    # -- one incarnation of one stage ----------------------------------------

    async def _run_incarnation(self, stage: _HostedStage) -> None:
        """One lifetime of a stage, ending in completion or a crash.

        Resume state (replay logs, push dedup cursors) is scoped to
        the incarnation — exactly what a process restart loses — so
        the recovery guarantees tested against eden-stage fleets hold
        unchanged here.
        """
        spec = stage.spec
        config = self.config
        flow = config.flow
        switch = stage.kill_switch()
        replay_logs: dict[Any, ReplayLog] = {}
        push_states: dict[Any, PushState] = {}

        def killing_readable(readable: Any) -> Any:
            return KillingReadable(readable, switch) if switch else readable

        def killing_writable(writable: Any) -> Any:
            return KillingWritable(writable, switch) if switch else writable

        if spec.role == "source":
            items = spec.source_items or []
            if config.discipline == "readonly":
                await self._serve_accepts(
                    stage, readables=killing_readable(AioSource(items)),
                    clients=spec.expected_clients or 1,
                    replay_logs=replay_logs,
                )
            else:
                await self._pump(
                    killing_readable(AioSource(items)),
                    self._hosted_writable(stage), flow.batch,
                )
        elif spec.role == "filter":
            transducer = self._transducer(stage, switch)
            if config.discipline == "readonly":
                body = AioReadOnlyStage(
                    transducer, self._hosted_readable(stage),
                    lookahead=flow.lookahead, batch_in=flow.batch,
                )
                await self._serve_accepts(
                    stage, readables=body,
                    clients=spec.expected_clients or 1,
                    replay_logs=replay_logs,
                )
            else:
                body = AioWriteOnlyStage(
                    transducer, [self._hosted_writable(stage)]
                )
                await self._serve_accepts(
                    stage, writable=body,
                    clients=spec.expected_clients or 1,
                    push_states=push_states,
                )
        else:  # sink
            if config.discipline == "writeonly":
                collector = AioCollector()
                await self._serve_accepts(
                    stage, writable=killing_writable(collector),
                    clients=spec.expected_clients or 1,
                    push_states=push_states,
                )
                await collector.done.wait()
                stage.collected = list(collector.items)
            else:
                stage.collected = await collect(
                    killing_readable(self._hosted_readable(stage)),
                    batch=flow.batch,
                )

    async def _supervise(self, stage: _HostedStage) -> None:
        """Run a stage to completion, restarting crashed incarnations."""
        config = self.config
        while True:
            stage.state = "running"
            stage.ready.set()
            try:
                await self._run_incarnation(stage)
                stage.state = "done"
                return
            except asyncio.CancelledError:
                stage.state = "cancelled"
                raise
            except (_InjectedKill, Exception) as error:
                stage.ready.clear()
                stage.restarts += 1
                self.stats.bump("stage_crashes")
                kind = ("killed" if isinstance(error, _InjectedKill)
                        else type(error).__name__)
                print(f"[{stage.label}] incarnation died ({kind}): {error}",
                      file=sys.stderr)
                if stage.restarts > config.max_restarts:
                    stage.state = "failed"
                    raise HostError(
                        f"stage {stage.spec.name!r} spent its restart "
                        f"budget ({config.max_restarts}): {error}"
                    ) from (error if isinstance(error, Exception) else None)
                stage.state = "restarting"
                self.stats.bump("stage_restarts")
                await asyncio.sleep(
                    config.restart_backoff * min(stage.restarts, 8)
                )

    # -- whole-host lifecycle ------------------------------------------------

    async def run(self) -> None:
        # Core placement first: every hosted stage's tasks and sockets
        # then wake on this host's core (no-op off Linux / unplanned).
        self.pinned = pin_to_core(self.config.cpu)
        if self.config.cpu is not None:
            self.stats.set_gauge("cpu_core", float(self.config.cpu))
            self.stats.set_gauge("cpu_pinned", 1.0 if self.pinned else 0.0)
        if self.tracer.enabled:
            mono = time.monotonic()
            self.tracer.emit(
                mono, CLOCK_KIND, f"host#{self.config.serial}",
                mono=mono, wall=time.time(),
            )
        await self.client.connect()
        control = None
        if self.config.control_port is not None:
            control = await start_control_server(
                self.control_handlers(), port=self.config.control_port
            )
        try:
            await self._register_all()
            supervisors = [
                asyncio.ensure_future(self._supervise(stage))
                for stage in self.stages
            ]
            try:
                await asyncio.gather(*supervisors)
            except BaseException:
                for task in supervisors:
                    task.cancel()
                await asyncio.gather(*supervisors, return_exceptions=True)
                raise
        finally:
            if control is not None:
                control.close()
                await control.wait_closed()
            await self.client.close()
            if self.flight is not None:
                self.flight.close()
        self.stats.bump(
            "runtime_ms", int((time.monotonic() - self.started_mono) * 1000)
        )

    # -- introspection -------------------------------------------------------

    def control_handlers(self) -> dict[str, Any]:
        def stats_cmd(_body: dict[str, Any]) -> Any:
            POOL.export_gauges(self.stats)
            return snapshot_payload(self.stats)

        def health_cmd(_body: dict[str, Any]) -> Any:
            states: dict[str, int] = {}
            for stage in self.stages:
                states[stage.state] = states.get(stage.state, 0) + 1
            return {
                "label": f"host#{self.config.serial}",
                "role": "host",
                "discipline": self.config.discipline,
                "serial": self.config.serial,
                "uptime_s": time.monotonic() - self.started_mono,
                "hosted": len(self.stages),
                "states": states,
                "channels_open": int(
                    self.stats.gauges().get("mux_channels_open", 0.0)
                ),
                "tracing": self.tracer.enabled,
                "resume": self.config.resume,
                "codec": self.config.codec,
                "cpu": self.config.cpu,
                "pinned": self.pinned,
                "affinity": current_affinity(),
                "flight": (self.flight.describe()
                           if self.flight is not None else None),
            }

        def stages_cmd(body: dict[str, Any]) -> Any:
            limit = max(1, int(body.get("limit", 1000)))
            return [
                {
                    "name": stage.spec.name,
                    "role": stage.spec.role,
                    "serial": stage.serial,
                    "state": stage.state,
                    "restarts": stage.restarts,
                }
                for stage in self.stages[:limit]
            ]

        return {"stats": stats_cmd, "health": health_cmd, "stages": stages_cmd}

    # -- reporting -----------------------------------------------------------

    def emit_output(self) -> None:
        lines: list[str] = []
        for stage in self.stages:
            if stage.collected is None:
                continue
            lines.extend(f"{item}\n" for item in stage.collected)
        if not lines:
            return
        text = "".join(lines)
        if self.config.output_file:
            with open(self.config.output_file, "w", encoding="utf-8") as handle:
                handle.write(text)
        else:
            sys.stdout.write(text)
            sys.stdout.flush()

    def emit_stats(self) -> None:
        if self.config.stats_file:
            POOL.export_gauges(self.stats)
            payload = {
                "role": "host",
                "discipline": self.config.discipline,
                "serial": self.config.serial,
                "hosted": len(self.stages),
                **snapshot_payload(self.stats),
            }
            with open(self.config.stats_file, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
        if self.config.trace_file:
            self.tracer.to_jsonl(self.config.trace_file)


async def run_host(config: HostConfig) -> StageHost:
    """Run every stage of ``config`` to completion; returns the host."""
    host = StageHost(config)
    await host.run()
    return host


# ---------------------------------------------------------------------------
# Command line.
# ---------------------------------------------------------------------------


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="eden-host",
        description="Host many pipeline stages in one process via a broker.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--plan-file", default=None,
                       help="JSON host plan (HostConfig shape)")
    group.add_argument("--plan-json", default=None,
                       help="the same plan, inline")
    parser.add_argument("--stats-file", default=None)
    parser.add_argument("--trace-file", default=None)
    parser.add_argument("--output-file", default=None)
    parser.add_argument("--control-port", type=int, default=None)
    parser.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="record the host's frames to segment files")
    parser.add_argument("--flight-mode", default=None,
                        choices=sorted(FLIGHT_MODES))
    return parser


def config_from_args(argv: Sequence[str] | None = None) -> HostConfig:
    options = _parser().parse_args(argv)
    if options.plan_file is not None:
        with open(options.plan_file, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = json.loads(options.plan_json)
    config = HostConfig.from_dict(data)
    if options.stats_file is not None:
        config.stats_file = options.stats_file
    if options.trace_file is not None:
        config.trace_file = options.trace_file
    if options.output_file is not None:
        config.output_file = options.output_file
    if options.control_port is not None:
        config.control_port = options.control_port
    if options.flight_dir is not None:
        config.flight_dir = options.flight_dir
    if options.flight_mode is not None:
        config.flight_mode = options.flight_mode
    return config


def main(argv: Sequence[str] | None = None) -> int:
    try:
        config = config_from_args(argv)
        host = asyncio.run(run_host(config))
    except KeyboardInterrupt:
        return 130
    except Exception as error:
        print(f"eden-host: {type(error).__name__}: {error}", file=sys.stderr)
        return 1
    host.emit_output()
    host.emit_stats()
    return 0


if __name__ == "__main__":
    sys.exit(main())
