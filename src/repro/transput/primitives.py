"""The four transput primitives (the paper's central idea).

    "there are *four* primitive transput operations, not two: the
    corresponding pairs are passive input and active output, and
    active input and passive output."

Each primitive is a small sub-generator to be driven with ``yield
from`` inside an Eject process.  Every use is recorded on the Eject
(:attr:`TransputEject.primitive_use`) and in the kernel stats, so tests
and benchmarks can *prove* statements like "a read-only pipeline uses
only active input and passive output at Eject interfaces" (paper §8).

Correspondence rules (enforced by construction):

- :func:`active_input` sends a ``Read`` invocation; the far end answers
  with :func:`passive_output` (replying with a Transfer).
- :func:`active_output` sends a ``Write`` invocation carrying a
  Transfer; the far end answers with :func:`passive_input` (accepting
  it and replying with a WriteAck).
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import Any, Generator, TYPE_CHECKING

from repro.core.eject import Eject
from repro.core.message import Invocation
from repro.core.syscalls import Syscall
from repro.transput.stream import END_TRANSFER, StreamEndpoint, Transfer, WriteAck

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID

#: Operation name carried by active-input invocations.
READ_OP = "Read"
#: Synonym used by the Eden prototype's bootstrap transput (paper §7).
TRANSFER_OP = "Transfer"
#: Operation name carried by active-output invocations.
WRITE_OP = "Write"


class Primitive(enum.Enum):
    """The four transput primitives."""

    ACTIVE_INPUT = "active_input"
    PASSIVE_OUTPUT = "passive_output"
    ACTIVE_OUTPUT = "active_output"
    PASSIVE_INPUT = "passive_input"

    @property
    def corresponding(self) -> "Primitive":
        """The primitive this one connects to (paper §3)."""
        return _CORRESPONDENCE[self]

    @property
    def active(self) -> bool:
        """Whether the primitive takes the initiative."""
        return self in (Primitive.ACTIVE_INPUT, Primitive.ACTIVE_OUTPUT)


_CORRESPONDENCE = {
    Primitive.ACTIVE_INPUT: Primitive.PASSIVE_OUTPUT,
    Primitive.PASSIVE_OUTPUT: Primitive.ACTIVE_INPUT,
    Primitive.ACTIVE_OUTPUT: Primitive.PASSIVE_INPUT,
    Primitive.PASSIVE_INPUT: Primitive.ACTIVE_OUTPUT,
}


class TransputEject(Eject):
    """An Eject that participates in stream transput.

    Adds per-primitive usage accounting on top of the plain Eject; all
    sources, sinks, filters, buffers and devices derive from this.
    """

    eden_type = "TransputEject"

    def __init__(self, kernel: "Kernel", uid: "UID", name: str | None = None) -> None:
        super().__init__(kernel, uid, name=name)
        #: How many times this Eject performed each primitive.
        self.primitive_use: Counter[Primitive] = Counter()

    def note_primitive(self, primitive: Primitive) -> None:
        """Record one use of ``primitive`` (Eject-local and kernel-wide)."""
        self.primitive_use[primitive] += 1
        self.kernel.stats.bump(f"prim_{primitive.value}")

    def interface_primitives(self) -> frozenset[Primitive]:
        """The set of primitives this Eject has actually used."""
        return frozenset(p for p, n in self.primitive_use.items() if n > 0)


def active_input(
    eject: TransputEject, endpoint: StreamEndpoint, batch: int = 1
) -> Generator[Syscall, Any, Transfer]:
    """Perform active input: send a ``Read`` and wait for the Transfer.

    Returns the :class:`Transfer` supplied by the correspondent's
    passive output.
    """
    eject.note_primitive(Primitive.ACTIVE_INPUT)
    transfer = yield eject.call(
        endpoint.uid, READ_OP, batch, channel=endpoint.channel
    )
    return transfer


def passive_output(
    eject: TransputEject, invocation: Invocation, transfer: Transfer
) -> Generator[Syscall, Any, None]:
    """Perform passive output: answer a pending ``Read`` with data.

    "The adjective passive indicates that the [responder] is responding
    to an initiative of [the reader]'s" (paper §3).
    """
    eject.note_primitive(Primitive.PASSIVE_OUTPUT)
    yield eject.reply(invocation, transfer)


def active_output(
    eject: TransputEject, endpoint: StreamEndpoint, transfer: Transfer
) -> Generator[Syscall, Any, WriteAck]:
    """Perform active output: send a ``Write`` carrying ``transfer``.

    Blocks until the correspondent's passive input acknowledges —
    acknowledgement delay is the flow-control mechanism.
    """
    eject.note_primitive(Primitive.ACTIVE_OUTPUT)
    ack = yield eject.call(
        endpoint.uid, WRITE_OP, transfer, channel=endpoint.channel
    )
    return ack


def passive_input(
    eject: TransputEject, invocation: Invocation
) -> Generator[Syscall, Any, Transfer]:
    """Perform passive input: accept a delivered ``Write``.

    Replies the acknowledgement immediately and returns the carried
    :class:`Transfer`.  Receivers that must exert backpressure reply
    later instead — see :class:`~repro.transput.buffer.PassiveBuffer`.
    """
    eject.note_primitive(Primitive.PASSIVE_INPUT)
    transfer = invocation.args[0]
    count = len(transfer.items) if isinstance(transfer, Transfer) else 0
    yield eject.reply(invocation, WriteAck(accepted=count))
    return transfer


def read_stream(
    eject: TransputEject, endpoint: StreamEndpoint, batch: int = 1
) -> Generator[Syscall, Any, list]:
    """Drain ``endpoint`` to END via repeated active input.

    Returns the full item list.  (A library routine in the sense of
    paper §6 — a helper that "helps user Ejects obey" the protocol.)
    """
    items: list = []
    while True:
        transfer = yield from active_input(eject, endpoint, batch)
        if transfer.at_end:
            return items
        items.extend(transfer.items)


def write_stream(
    eject: TransputEject,
    endpoint: StreamEndpoint,
    items: list,
    batch: int = 1,
) -> Generator[Syscall, Any, int]:
    """Send every item then END via repeated active output.

    Returns the number of Write invocations performed (including the
    final END write).
    """
    writes = 0
    for start in range(0, len(items), batch):
        chunk = items[start : start + batch]
        yield from active_output(eject, endpoint, Transfer.of(chunk))
        writes += 1
    yield from active_output(eject, endpoint, END_TRANSFER)
    writes += 1
    return writes
