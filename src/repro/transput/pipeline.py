"""Pipeline builders: wiring filters together in each discipline.

"The interconnexion of the elements of the pipeline is easily
accomplished in Eden" (paper §4).  These builders do the
interconnecting for all three disciplines over the *same* transducers,
which is what makes the cost comparisons of experiments T1/T2/T3/T8
meaningful:

- :func:`compose_readonly_pipeline` — Figure 2: source, n filters,
  sink; ``n + 2`` Ejects, no buffers.
- :func:`compose_writeonly_pipeline` — the §5 dual.
- :func:`compose_conventional_pipeline` — Figure 1: both-active
  filters with a passive buffer between every adjacent pair;
  ``2n + 3`` Ejects.

Each builder returns a :class:`Pipeline` handle that runs the
simulation to completion and reports the measured costs.  (The
``build_*`` names remain as deprecated aliases; runtime-independent
callers want :class:`repro.api.Pipeline`.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence, TYPE_CHECKING

from repro.core.node import Node
from repro.core.stats import StatsSnapshot
from repro.transput.buffer import PassiveBuffer
from repro.transput.conventional import ConventionalFilter
from repro.transput.filterbase import ReportingTransducer, Transducer
from repro.transput.flow import FlowPolicy
from repro.transput.readonly import ReadOnlyFilter
from repro.transput.sink import ActiveSink, CollectorSink, PassiveSink
from repro.transput.source import ActiveSource, ListSource, PassiveSource
from repro.transput.stream import StreamEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel

#: The disciplines a pipeline can be built in.
DISCIPLINES = ("readonly", "writeonly", "conventional")


@dataclass
class Pipeline:
    """A built pipeline, ready to run.

    Attributes:
        discipline: one of :data:`DISCIPLINES`.
        source: the producing Eject.
        filters: the filter Ejects, upstream to downstream.
        buffers: passive buffer Ejects (conventional discipline only).
        sinks: the consuming Ejects (usually one).
    """

    kernel: "Kernel"
    discipline: str
    source: Any
    filters: list = field(default_factory=list)
    buffers: list = field(default_factory=list)
    sinks: list = field(default_factory=list)
    completion_stats: StatsSnapshot | None = None
    virtual_makespan: float | None = None

    @property
    def sink(self) -> Any:
        """The (first) sink Eject."""
        return self.sinks[0]

    @property
    def ejects(self) -> list:
        """Every Eject in the pipeline, source first."""
        return [self.source, *self.filters, *self.buffers, *self.sinks]

    def eject_count(self) -> int:
        """Total Ejects — the paper's C1/C2 size metric."""
        return len(self.ejects)

    def buffer_count(self) -> int:
        """Passive buffer Ejects — 0 for read-only, n+1 conventionally."""
        return len(self.buffers)

    def run_to_completion(self, max_steps: int | None = 10_000_000) -> list:
        """Run until every sink is done, then flush to quiescence.

        Returns the primary sink's collected records.  Measured costs
        (invocations, switches, makespan) cover the whole run and are
        available afterwards via :meth:`invocations_used` etc.

        Raises:
            SchedulerDeadlockError: the simulation quiesced with a sink
                still incomplete (e.g. a wiring cycle) — failing loudly
                beats silently returning a truncated stream.
        """
        start = self.kernel.stats.snapshot()
        start_time = self.kernel.clock.now
        self.kernel.run(
            max_steps=max_steps,
            until=lambda: all(sink.done for sink in self.sinks),
        )
        if not all(sink.done for sink in self.sinks):
            from repro.core.errors import SchedulerDeadlockError

            stuck = self.kernel.scheduler.stuck_processes()
            detail = "; ".join(
                f"{p.name} blocked on {p.blocked_on}" for p in stuck
            )
            raise SchedulerDeadlockError(
                "pipeline quiesced before its sink finished"
                + (f" ({detail})" if detail else "")
            )
        self.kernel.run(max_steps=max_steps)  # flush in-flight replies
        self.completion_stats = self.kernel.stats.snapshot().diff(start)
        self.virtual_makespan = self.kernel.clock.now - start_time
        return list(self.sink.collected)

    def _completed(self) -> StatsSnapshot:
        if self.completion_stats is None:
            raise RuntimeError("run_to_completion() has not been called")
        return self.completion_stats

    def invocations_used(self) -> int:
        """Invocation messages sent during the run."""
        return self._completed()["invocations_sent"]

    def context_switches(self) -> int:
        """Process switches during the run."""
        return self._completed()["context_switches"]

    def invocations_per_datum(self, item_count: int) -> float:
        """Average invocations to move one record end-to-end."""
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        return self.invocations_used() / item_count


def _resolve_source(
    kernel: "Kernel",
    source: Any,
    work_cost: float,
    channel_mode: str,
    node: Node | str | None,
) -> tuple[Any, StreamEndpoint]:
    """Accept items / a source Eject / an endpoint; return (eject, endpoint)."""
    if isinstance(source, StreamEndpoint):
        return None, source
    if isinstance(source, PassiveSource):
        return source, source.output_endpoint()
    if isinstance(source, ReadOnlyFilter):
        return source, source.output_endpoint()
    eject = kernel.create(
        ListSource,
        items=list(source),
        work_cost=work_cost,
        channel_mode=channel_mode,
        node=node,
    )
    return eject, eject.output_endpoint()


class _Placer:
    """Assigns nodes to pipeline stages.

    ``placement`` may be ``None`` (everything on the default node),
    ``"spread"`` (stage i on its own node ``pipe-i``), or an explicit
    sequence of node names cycled over the stages.
    """

    def __init__(self, kernel: "Kernel", placement: Any) -> None:
        self._kernel = kernel
        self._placement = placement
        self._index = 0

    def next(self) -> Node | str | None:
        if self._placement is None:
            return None
        if self._placement == "spread":
            node = f"pipe-{self._index}"
        else:
            names = list(self._placement)
            node = names[self._index % len(names)]
        self._index += 1
        return node


def compose_readonly_pipeline(
    kernel: "Kernel",
    source: Any,
    transducers: Sequence[Transducer | ReportingTransducer],
    sink_cls: type[ActiveSink] = CollectorSink,
    flow: FlowPolicy | None = None,
    channel_mode: str = "open",
    placement: Any = None,
    source_work_cost: float = 0.0,
    sink_work_cost: float = 0.0,
) -> Pipeline:
    """Figure 2: the read-only pipeline — no buffers, n + 2 Ejects.

    ``source`` may be a list of records, an existing passive source /
    read-only filter, or a raw :class:`StreamEndpoint`.
    """
    flow = flow or FlowPolicy()
    placer = _Placer(kernel, placement)
    source_eject, upstream = _resolve_source(
        kernel, source, source_work_cost, channel_mode, placer.next()
    )
    filters: list[ReadOnlyFilter] = []
    for transducer in transducers:
        stage = kernel.create(
            ReadOnlyFilter,
            transducer=transducer,
            inputs=[upstream],
            lookahead=flow.lookahead,
            batch_in=flow.batch,
            channel_mode=channel_mode,
            node=placer.next(),
        )
        filters.append(stage)
        upstream = stage.output_endpoint()
    sink = kernel.create(
        sink_cls,
        inputs=[upstream],
        batch=flow.batch,
        work_cost=sink_work_cost,
        node=placer.next(),
    )
    return Pipeline(
        kernel=kernel,
        discipline="readonly",
        source=source_eject,
        filters=filters,
        sinks=[sink],
    )


def compose_writeonly_pipeline(
    kernel: "Kernel",
    items: Iterable[Any],
    transducers: Sequence[Transducer | ReportingTransducer],
    sink_cls: type[PassiveSink] = PassiveSink,
    flow: FlowPolicy | None = None,
    placement: Any = None,
    source_work_cost: float = 0.0,
    sink_work_cost: float = 0.0,
) -> Pipeline:
    """The §5 dual: active source pushes, filters push, passive sink.

    Built sink-first because each stage must know its output endpoint
    at initialisation (the dual of the read-only scheme, where each
    stage must know its *input*).
    """
    from repro.transput.writeonly import WriteOnlyFilter

    flow = flow or FlowPolicy()
    placer = _Placer(kernel, placement)
    source_node = placer.next()
    filter_nodes = [placer.next() for _ in transducers]
    sink = kernel.create(
        sink_cls, work_cost=sink_work_cost, node=placer.next()
    )
    downstream = StreamEndpoint(sink.uid, None)
    filters: list[WriteOnlyFilter] = []
    for transducer, node in zip(reversed(list(transducers)), reversed(filter_nodes)):
        stage = kernel.create(
            WriteOnlyFilter,
            transducer=transducer,
            outputs=[downstream],
            inbox_capacity=flow.inbox_capacity,
            batch_out=flow.batch,
            node=node,
        )
        filters.append(stage)
        downstream = StreamEndpoint(stage.uid, None)
    filters.reverse()
    source = kernel.create(
        ActiveSource,
        items=list(items),
        outputs=[downstream],
        batch=flow.batch,
        work_cost=source_work_cost,
        node=source_node,
    )
    return Pipeline(
        kernel=kernel,
        discipline="writeonly",
        source=source,
        filters=filters,
        sinks=[sink],
    )


def compose_conventional_pipeline(
    kernel: "Kernel",
    items: Iterable[Any],
    transducers: Sequence[Transducer | ReportingTransducer],
    sink_cls: type[ActiveSink] = CollectorSink,
    flow: FlowPolicy | None = None,
    placement: Any = None,
    source_work_cost: float = 0.0,
    sink_work_cost: float = 0.0,
) -> Pipeline:
    """Figure 1: both-active filters with a pipe between every pair.

    n filters need n + 1 passive buffers (one after the source, one
    between each pair, one before the sink): 2n + 3 Ejects total and
    2n + 2 invocations per datum — the paper's baseline.
    """
    flow = flow or FlowPolicy()
    placer = _Placer(kernel, placement)
    transducers = list(transducers)
    source_node = placer.next()
    filter_nodes = [placer.next() for _ in transducers]
    sink_node = placer.next()

    buffers = [
        kernel.create(
            PassiveBuffer,
            capacity=flow.buffer_capacity,
            name=f"pipe-{index}",
            # Pipes live with their downstream consumer, as Unix pipes
            # live in the kernel of the reading process's machine.
            node=filter_nodes[index] if index < len(transducers) else sink_node,
        )
        for index in range(len(transducers) + 1)
    ]
    filters = [
        kernel.create(
            ConventionalFilter,
            transducer=transducer,
            inputs=[StreamEndpoint(buffers[index].uid, None)],
            outputs=[StreamEndpoint(buffers[index + 1].uid, None)],
            batch=flow.batch,
            node=filter_nodes[index],
        )
        for index, transducer in enumerate(transducers)
    ]
    source = kernel.create(
        ActiveSource,
        items=list(items),
        outputs=[StreamEndpoint(buffers[0].uid, None)],
        batch=flow.batch,
        work_cost=source_work_cost,
        node=source_node,
    )
    sink = kernel.create(
        sink_cls,
        inputs=[StreamEndpoint(buffers[-1].uid, None)],
        batch=flow.batch,
        work_cost=sink_work_cost,
        node=sink_node,
    )
    return Pipeline(
        kernel=kernel,
        discipline="conventional",
        source=source,
        filters=filters,
        buffers=buffers,
        sinks=[sink],
    )


def compose_segment(
    kernel: "Kernel",
    discipline: str,
    items: Iterable[Any],
    transducers: Sequence[Transducer | ReportingTransducer],
    flow: FlowPolicy | None = None,
    placement: Any = None,
    source_work_cost: float = 0.0,
    sink_work_cost: float = 0.0,
) -> Pipeline:
    """Build one linear segment in any discipline (by name).

    This is the simulator building block :mod:`repro.api` composes
    graphs from — one call per linear segment of the DAG.  Front-door
    callers want :class:`repro.api.Pipeline` or
    :class:`repro.api.GraphBuilder`.
    """
    if discipline == "readonly":
        return compose_readonly_pipeline(
            kernel, list(items), transducers, flow=flow, placement=placement,
            source_work_cost=source_work_cost, sink_work_cost=sink_work_cost,
        )
    if discipline == "writeonly":
        return compose_writeonly_pipeline(
            kernel, items, transducers, flow=flow, placement=placement,
            source_work_cost=source_work_cost, sink_work_cost=sink_work_cost,
        )
    if discipline == "conventional":
        return compose_conventional_pipeline(
            kernel, items, transducers, flow=flow, placement=placement,
            source_work_cost=source_work_cost, sink_work_cost=sink_work_cost,
        )
    raise ValueError(f"discipline must be one of {DISCIPLINES}, got {discipline!r}")


# ---------------------------------------------------------------------------
# Deprecated aliases (pre-facade and pre-graph names).  New code should
# use compose_segment / the discipline-specific compose_* builders, or
# repro.api.Pipeline / repro.api.GraphBuilder for cross-runtime work.
# ---------------------------------------------------------------------------


def compose_pipeline(*args: Any, **kwargs: Any) -> Pipeline:
    """Deprecated front door: use :class:`repro.api.Pipeline` (or, for
    one raw simulator segment, :func:`compose_segment`)."""
    from repro.compat import warn_deprecated

    warn_deprecated(
        "repro.transput.compose_pipeline",
        "repro.api.Pipeline(...).run(runtime='sim') — or "
        "repro.transput.compose_segment for one raw simulator segment",
    )
    return compose_segment(*args, **kwargs)


def build_readonly_pipeline(*args: Any, **kwargs: Any) -> Pipeline:
    """Deprecated alias of :func:`compose_readonly_pipeline`."""
    from repro.compat import warn_deprecated

    warn_deprecated("repro.transput.build_readonly_pipeline",
                    "repro.transput.compose_readonly_pipeline")
    return compose_readonly_pipeline(*args, **kwargs)


def build_writeonly_pipeline(*args: Any, **kwargs: Any) -> Pipeline:
    """Deprecated alias of :func:`compose_writeonly_pipeline`."""
    from repro.compat import warn_deprecated

    warn_deprecated("repro.transput.build_writeonly_pipeline",
                    "repro.transput.compose_writeonly_pipeline")
    return compose_writeonly_pipeline(*args, **kwargs)


def build_conventional_pipeline(*args: Any, **kwargs: Any) -> Pipeline:
    """Deprecated alias of :func:`compose_conventional_pipeline`."""
    from repro.compat import warn_deprecated

    warn_deprecated("repro.transput.build_conventional_pipeline",
                    "repro.transput.compose_conventional_pipeline")
    return compose_conventional_pipeline(*args, **kwargs)


def build_pipeline(*args: Any, **kwargs: Any) -> Pipeline:
    """Deprecated alias of :func:`compose_segment`."""
    from repro.compat import warn_deprecated

    warn_deprecated("repro.transput.build_pipeline",
                    "repro.transput.compose_segment")
    return compose_segment(*args, **kwargs)
