"""Channel identifiers for multi-output read-only transput (paper §5).

A filter with several output streams associates a *channel identifier*
with each; every Read invocation is qualified by one.  Three kinds of
identifier are supported, matching the paper's discussion:

- **names** (strings) — the documented identifiers ("channels Report
  and Output");
- **integers** — positional identifiers, "the integer channel
  identifiers" the Eden prototype used (§7); channel ``i`` is the
  i-th advertised channel;
- **capabilities** — unforgeable identifiers minted by the owning
  Eject, closing the hole where "if E is told to read from F's
  channel 1, nothing prevents it from reading from F's channel 2 as
  well".

:class:`ChannelTable` implements resolution and the two security modes:
``"open"`` accepts all three kinds; ``"capability"`` accepts only
capabilities.
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

from repro.core.capability import ChannelCapability, ChannelId
from repro.core.errors import ChannelSecurityError, NoSuchChannelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eject import Eject

#: Accepted security modes.
MODES = ("open", "capability")


class ChannelTable:
    """Resolves presented channel identifiers for one owning Eject.

    Args:
        owner: the Eject whose output channels these are.
        names: advertised channel names, in positional (integer-id)
            order; the first is the default channel for unqualified
            Reads.
        mode: ``"open"`` or ``"capability"``.
    """

    def __init__(
        self, owner: "Eject", names: Sequence[str], mode: str = "open"
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"channel mode must be one of {MODES}, got {mode!r}")
        if not names:
            raise ValueError("a channel table needs at least one channel")
        self._owner = owner
        self._names = list(dict.fromkeys(names))  # dedupe, keep order
        self.mode = mode

    @property
    def names(self) -> list[str]:
        """Advertised channel names in positional order."""
        return list(self._names)

    @property
    def default(self) -> str:
        """The channel used when a Read carries no qualifier."""
        return self._names[0]

    def capability(self, name: str) -> ChannelCapability:
        """The unforgeable identifier for channel ``name``.

        Whoever sets up a pipeline "must ask each filter for the UIDs
        of its channels, and then pass them on" (§5); this is that ask,
        performed host-side during wiring.
        """
        if name not in self._names:
            raise NoSuchChannelError(name, self._owner.name)
        return self._owner.mint_channel(name)

    def advertise(self) -> dict[str, ChannelId]:
        """Identifier map handed to connecting Ejects.

        In capability mode the values are capabilities; in open mode
        they are the plain names.
        """
        if self.mode == "capability":
            return {name: self.capability(name) for name in self._names}
        return {name: name for name in self._names}

    def resolve(self, presented: ChannelId | None) -> str:
        """Map a presented identifier to a canonical channel name.

        Raises:
            ChannelSecurityError: capability mode rejected a
                non-capability identifier, or a capability failed the
                mint check (a forgery).
            NoSuchChannelError: the identifier names no channel.
        """
        if presented is None:
            if self.mode == "capability":
                raise ChannelSecurityError(
                    f"{self._owner.name} requires a channel capability"
                )
            return self.default
        if isinstance(presented, ChannelCapability):
            resolved = self._owner.channels.validate(presented)
            if resolved is None or resolved not in self._names:
                raise ChannelSecurityError(
                    f"capability {presented} was not minted by {self._owner.name}"
                )
            return resolved
        if self.mode == "capability":
            raise ChannelSecurityError(
                f"{self._owner.name} accepts only channel capabilities, "
                f"got {presented!r}"
            )
        if isinstance(presented, int):
            if 0 <= presented < len(self._names):
                return self._names[presented]
            raise NoSuchChannelError(presented, self._owner.name)
        if presented in self._names:
            return presented
        raise NoSuchChannelError(presented, self._owner.name)
