"""The "standard IO module" (paper §4 and §5).

The paper observes that a filter author need not program against Read
invocations directly:

    "It is possible to adopt a more conventional style of programming
    by adding an extra process to the filter.  The standard IO module
    obtained from a library would implement the usual Write operations
    that put characters into a buffer.  However, that buffer would be
    shared with a process that receives invocations which request data
    and services them."

:class:`OutputPort` is that module for the read-only discipline: the
filter's own process calls ``write()`` / ``close()`` (conventional
style, intra-Eject, costing no invocations), while the port's *server
process* answers external Read invocations from the shared buffer.

:class:`InputPort` is the §5 dual for the write-only discipline: "a
conventional Read routine could be implemented by extracting data from
an internal buffer; another process would respond to incoming Write
invocations and use the data thus obtained to fill the same buffer."

See :class:`ConventionalStyleFilter` for the two combined: an Eject
whose author writes an ordinary read/transform/write loop, yet whose
external interface is pure read-only transput.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Iterable, TYPE_CHECKING

from repro.core.errors import StreamProtocolError
from repro.core.syscalls import (
    NotifySignal,
    Receive,
    Signal,
    Syscall,
    WaitSignal,
)
from repro.transput.primitives import (
    Primitive,
    READ_OP,
    TRANSFER_OP,
    TransputEject,
    WRITE_OP,
)
from repro.transput.stream import (
    END_TRANSFER,
    StreamEndpoint,
    Transfer,
    WriteAck,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID

#: Sentinel returned by :meth:`InputPort.read` at end of stream.
END_OF_INPUT = object()


class OutputPort:
    """Conventional ``write()`` calls backed by a Read-serving process.

    Use inside a :class:`TransputEject`: call :meth:`server_body` once
    from ``process_bodies`` and drive :meth:`write` / :meth:`close`
    (with ``yield from``) from the filter's own process.

    Args:
        owner: the hosting Eject.
        capacity: bound on buffered-but-unread records; ``write`` blocks
            (intra-Eject, via signals — *not* invocations) when full.
    """

    def __init__(self, owner: TransputEject, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.owner = owner
        self.capacity = capacity
        self.buffer: deque[Any] = deque()
        self.closed = False
        self._data = Signal(f"{owner.name}.outport.data")
        self._space = Signal(f"{owner.name}.outport.space")

    def write(self, item: Any) -> Generator[Syscall, Any, None]:
        """Append one record ("the usual Write operation")."""
        if self.closed:
            raise StreamProtocolError("write() after close()")
        while self.capacity is not None and len(self.buffer) >= self.capacity:
            yield WaitSignal(self._space)
        self.buffer.append(item)
        yield NotifySignal(self._data)

    def write_all(self, items: Iterable[Any]) -> Generator[Syscall, Any, None]:
        """Append several records."""
        for item in items:
            yield from self.write(item)

    def close(self) -> Generator[Syscall, Any, None]:
        """Mark end of stream; subsequent Reads eventually see END."""
        self.closed = True
        yield NotifySignal(self._data)

    def server_body(self) -> Generator[Syscall, Any, None]:
        """The process that services external Read invocations."""
        owner = self.owner
        while True:
            invocation = yield Receive(operations={READ_OP, TRANSFER_OP})
            while not self.buffer and not self.closed:
                yield WaitSignal(self._data)
            batch = invocation.args[0] if invocation.args else 1
            batch = max(1, int(batch))
            if self.buffer:
                taken = [
                    self.buffer.popleft()
                    for _ in range(min(batch, len(self.buffer)))
                ]
                transfer = Transfer.of(taken)
            else:
                transfer = END_TRANSFER
            owner.note_primitive(Primitive.PASSIVE_OUTPUT)
            yield owner.reply(invocation, transfer)
            yield NotifySignal(self._space)


class InputPort:
    """Conventional ``read()`` calls backed by a Write-accepting process.

    The dual helper (paper §5): the server process responds to incoming
    Write invocations and fills the shared buffer; the filter's own
    process extracts records with :meth:`read`.
    """

    def __init__(
        self,
        owner: TransputEject,
        capacity: int | None = None,
        expected_ends: int = 1,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.owner = owner
        self.capacity = capacity
        self.expected_ends = max(1, int(expected_ends))
        self.buffer: deque[Any] = deque()
        self.ends_seen = 0
        self.ended = False
        self._data = Signal(f"{owner.name}.inport.data")
        self._space = Signal(f"{owner.name}.inport.space")

    def read(self) -> Generator[Syscall, Any, Any]:
        """Take one record, or :data:`END_OF_INPUT` once the stream ends."""
        while not self.buffer and not self.ended:
            yield WaitSignal(self._data)
        if self.buffer:
            item = self.buffer.popleft()
            yield NotifySignal(self._space)
            return item
        return END_OF_INPUT

    def read_all(self) -> Generator[Syscall, Any, list]:
        """Drain to end of stream; returns the record list."""
        items: list[Any] = []
        while True:
            item = yield from self.read()
            if item is END_OF_INPUT:
                return items
            items.append(item)

    def server_body(self) -> Generator[Syscall, Any, None]:
        """The process that services external Write invocations."""
        owner = self.owner
        while True:
            invocation = yield Receive(operations={WRITE_OP})
            transfer = invocation.args[0]
            if not isinstance(transfer, Transfer):
                yield owner.reply(
                    invocation,
                    error=StreamProtocolError("Write payload must be a Transfer"),
                )
                continue
            if transfer.at_end:
                self.ends_seen += 1
                if self.ends_seen >= self.expected_ends:
                    self.ended = True
                owner.note_primitive(Primitive.PASSIVE_INPUT)
                yield owner.reply(invocation, WriteAck(accepted=0))
                yield NotifySignal(self._data)
                continue
            while (
                self.capacity is not None
                and len(self.buffer) + len(transfer.items) > self.capacity
                and self.buffer
            ):
                yield WaitSignal(self._space)
            self.buffer.extend(transfer.items)
            owner.note_primitive(Primitive.PASSIVE_INPUT)
            yield owner.reply(invocation, WriteAck(accepted=len(transfer.items)))
            yield NotifySignal(self._data)


class ConventionalStyleFilter(TransputEject):
    """A read-only filter written in the conventional style.

    The author supplies ``body(filter)``: an ordinary-looking generator
    that calls ``yield from self.read_input()`` and ``yield from
    self.stdout.write(...)`` — exactly the programming model the paper
    promises the standard IO module restores.  Externally the Eject
    still performs only active input and passive output.
    """

    eden_type = "ConventionalStyleFilter"
    #: Operations the IO server process answers (for behaviour specs).
    answers_operations = ("Read", "Transfer")

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        body: Callable[["ConventionalStyleFilter"], Generator] | None = None,
        input: StreamEndpoint | None = None,
        name: str | None = None,
        buffer_capacity: int | None = None,
    ) -> None:
        super().__init__(kernel, uid, name=name)
        self._body = body
        self.input = input
        self.stdout = OutputPort(self, capacity=buffer_capacity)
        self._pending: deque[Any] = deque()
        self._input_ended = False

    def read_input(self) -> Generator[Syscall, Any, Any]:
        """Read one record from the connected input (active input)."""
        from repro.transput.primitives import active_input

        if self._pending:
            return self._pending.popleft()
        if self._input_ended or self.input is None:
            return END_OF_INPUT
        transfer = yield from active_input(self, self.input)
        if transfer.at_end:
            self._input_ended = True
            return END_OF_INPUT
        self._pending.extend(transfer.items)
        return self._pending.popleft()

    def _filter_body(self):
        if self._body is not None:
            yield from self._body(self)
        yield from self.stdout.close()

    def process_bodies(self):
        return [
            ("filter", self._filter_body()),
            ("ioserver", self.stdout.server_body()),
        ]
