"""The Sequence protocol: what moves on an Eden stream.

Paper §6: "The Eden transput package is nothing more than ... a protocol
designed to support the abstraction of a Sequence, together with a
collection of library routines which help user Ejects to obey it."

A stream is a homogeneous sequence of records (not necessarily bytes —
§6 again).  One protocol interaction moves a :class:`Transfer`: a batch
of records plus a status.  ``END`` signals end-of-stream; after END no
further data may follow (tests enforce this with
:class:`~repro.core.errors.StreamProtocolError`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.capability import ChannelId
from repro.core.errors import StreamProtocolError
from repro.core.uid import UID


class StreamStatus(enum.Enum):
    """Status of one Transfer."""

    DATA = "data"
    END = "end"


@dataclass(frozen=True)
class Transfer:
    """One protocol interaction's worth of stream content.

    A ``DATA`` transfer carries one or more records; an ``END`` transfer
    carries none and terminates the stream.  (A Read may also return an
    empty DATA transfer if the responder chooses, but the standard
    library routines never produce one.)
    """

    status: StreamStatus
    items: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if self.status is StreamStatus.END and self.items:
            raise StreamProtocolError("END transfer must not carry items")

    @property
    def at_end(self) -> bool:
        """Whether this transfer terminates the stream."""
        return self.status is StreamStatus.END

    @staticmethod
    def of(items: Iterable[Any]) -> "Transfer":
        """A DATA transfer of ``items`` (which must be non-empty)."""
        batch = tuple(items)
        if not batch:
            raise StreamProtocolError("DATA transfer must carry items")
        return Transfer(status=StreamStatus.DATA, items=batch)

    @staticmethod
    def single(item: Any) -> "Transfer":
        """A DATA transfer of exactly one record."""
        return Transfer(status=StreamStatus.DATA, items=(item,))


#: The canonical end-of-stream transfer.
END_TRANSFER = Transfer(status=StreamStatus.END)


@dataclass(frozen=True)
class WriteAck:
    """Acknowledgement payload for a Write (the reply to passive input).

    ``accepted`` counts records taken; flow-controlled receivers may
    delay the reply (not refuse records), so ``accepted`` always equals
    the records sent once the reply arrives.
    """

    accepted: int = 0


@dataclass(frozen=True)
class StreamEndpoint:
    """Where a stream is read from or written to.

    An endpoint is a UID plus an optional channel qualifier — exactly
    the information the paper says a consumer needs: "the sinks must be
    told not only F's UID but also the channel identifier that should
    be used on each request" (§5).
    """

    uid: UID
    channel: ChannelId | None = None

    def __str__(self) -> str:
        if self.channel is None:
            return str(self.uid)
        return f"{self.uid}[{self.channel}]"


class StreamAssembler:
    """Host-side helper assembling transfers back into an item list.

    Guards the protocol invariant that nothing follows END.
    """

    def __init__(self) -> None:
        self.items: list[Any] = []
        self.ended = False
        self.transfers = 0

    def accept(self, transfer: Transfer) -> bool:
        """Fold one transfer in; returns True when the stream has ended."""
        if self.ended:
            raise StreamProtocolError("transfer received after END")
        self.transfers += 1
        if transfer.at_end:
            self.ended = True
        else:
            self.items.extend(transfer.items)
        return self.ended
