"""The write-only transput discipline (paper §5).

The exact dual of read-only: a :class:`WriteOnlyFilter` performs
**passive input** (it accepts Write invocations from whoever feeds it —
"would not in general be concerned with the origin of the data it
processed") and **active output** (it Writes its results to the
endpoints it was told about at initialisation).

Duality consequences reproduced here:

- **Fan-out** is natural: any number of output endpoints per channel
  ("can direct output to as many sinks as is convenient").
- **Fan-in** is not: a filter has one logical primary input; several
  writers are indistinguishable ("F cannot distinguish this from one
  Eject making the same total number of Read invocations" — dually for
  writes).  ``expected_ends`` only counts stream terminations; it
  cannot separate interleaved streams.
- **Secondary inputs** (§5): "a number of secondary inputs, which are
  actively read.  These secondary inputs will typically be passive
  buffers" — named endpoints drained with active Reads before the
  primary stream is processed (e.g. a stream editor's command input).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Mapping, Sequence, TYPE_CHECKING

from repro.core.errors import StreamProtocolError
from repro.core.message import Invocation
from repro.core.syscalls import (
    AdoptSpan,
    NotifySignal,
    Receive,
    Signal,
    Sleep,
    WaitSignal,
)
from repro.transput.batching import OutputBatcher
from repro.transput.filterbase import (
    OUTPUT,
    ReportingTransducer,
    Transducer,
    as_reporting,
)
from repro.transput.primitives import (
    Primitive,
    TransputEject,
    WRITE_OP,
    read_stream,
)
from repro.transput.stream import (
    StreamEndpoint,
    Transfer,
    WriteAck,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID

#: Marker queued internally when the primary input ends.
_END = object()


class WriteOnlyFilter(TransputEject):
    """A filter in the write-only discipline.

    Args:
        transducer: the transformation (single- or multi-output).
        outputs: channel name -> downstream endpoints (every channel
            record is written to *each* of its endpoints — fan-out).
            A plain sequence of endpoints is shorthand for
            ``{"Output": endpoints}``.
        secondary_inputs: name -> endpoint actively read (fully, in
            declaration order) before primary processing starts; the
            collected records are handed to the transducer via its
            ``accept_secondary(name, items)`` method if it has one.
        inbox_capacity: bound on queued unprocessed records; writers
            are acknowledged only when their records fit (backpressure).
        expected_ends: END transfers required to close the primary
            input (several upstream writers may feed this filter).
    """

    eden_type = "WriteOnlyFilter"
    #: Operations the receiver process answers (for behaviour specs).
    answers_operations = ("Write",)

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        transducer: Transducer | ReportingTransducer | None = None,
        outputs: Mapping[str, Sequence[StreamEndpoint]] | Sequence[StreamEndpoint] = (),
        name: str | None = None,
        secondary_inputs: Mapping[str, StreamEndpoint] | None = None,
        inbox_capacity: int | None = None,
        expected_ends: int = 1,
        batch_out: int = 1,
    ) -> None:
        super().__init__(kernel, uid, name=name)
        self.transducer = as_reporting(
            transducer if transducer is not None else _identity()
        )
        self.outputs = _normalize_outputs(outputs)
        self.secondary_inputs = dict(secondary_inputs or {})
        self.inbox_capacity = inbox_capacity
        self.expected_ends = max(1, int(expected_ends))
        self.batch_out = max(1, int(batch_out))
        self._inbox: deque[Any] = deque()
        # Causal origin (span) of each queued record, kept in step with
        # ``_inbox``: the worker adopts it before writing downstream so
        # the datum's trace survives the receiver->worker handoff.
        self._inbox_origins: deque[Any] = deque()
        self._parked_writes: deque[Invocation] = deque()
        self._ends_seen = 0
        self.done = False
        self.writes_accepted = 0
        self._batcher: OutputBatcher | None = None
        self._work = Signal(f"{self.name}.work")
        self._space = Signal(f"{self.name}.space")

    @property
    def writes_issued(self) -> int:
        """Write invocations this filter has performed so far."""
        return self._batcher.writes_issued if self._batcher else 0

    def connect_output(
        self, endpoint: StreamEndpoint, channel: str = OUTPUT
    ) -> None:
        """Add a downstream endpoint for ``channel`` (fan-out)."""
        self.outputs.setdefault(channel, []).append(endpoint)

    # ------------------------------------------------------------------
    # Processes: a receiver (passive input) and a worker (active output)
    # ------------------------------------------------------------------

    def process_bodies(self):
        return [("receiver", self._receiver()), ("worker", self._worker())]

    def _fits(self, count: int) -> bool:
        if self.inbox_capacity is None:
            return True
        if not self._inbox:
            return True
        return len(self._inbox) + count <= self.inbox_capacity

    def _receiver(self):
        while True:
            invocation = yield Receive(operations={WRITE_OP})
            transfer = invocation.args[0]
            if not isinstance(transfer, Transfer):
                yield self.reply(
                    invocation,
                    error=StreamProtocolError("Write payload must be a Transfer"),
                )
                continue
            if transfer.at_end:
                self._ends_seen += 1
                self.note_primitive(Primitive.PASSIVE_INPUT)
                self.writes_accepted += 1
                yield self.reply(invocation, WriteAck(accepted=0))
                if self._ends_seen >= self.expected_ends:
                    self._inbox.append(_END)
                    self._inbox_origins.append(invocation.span)
                    yield NotifySignal(self._work)
                continue
            while not self._fits(len(transfer.items)):
                yield WaitSignal(self._space)
            self._inbox.extend(transfer.items)
            self._inbox_origins.extend([invocation.span] * len(transfer.items))
            self.note_primitive(Primitive.PASSIVE_INPUT)
            self.writes_accepted += 1
            yield self.reply(invocation, WriteAck(accepted=len(transfer.items)))
            yield NotifySignal(self._work)

    def _worker(self):
        # Build the batcher lazily so outputs connected after creation
        # (but before the simulation runs) are included.
        self._batcher = OutputBatcher(self, self.outputs, batch=self.batch_out)
        yield from self._read_secondary_inputs()
        yield from self._batcher.emit(self.transducer.start())
        cost = self.transducer.cost_per_item
        while True:
            while not self._inbox:
                yield WaitSignal(self._work)
            item = self._inbox.popleft()
            origin = self._inbox_origins.popleft() if self._inbox_origins else None
            if origin is not None:
                yield AdoptSpan(origin)
            yield NotifySignal(self._space)
            if item is _END:
                break
            if cost:
                yield Sleep(cost)
            yield from self._batcher.emit(self.transducer.step(item))
        yield from self._batcher.emit(self.transducer.finish())
        yield from self._batcher.finish()
        self.done = True

    def _read_secondary_inputs(self):
        """Drain each secondary input fully with active Reads (§5)."""
        accept = getattr(self.transducer, "accept_secondary", None)
        for input_name, endpoint in self.secondary_inputs.items():
            items = yield from read_stream(self, endpoint)
            if accept is not None:
                accept(input_name, items)



def _normalize_outputs(
    outputs: Mapping[str, Sequence[StreamEndpoint]] | Sequence[StreamEndpoint],
) -> dict[str, list[StreamEndpoint]]:
    if isinstance(outputs, Mapping):
        return {channel: list(eps) for channel, eps in outputs.items()}
    return {OUTPUT: list(outputs)}


def _identity() -> Transducer:
    from repro.transput.filterbase import identity_transducer

    return identity_transducer()
