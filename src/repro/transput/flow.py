"""Flow-control policy for pipelines (paper §4's laziness discussion).

"Laziness, however, is not desirable in a system which permits parallel
execution.  Instead, one would prefer that each Eject does a certain
amount of computation in advance ... In this way all the Ejects in a
pipeline can run concurrently."

A :class:`FlowPolicy` bundles the knobs that govern how eagerly data
moves: per-filter lookahead (anticipatory buffering), the Read batch
size, and the passive-buffer capacity used in the conventional
discipline.  Experiment T4 sweeps the lookahead and shows the
serialization → pipeline-parallel transition the paper predicts.

Two additions serve the TCP data plane: ``pipeline_depth`` lets an
active reader keep several READ requests in flight (overlapping the
round trip that otherwise stalls every batch), and ``adaptive`` turns
on the :class:`FlowAutotuner` — an AIMD loop that grows the batch size
and credit window while latency holds and backs off multiplicatively
when the round-trip time inflates (classic congestion-window probing,
applied to record flow instead of TCP segments).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class FlowPolicy:
    """How eagerly a pipeline moves data.

    Attributes:
        lookahead: records each read-only filter computes in advance
            (0 = pure lazy / demand-driven).
        batch: records per Read/Write invocation (1 matches the paper's
            one-invocation-per-datum accounting).
        buffer_capacity: capacity of conventional-discipline pipes.
        inbox_capacity: write-only filters' input queue bound
            (``None`` = unbounded).
        credit_window: explicit record credit a passive input grants a
            remote pusher (``None`` = derive it; see
            :meth:`effective_credit_window`).  This is the harmonised
            name every layer uses — :class:`repro.api.Pipeline`,
            ``eden-stage --credit-window``, and this policy all mean
            the same number by it.
        pipeline_depth: READ requests an active reader keeps in flight
            over TCP (``None`` = derive; see
            :meth:`effective_pipeline_depth`).  1 is the paper's
            strict request/response alternation; deeper overlaps the
            round trip without changing pull semantics.
        adaptive: autotune ``batch`` and ``credit_window`` at runtime
            from observed RTT (the static values become the floor the
            tuner starts from).
    """

    lookahead: int = 0
    batch: int = 1
    buffer_capacity: int | None = 64
    inbox_capacity: int | None = None
    credit_window: int | None = None
    pipeline_depth: int | None = None
    adaptive: bool = False

    #: Pure demand-driven flow: nothing moves until the sink asks.
    @staticmethod
    def lazy() -> "FlowPolicy":
        """Demand-driven: no anticipatory work anywhere."""
        return FlowPolicy(lookahead=0)

    @staticmethod
    def eager(lookahead: int = 8) -> "FlowPolicy":
        """Anticipatory: each filter keeps ``lookahead`` records ready."""
        return FlowPolicy(lookahead=lookahead)

    def with_batch(self, batch: int) -> "FlowPolicy":
        """The same policy moving ``batch`` records per invocation."""
        return replace(self, batch=batch)

    def with_credit_window(self, credit_window: int | None) -> "FlowPolicy":
        """The same policy with an explicit push credit window."""
        return replace(self, credit_window=credit_window)

    def effective_credit_window(self) -> int:
        """Initial record credit a passive input grants a remote pusher.

        This is how the policy maps onto the TCP runtime
        (:mod:`repro.net`): an explicit ``credit_window`` wins; a
        bounded inbox bounds the in-flight records directly; otherwise
        the lookahead knob plays the same anticipatory role it plays
        for read-only prefetch; a fully lazy policy degenerates to a
        window of 1 — one record in flight, the synchronous push.
        """
        if self.credit_window is not None:
            return self.credit_window
        if self.inbox_capacity is not None:
            return self.inbox_capacity
        if self.lookahead > 0:
            return self.lookahead
        return 1

    def effective_pipeline_depth(self) -> int:
        """READ requests an active reader keeps in flight over TCP.

        Explicit ``pipeline_depth`` wins; otherwise the lookahead knob
        plays its anticipatory role here too (capped at the credit
        window's scale); fully lazy degenerates to 1 — the strict
        READ→DATA alternation whose invocation counts match the paper.
        """
        if self.pipeline_depth is not None:
            return self.pipeline_depth
        if self.lookahead > 0:
            return self.lookahead
        return 1

    def with_pipeline_depth(self, pipeline_depth: int | None) -> "FlowPolicy":
        """The same policy keeping ``pipeline_depth`` READs in flight."""
        return replace(self, pipeline_depth=pipeline_depth)

    def describe(self) -> dict[str, object]:
        """JSON-safe summary for introspection (HEALTH, ``eden-top``)."""
        return {
            "lookahead": self.lookahead,
            "batch": self.batch,
            "buffer_capacity": self.buffer_capacity,
            "inbox_capacity": self.inbox_capacity,
            "credit_window": self.effective_credit_window(),
            "pipeline_depth": self.effective_pipeline_depth(),
            "adaptive": self.adaptive,
        }

    def __post_init__(self) -> None:
        if self.lookahead < 0:
            raise ValueError(f"lookahead must be >= 0, got {self.lookahead}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.buffer_capacity is not None and self.buffer_capacity < 1:
            raise ValueError(
                f"buffer_capacity must be >= 1 or None, got {self.buffer_capacity}"
            )
        if self.inbox_capacity is not None and self.inbox_capacity < 1:
            raise ValueError(
                f"inbox_capacity must be >= 1 or None, got {self.inbox_capacity}"
            )
        if self.credit_window is not None and (
            not isinstance(self.credit_window, int) or self.credit_window < 1
        ):
            raise ValueError(
                f"credit_window must be >= 1 or None, got {self.credit_window}"
            )
        if self.pipeline_depth is not None and (
            not isinstance(self.pipeline_depth, int) or self.pipeline_depth < 1
        ):
            raise ValueError(
                f"pipeline_depth must be >= 1 or None, got {self.pipeline_depth}"
            )


class FlowAutotuner:
    """AIMD autotuning of batch size and credit window from RTT.

    The tuner treats the static :class:`FlowPolicy` values as a floor
    and probes upward: every ``epoch`` completed reads it compares the
    epoch's mean READ round-trip against the best (lowest) mean it has
    ever seen.  While latency stays within ``tolerance`` of that floor
    the batch and window grow additively (we were not the bottleneck;
    ask for more per trip).  When latency inflates past the tolerance
    the tuner halves both (multiplicative decrease — the classic AIMD
    shape, so the loop converges instead of oscillating).  Current
    values are exported as the ``autotune_batch`` / ``autotune_credit``
    gauges so ``eden-top`` can watch the tuner breathe.
    """

    def __init__(
        self,
        policy: FlowPolicy,
        max_batch: int = 1024,
        epoch: int = 8,
        tolerance: float = 2.0,
        increment: int = 2,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if epoch < 1:
            raise ValueError(f"epoch must be >= 1, got {epoch}")
        if tolerance <= 1.0:
            raise ValueError(f"tolerance must be > 1.0, got {tolerance}")
        self._floor_batch = policy.batch
        self._floor_credit = policy.effective_credit_window()
        self.batch = policy.batch
        self.credit_window = self._floor_credit
        self.max_batch = max_batch
        self.epoch = epoch
        self.tolerance = tolerance
        self.increment = increment
        self._samples: list[float] = []
        self._best_rtt: float | None = None

    def observe(self, rtt_s: float) -> bool:
        """Record one read round-trip; True when the epoch retuned."""
        self._samples.append(max(0.0, rtt_s))
        if len(self._samples) < self.epoch:
            return False
        mean = sum(self._samples) / len(self._samples)
        self._samples.clear()
        # Normalise by batch so growing the batch (which legitimately
        # lengthens each trip) is not read as congestion.
        per_record = mean / max(1, self.batch)
        if self._best_rtt is None or per_record < self._best_rtt:
            self._best_rtt = per_record
        if per_record > self._best_rtt * self.tolerance:
            self.batch = max(self._floor_batch, self.batch // 2)
            self.credit_window = max(self._floor_credit, self.credit_window // 2)
        else:
            self.batch = min(self.max_batch, self.batch + self.increment)
            self.credit_window = min(
                self.max_batch, self.credit_window + self.increment
            )
        return True

    def describe(self) -> dict[str, Any]:
        """JSON-safe snapshot (mirrors the exported gauges)."""
        return {
            "batch": self.batch,
            "credit_window": self.credit_window,
            "best_rtt_ms": (
                None if self._best_rtt is None else self._best_rtt * 1000.0
            ),
        }


def shard_of(record: Any, shards: int) -> int:
    """Stable shard index for ``record`` in a ``shards``-way partition.

    Hashes the record's repr with crc32 so the partition is stable
    across processes and runs (Python's builtin ``hash`` is salted per
    process, which would scatter a datum to a different shard on every
    retry).  Used by :class:`repro.api.Pipeline` when ``shards > 1``.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return 0
    return zlib.crc32(repr(record).encode("utf-8")) % shards
