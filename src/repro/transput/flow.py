"""Flow-control policy for pipelines (paper §4's laziness discussion).

"Laziness, however, is not desirable in a system which permits parallel
execution.  Instead, one would prefer that each Eject does a certain
amount of computation in advance ... In this way all the Ejects in a
pipeline can run concurrently."

A :class:`FlowPolicy` bundles the knobs that govern how eagerly data
moves: per-filter lookahead (anticipatory buffering), the Read batch
size, and the passive-buffer capacity used in the conventional
discipline.  Experiment T4 sweeps the lookahead and shows the
serialization → pipeline-parallel transition the paper predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FlowPolicy:
    """How eagerly a pipeline moves data.

    Attributes:
        lookahead: records each read-only filter computes in advance
            (0 = pure lazy / demand-driven).
        batch: records per Read/Write invocation (1 matches the paper's
            one-invocation-per-datum accounting).
        buffer_capacity: capacity of conventional-discipline pipes.
        inbox_capacity: write-only filters' input queue bound
            (``None`` = unbounded).
        credit_window: explicit record credit a passive input grants a
            remote pusher (``None`` = derive it; see
            :meth:`effective_credit_window`).  This is the harmonised
            name every layer uses — :class:`repro.api.Pipeline`,
            ``eden-stage --credit-window``, and this policy all mean
            the same number by it.
    """

    lookahead: int = 0
    batch: int = 1
    buffer_capacity: int | None = 64
    inbox_capacity: int | None = None
    credit_window: int | None = None

    #: Pure demand-driven flow: nothing moves until the sink asks.
    @staticmethod
    def lazy() -> "FlowPolicy":
        """Demand-driven: no anticipatory work anywhere."""
        return FlowPolicy(lookahead=0)

    @staticmethod
    def eager(lookahead: int = 8) -> "FlowPolicy":
        """Anticipatory: each filter keeps ``lookahead`` records ready."""
        return FlowPolicy(lookahead=lookahead)

    def with_batch(self, batch: int) -> "FlowPolicy":
        """The same policy moving ``batch`` records per invocation."""
        return replace(self, batch=batch)

    def with_credit_window(self, credit_window: int | None) -> "FlowPolicy":
        """The same policy with an explicit push credit window."""
        return replace(self, credit_window=credit_window)

    def effective_credit_window(self) -> int:
        """Initial record credit a passive input grants a remote pusher.

        This is how the policy maps onto the TCP runtime
        (:mod:`repro.net`): an explicit ``credit_window`` wins; a
        bounded inbox bounds the in-flight records directly; otherwise
        the lookahead knob plays the same anticipatory role it plays
        for read-only prefetch; a fully lazy policy degenerates to a
        window of 1 — one record in flight, the synchronous push.
        """
        if self.credit_window is not None:
            return self.credit_window
        if self.inbox_capacity is not None:
            return self.inbox_capacity
        if self.lookahead > 0:
            return self.lookahead
        return 1

    def describe(self) -> dict[str, object]:
        """JSON-safe summary for introspection (HEALTH, ``eden-top``)."""
        return {
            "lookahead": self.lookahead,
            "batch": self.batch,
            "buffer_capacity": self.buffer_capacity,
            "inbox_capacity": self.inbox_capacity,
            "credit_window": self.effective_credit_window(),
        }

    def __post_init__(self) -> None:
        if self.lookahead < 0:
            raise ValueError(f"lookahead must be >= 0, got {self.lookahead}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.buffer_capacity is not None and self.buffer_capacity < 1:
            raise ValueError(
                f"buffer_capacity must be >= 1 or None, got {self.buffer_capacity}"
            )
        if self.inbox_capacity is not None and self.inbox_capacity < 1:
            raise ValueError(
                f"inbox_capacity must be >= 1 or None, got {self.inbox_capacity}"
            )
        if self.credit_window is not None and (
            not isinstance(self.credit_window, int) or self.credit_window < 1
        ):
            raise ValueError(
                f"credit_window must be >= 1 or None, got {self.credit_window}"
            )
