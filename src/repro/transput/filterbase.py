"""Transducers: discipline-independent filter transformations.

Paper §3: "A filter is a program which takes a single stream of input
and produces a single stream of output; the output is some
transformation of the input."  The *transformation* is independent of
which transput discipline carries the data, so we factor it out: a
:class:`Transducer` describes the pure function, and the discipline
wrappers (:mod:`repro.transput.readonly`, ``writeonly``,
``conventional``) each run the *same* transducer.  That is what makes
the paper's cost comparisons apples-to-apples, and it gives the
property tests a functional reference semantics
(:func:`apply_transducer`).

A transducer may emit zero or more output records per input record,
may hold state, may emit prologue records before any input
(:meth:`Transducer.start`) and epilogue records at end of input
(:meth:`Transducer.finish`).

:class:`ReportingTransducer` generalizes to multiple named output
channels (paper §5's impure filters: "a large number of filters
produce reports").
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

#: The conventional primary-output channel name.
OUTPUT = "Output"
#: The conventional report-stream channel name.
REPORT = "Report"


class Transducer:
    """A single-output stream transformation.

    Attributes:
        name: printable label used by pipelines and the shell.
        cost_per_item: virtual compute time the hosting filter charges
            for each *input* record processed (lets benchmarks model
            non-trivial filters; see experiment T4).
    """

    name = "transducer"
    cost_per_item: float = 0.0

    def start(self) -> Iterable[Any]:
        """Records to emit before any input is consumed."""
        return ()

    def step(self, item: Any) -> Iterable[Any]:
        """Records to emit in response to one input record."""
        raise NotImplementedError

    def finish(self) -> Iterable[Any]:
        """Records to emit once the input stream has ended."""
        return ()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class ReportingTransducer:
    """A multi-output stream transformation (primary output + reports).

    Each hook returns a mapping from channel name to the records to
    emit on that channel; absent channels emit nothing.  ``channels``
    lists every channel the transducer may ever emit on — the hosting
    filter advertises exactly these.
    """

    name = "reporting-transducer"
    cost_per_item: float = 0.0
    channels: Sequence[str] = (OUTPUT, REPORT)

    def start(self) -> dict[str, Iterable[Any]]:
        """Per-channel records to emit before any input."""
        return {}

    def step(self, item: Any) -> dict[str, Iterable[Any]]:
        """Per-channel records to emit for one input record."""
        raise NotImplementedError

    def finish(self) -> dict[str, Iterable[Any]]:
        """Per-channel records to emit at end of input."""
        return {}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} channels={list(self.channels)}>"


class _FunctionTransducer(Transducer):
    """Transducer built from plain functions (see :func:`make_transducer`)."""

    def __init__(
        self,
        step: Callable[[Any], Iterable[Any]],
        name: str,
        start: Callable[[], Iterable[Any]] | None = None,
        finish: Callable[[], Iterable[Any]] | None = None,
        cost_per_item: float = 0.0,
    ) -> None:
        self._step = step
        self._start = start
        self._finish = finish
        self.name = name
        self.cost_per_item = cost_per_item

    def start(self) -> Iterable[Any]:
        return self._start() if self._start is not None else ()

    def step(self, item: Any) -> Iterable[Any]:
        return self._step(item)

    def finish(self) -> Iterable[Any]:
        return self._finish() if self._finish is not None else ()


def make_transducer(
    step: Callable[[Any], Iterable[Any]],
    name: str = "anonymous",
    start: Callable[[], Iterable[Any]] | None = None,
    finish: Callable[[], Iterable[Any]] | None = None,
    cost_per_item: float = 0.0,
) -> Transducer:
    """Build a transducer from functions.

    ``step`` maps one input record to an iterable of output records.
    """
    return _FunctionTransducer(
        step=step, name=name, start=start, finish=finish,
        cost_per_item=cost_per_item,
    )


def map_transducer(fn: Callable[[Any], Any], name: str | None = None) -> Transducer:
    """One-output-per-input transducer applying ``fn`` to each record."""
    return make_transducer(
        lambda item: (fn(item),), name=name or f"map({fn.__name__})"
    )


def filter_transducer(
    predicate: Callable[[Any], bool], name: str | None = None
) -> Transducer:
    """Keep only records satisfying ``predicate``."""
    return make_transducer(
        lambda item: (item,) if predicate(item) else (),
        name=name or f"filter({predicate.__name__})",
    )


def identity_transducer(name: str = "identity") -> Transducer:
    """Pass every record through unchanged."""
    return make_transducer(lambda item: (item,), name=name)


class _AsReporting(ReportingTransducer):
    """Adapter presenting a single-output transducer as multi-output."""

    def __init__(self, inner: Transducer, channel: str = OUTPUT) -> None:
        self._inner = inner
        self._channel = channel
        self.name = inner.name
        self.cost_per_item = inner.cost_per_item
        self.channels = (channel,)

    def start(self) -> dict[str, Iterable[Any]]:
        return {self._channel: self._inner.start()}

    def step(self, item: Any) -> dict[str, Iterable[Any]]:
        return {self._channel: self._inner.step(item)}

    def finish(self) -> dict[str, Iterable[Any]]:
        return {self._channel: self._inner.finish()}

    def accept_secondary(self, input_name: str, items: list) -> None:
        """Forward secondary-input data to the wrapped transducer."""
        accept = getattr(self._inner, "accept_secondary", None)
        if accept is not None:
            accept(input_name, items)


def as_reporting(
    transducer: Transducer | ReportingTransducer, channel: str = OUTPUT
) -> ReportingTransducer:
    """View any transducer uniformly as a multi-channel one."""
    if isinstance(transducer, ReportingTransducer):
        return transducer
    return _AsReporting(transducer, channel=channel)


def apply_transducer(transducer: Transducer, items: Iterable[Any]) -> list[Any]:
    """Functional reference semantics: run ``transducer`` over ``items``.

    This is what any discipline's pipeline must compute; property tests
    compare simulated pipelines against it.
    """
    out: list[Any] = list(transducer.start())
    for item in items:
        out.extend(transducer.step(item))
    out.extend(transducer.finish())
    return out


def apply_reporting(
    transducer: ReportingTransducer, items: Iterable[Any]
) -> dict[str, list[Any]]:
    """Reference semantics for multi-output transducers (per channel)."""
    out: dict[str, list[Any]] = {channel: [] for channel in transducer.channels}

    def fold(emitted: dict[str, Iterable[Any]]) -> None:
        for channel, records in emitted.items():
            out.setdefault(channel, []).extend(records)

    fold(transducer.start())
    for item in items:
        fold(transducer.step(item))
    fold(transducer.finish())
    return out


def compose_apply(transducers: Sequence[Transducer], items: Iterable[Any]) -> list[Any]:
    """Reference semantics of a whole single-output pipeline."""
    current = list(items)
    for transducer in transducers:
        current = apply_transducer(transducer, current)
    return current
