"""Asymmetric stream transput: the paper's primary contribution.

The four primitives (:mod:`repro.transput.primitives`), the Sequence
protocol (:mod:`~repro.transput.stream`), the three disciplines
(read-only, write-only, conventional), passive buffers, channel
identifiers, flow control and pipeline builders.
"""

from repro.transput.buffer import DEFAULT_CAPACITY, PassiveBuffer
from repro.transput.channels import ChannelTable
from repro.transput.conventional import ConventionalFilter
from repro.transput.filterbase import (
    OUTPUT,
    REPORT,
    ReportingTransducer,
    Transducer,
    apply_reporting,
    apply_transducer,
    as_reporting,
    compose_apply,
    filter_transducer,
    identity_transducer,
    make_transducer,
    map_transducer,
)
from repro.transput.flow import FlowPolicy
from repro.transput.iolib import (
    END_OF_INPUT,
    ConventionalStyleFilter,
    InputPort,
    OutputPort,
)
from repro.transput.pipeline import (
    DISCIPLINES,
    Pipeline,
    build_conventional_pipeline,
    build_pipeline,
    build_readonly_pipeline,
    build_writeonly_pipeline,
    compose_conventional_pipeline,
    compose_pipeline,
    compose_readonly_pipeline,
    compose_segment,
    compose_writeonly_pipeline,
)
from repro.transput.primitives import (
    Primitive,
    READ_OP,
    TRANSFER_OP,
    TransputEject,
    WRITE_OP,
    active_input,
    active_output,
    passive_input,
    passive_output,
    read_stream,
    write_stream,
)
from repro.transput.merge import TaggedMerger
from repro.transput.readonly import ReadOnlyFilter
from repro.transput.sink import (
    ActiveSink,
    CollectorSink,
    NullSink,
    PassiveSink,
)
from repro.transput.source import (
    ActiveSource,
    FunctionSource,
    ListSource,
    PassiveSource,
)
from repro.transput.stream import (
    END_TRANSFER,
    StreamAssembler,
    StreamEndpoint,
    StreamStatus,
    Transfer,
    WriteAck,
)
from repro.transput.writeonly import WriteOnlyFilter

__all__ = [
    "ActiveSink",
    "ActiveSource",
    "ChannelTable",
    "CollectorSink",
    "ConventionalFilter",
    "ConventionalStyleFilter",
    "DEFAULT_CAPACITY",
    "DISCIPLINES",
    "END_OF_INPUT",
    "END_TRANSFER",
    "FlowPolicy",
    "FunctionSource",
    "InputPort",
    "ListSource",
    "NullSink",
    "OUTPUT",
    "OutputPort",
    "PassiveBuffer",
    "PassiveSink",
    "PassiveSource",
    "Pipeline",
    "Primitive",
    "READ_OP",
    "TRANSFER_OP",
    "REPORT",
    "ReadOnlyFilter",
    "ReportingTransducer",
    "StreamAssembler",
    "StreamEndpoint",
    "StreamStatus",
    "TaggedMerger",
    "Transducer",
    "Transfer",
    "TransputEject",
    "WRITE_OP",
    "WriteAck",
    "WriteOnlyFilter",
    "active_input",
    "active_output",
    "apply_reporting",
    "apply_transducer",
    "as_reporting",
    "build_conventional_pipeline",
    "build_pipeline",
    "build_readonly_pipeline",
    "build_writeonly_pipeline",
    "compose_conventional_pipeline",
    "compose_pipeline",
    "compose_readonly_pipeline",
    "compose_segment",
    "compose_writeonly_pipeline",
    "compose_apply",
    "filter_transducer",
    "identity_transducer",
    "make_transducer",
    "map_transducer",
    "passive_input",
    "passive_output",
    "read_stream",
    "write_stream",
]
