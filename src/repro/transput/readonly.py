"""The read-only transput discipline (paper §4).

A :class:`ReadOnlyFilter` performs **active input** (it Reads from the
Ejects it was told about at initialisation) and **passive output** (it
answers Read invocations from whoever wants its results):

    "it is not necessary to tell a filter where the output is to go:
    it will be sent to whatever Eject requests it (by performing a
    Read)."

Key behaviours reproduced here:

- **Laziness** (``lookahead=0``): "no computation need be done until
  the result is requested"; the filter pulls from upstream only while
  answering a Read.
- **Anticipatory buffering** (``lookahead=k``): "each Eject in a
  pipeline should read some input and buffer-up some output, and then
  suspend processing pending a request for output.  In this way all
  the Ejects in a pipeline can run concurrently" — a prefetcher
  process keeps up to ``k`` records buffered.
- **Fan-in**: a filter may hold any number of input endpoints (§5:
  "If F needs n inputs, it maintains n UIDs").
- **Multiple outputs via channels** (§5): each output stream has a
  channel identifier; Reads are qualified by it.  ``channel_mode=
  "capability"`` uses unforgeable identifiers.
- **The unsatisfactory "secondary output" variant** (§5): channels
  listed in ``secondary_outputs`` are *volunteered* with active Writes
  to fixed endpoints instead of being readable — re-introducing the
  other active primitive, which benchmark T5's ablation quantifies.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Mapping, Sequence, TYPE_CHECKING

from repro.core.errors import EdenError
from repro.core.message import Invocation
from repro.core.syscalls import (
    NotifySignal,
    Receive,
    Signal,
    Sleep,
    WaitSignal,
)
from repro.transput.channels import ChannelTable
from repro.transput.filterbase import (
    ReportingTransducer,
    Transducer,
    as_reporting,
)
from repro.transput.primitives import (
    Primitive,
    READ_OP,
    TRANSFER_OP,
    TransputEject,
    active_input,
    active_output,
)
from repro.transput.stream import END_TRANSFER, StreamEndpoint, Transfer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID


class ReadOnlyFilter(TransputEject):
    """A filter in the read-only discipline.

    Args:
        transducer: the transformation (single- or multi-output).
        inputs: upstream endpoints; usually one, several for fan-in.
        input_strategy: ``"concat"`` (drain inputs in order) or
            ``"round_robin"`` (interleave batches).
        lookahead: records to buffer ahead of demand (0 = pure lazy).
        batch_in: records requested per upstream Read.
        channel_mode: ``"open"`` or ``"capability"`` (paper §5).
        secondary_outputs: channel name -> endpoints that receive that
            channel's records via active Writes (the variant §5 calls
            "abandoning the read-only nature ... for all filters with
            multiple outputs").
    """

    eden_type = "ReadOnlyFilter"
    #: Operations the server processes answer (for behaviour specs).
    answers_operations = ("Read", "Transfer")

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        transducer: Transducer | ReportingTransducer | None = None,
        inputs: Iterable[StreamEndpoint] = (),
        name: str | None = None,
        input_strategy: str = "concat",
        lookahead: int = 0,
        batch_in: int = 1,
        channel_mode: str = "open",
        secondary_outputs: Mapping[str, Sequence[StreamEndpoint]] | None = None,
    ) -> None:
        if input_strategy not in ("concat", "round_robin"):
            raise ValueError(f"unknown input strategy {input_strategy!r}")
        super().__init__(kernel, uid, name=name)
        self.transducer = as_reporting(
            transducer if transducer is not None else _identity()
        )
        self.inputs = list(inputs)
        self.input_strategy = input_strategy
        self.lookahead = max(0, int(lookahead))
        self.batch_in = max(1, int(batch_in))
        self.secondary = {
            channel: list(endpoints)
            for channel, endpoints in (secondary_outputs or {}).items()
        }
        readable = [
            channel for channel in self.transducer.channels
            if channel not in self.secondary
        ]
        if not readable:
            raise ValueError(
                "every channel was made secondary; a read-only filter "
                "must keep at least one readable channel"
            )
        self.channel_table = ChannelTable(self, readable, mode=channel_mode)
        self.buffers: dict[str, deque] = {name: deque() for name in readable}
        self._started = False
        self._input_done = False
        self._live_inputs: list[StreamEndpoint] = []
        self._input_index = 0
        self.reads_served = 0
        self.pulls_issued = 0
        self._data_ready = Signal(f"{self.name}.data_ready")
        self._space_freed = Signal(f"{self.name}.space_freed")
        #: Channels with a parked reader (demand-driven prefetch boost).
        self._demanded: set[str] = set()

    # ------------------------------------------------------------------
    # Wiring helpers (host-side, used by pipeline builders)
    # ------------------------------------------------------------------

    def connect_input(self, endpoint: StreamEndpoint) -> None:
        """Add an upstream endpoint (before the simulation runs)."""
        self.inputs.append(endpoint)

    def output_endpoint(self, channel: str | None = None) -> StreamEndpoint:
        """The endpoint a consumer should Read from.

        In open mode the channel identifier is the plain name (``None``
        for the default channel); in capability mode it is the minted
        capability, which only explicitly-connected consumers hold.
        """
        name = channel or self.channel_table.default
        if self.channel_table.mode == "capability":
            return StreamEndpoint(self.uid, self.channel_table.capability(name))
        if channel is None and name == self.channel_table.default:
            return StreamEndpoint(self.uid, None)
        return StreamEndpoint(self.uid, name)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def process_bodies(self):
        if self.lookahead > 0:
            return [("server", self._server()), ("prefetch", self._prefetcher())]
        return [("main", self._lazy_server())]

    # -- shared machinery -------------------------------------------------

    def _ensure_started(self):
        if self._started:
            return
        self._started = True
        self._live_inputs = list(self.inputs)
        yield from self._distribute(self.transducer.start())

    def _distribute(self, emitted: Mapping[str, Iterable[Any]]):
        for channel, records in emitted.items():
            batch = list(records)
            if not batch:
                continue
            if channel in self.secondary:
                for endpoint in self.secondary[channel]:
                    yield from active_output(self, endpoint, Transfer.of(batch))
            elif channel in self.buffers:
                self.buffers[channel].extend(batch)
            else:
                raise EdenError(
                    f"{self.name}: transducer emitted on undeclared "
                    f"channel {channel!r}"
                )

    def _current_input(self) -> StreamEndpoint | None:
        if not self._live_inputs:
            return None
        self._input_index %= len(self._live_inputs)
        return self._live_inputs[self._input_index]

    def _pull_once(self):
        """Read one upstream batch and run it through the transducer."""
        yield from self._ensure_started()
        endpoint = self._current_input()
        if endpoint is None:
            yield from self._finish_input()
            return
        transfer = yield from active_input(self, endpoint, self.batch_in)
        self.pulls_issued += 1
        if transfer.at_end:
            self._live_inputs.pop(self._input_index)
            if not self._live_inputs:
                yield from self._finish_input()
            return
        if self.input_strategy == "round_robin":
            self._input_index += 1
        cost = self.transducer.cost_per_item
        for item in transfer.items:
            if cost:
                yield Sleep(cost)
            yield from self._distribute(self.transducer.step(item))

    def _finish_input(self):
        if self._input_done:
            return
        yield from self._distribute(self.transducer.finish())
        for channel, endpoints in self.secondary.items():
            for endpoint in endpoints:
                yield from active_output(self, endpoint, END_TRANSFER)
        self._input_done = True

    def _answer(self, invocation: Invocation, channel: str):
        batch = invocation.args[0] if invocation.args else 1
        batch = max(1, int(batch))
        buffer = self.buffers[channel]
        if buffer:
            taken = [buffer.popleft() for _ in range(min(batch, len(buffer)))]
            transfer = Transfer.of(taken)
        else:
            transfer = END_TRANSFER
        self.note_primitive(Primitive.PASSIVE_OUTPUT)
        self.reads_served += 1
        yield self.reply(invocation, transfer)

    # -- lazy mode ---------------------------------------------------------

    def _lazy_server(self):
        yield from self._ensure_started()
        while True:
            invocation = yield Receive(operations={READ_OP, TRANSFER_OP})
            yield from self._serve_lazily(invocation)

    def _serve_lazily(self, invocation: Invocation):
        try:
            channel = self.channel_table.resolve(invocation.channel)
        except EdenError as error:
            yield self.reply(invocation, error=error)
            return
        while not self.buffers[channel] and not self._input_done:
            yield from self._pull_once()
        yield from self._answer(invocation, channel)

    # -- anticipatory (buffered) mode ---------------------------------------

    def _buffered_total(self) -> int:
        return sum(len(buffer) for buffer in self.buffers.values())

    def _server(self):
        while True:
            invocation = yield Receive(operations={READ_OP, TRANSFER_OP})
            try:
                channel = self.channel_table.resolve(invocation.channel)
            except EdenError as error:
                yield self.reply(invocation, error=error)
                continue
            while not self.buffers[channel] and not self._input_done:
                # Tell the prefetcher which channel is starving so it
                # keeps pulling even when the total buffered already
                # meets the lookahead target (multi-channel filters).
                self._demanded.add(channel)
                yield NotifySignal(self._space_freed)
                yield WaitSignal(self._data_ready)
            self._demanded.discard(channel)
            yield from self._answer(invocation, channel)
            yield NotifySignal(self._space_freed)

    def _must_keep_pulling(self) -> bool:
        if self._input_done:
            return False
        if self._buffered_total() < self.lookahead:
            return True
        # A reader is parked on an empty channel: demand overrides the
        # lookahead bound (otherwise a Report reader could starve while
        # Output sits full).
        return any(not self.buffers[channel] for channel in self._demanded)

    def _prefetcher(self):
        yield from self._ensure_started()
        while not self._input_done:
            while not self._must_keep_pulling() and not self._input_done:
                yield WaitSignal(self._space_freed)
            if self._input_done:
                break
            yield from self._pull_once()
            yield NotifySignal(self._data_ready)
        yield NotifySignal(self._data_ready)


def _identity() -> Transducer:
    from repro.transput.filterbase import identity_transducer

    return identity_transducer()
