"""The conventional (both-active) transput discipline (paper §3).

A :class:`ConventionalFilter` takes the initiative in *both*
directions — "it is F which calls the Read and Write operations" — so
it can only be connected to correspondents that respond passively:
passive sources, passive sinks and, between filters,
:class:`~repro.transput.buffer.PassiveBuffer`s (the Unix pipes of
Figure 1).

Besides transforming, such a filter "acts as a data pump": the cost is
two invocations per datum per stage instead of one, which is exactly
the overhead the read-only discipline eliminates (experiments T1/T8).

Conventional transput allows both fan-in (multiple inputs actively
read) and fan-out (multiple outputs actively written) — the flexible
but expensive corner of the design space (experiment T5).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, TYPE_CHECKING

from repro.core.syscalls import Sleep
from repro.transput.filterbase import (
    OUTPUT,
    ReportingTransducer,
    Transducer,
    as_reporting,
)
from repro.transput.batching import OutputBatcher
from repro.transput.primitives import (
    TransputEject,
    active_input,
)
from repro.transput.stream import StreamEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID


class ConventionalFilter(TransputEject):
    """A filter performing active input and active output.

    Args:
        transducer: the transformation (single- or multi-output).
        inputs: endpoints actively read (fan-in; ``"concat"`` or
            ``"round_robin"`` strategy as for read-only filters).
        outputs: channel name -> endpoints actively written (fan-out);
            a plain sequence is shorthand for the primary channel.
        batch: records moved per Read and per Write.
    """

    eden_type = "ConventionalFilter"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        transducer: Transducer | ReportingTransducer | None = None,
        inputs: Iterable[StreamEndpoint] = (),
        outputs: Mapping[str, Sequence[StreamEndpoint]] | Sequence[StreamEndpoint] = (),
        name: str | None = None,
        input_strategy: str = "concat",
        batch: int = 1,
    ) -> None:
        if input_strategy not in ("concat", "round_robin"):
            raise ValueError(f"unknown input strategy {input_strategy!r}")
        super().__init__(kernel, uid, name=name)
        self.transducer = as_reporting(
            transducer if transducer is not None else _identity()
        )
        self.inputs = list(inputs)
        self.outputs = _normalize_outputs(outputs)
        self.input_strategy = input_strategy
        self.batch = max(1, int(batch))
        self.done = False
        self.reads_issued = 0
        self._batcher: OutputBatcher | None = None

    @property
    def writes_issued(self) -> int:
        """Write invocations this filter has performed so far."""
        return self._batcher.writes_issued if self._batcher else 0

    def connect_input(self, endpoint: StreamEndpoint) -> None:
        """Add an upstream endpoint (before the simulation runs)."""
        self.inputs.append(endpoint)

    def connect_output(self, endpoint: StreamEndpoint, channel: str = OUTPUT) -> None:
        """Add a downstream endpoint for ``channel`` (before running)."""
        self.outputs.setdefault(channel, []).append(endpoint)

    def main(self):
        # Built lazily so outputs connected after creation are included.
        self._batcher = OutputBatcher(self, self.outputs, batch=self.batch)
        yield from self._batcher.emit(self.transducer.start())
        cost = self.transducer.cost_per_item
        live = list(self.inputs)
        index = 0
        while live:
            index %= len(live)
            endpoint = live[index]
            transfer = yield from active_input(self, endpoint, self.batch)
            self.reads_issued += 1
            if transfer.at_end:
                live.pop(index)
                continue
            if self.input_strategy == "round_robin":
                index += 1
            for item in transfer.items:
                if cost:
                    yield Sleep(cost)
                yield from self._batcher.emit(self.transducer.step(item))
        yield from self._batcher.emit(self.transducer.finish())
        yield from self._batcher.finish()
        self.done = True


def _normalize_outputs(
    outputs: Mapping[str, Sequence[StreamEndpoint]] | Sequence[StreamEndpoint],
) -> dict[str, list[StreamEndpoint]]:
    if isinstance(outputs, Mapping):
        return {channel: list(eps) for channel, eps in outputs.items()}
    return {OUTPUT: list(outputs)}


def _identity() -> Transducer:
    from repro.transput.filterbase import identity_transducer

    return identity_transducer()
