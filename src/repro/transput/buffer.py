"""The passive buffer: Eden's model of a Unix pipe.

Paper §3: "The function of a pipe is to perform passive transput in
response to the active transput operations of the filters. ...  Because
entities like Unix pipes perform both buffering and passive transput, I
will refer to them as *passive buffers*."

A :class:`PassiveBuffer` answers both ``Write`` (passive input) and
``Read`` (passive output).  It is bounded: a writer whose data does not
fit is simply not answered until space frees up, and a reader of an
empty buffer is not answered until data (or END) arrives — delayed
replies are the flow-control mechanism, just as blocking system calls
are in Unix.
"""

from __future__ import annotations

from collections import deque
from typing import Any, TYPE_CHECKING

from repro.core.errors import StreamProtocolError
from repro.core.message import Invocation
from repro.core.syscalls import Receive
from repro.transput.primitives import Primitive, READ_OP, TransputEject, WRITE_OP
from repro.transput.stream import END_TRANSFER, Transfer, WriteAck

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID

#: Default capacity, in records (Unix pipes are likewise finite).
DEFAULT_CAPACITY = 64

#: Bucket edges for queue-depth histograms (records, not latency).
DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class PassiveBuffer(TransputEject):
    """A bounded FIFO answering Read and Write passively.

    Args:
        capacity: maximum records held; ``None`` means unbounded.  An
            atomic Write larger than the whole capacity is accepted
            only into an empty buffer (mirroring an atomic pipe write).
        expected_ends: number of END transfers that terminate the
            stream (several writers may fan in to one buffer).
    """

    eden_type = "PassiveBuffer"
    #: Operations the hand-written main loop answers (for behaviour specs).
    answers_operations = ("Read", "Write")

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        name: str | None = None,
        capacity: int | None = DEFAULT_CAPACITY,
        expected_ends: int = 1,
    ) -> None:
        super().__init__(kernel, uid, name=name)
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.expected_ends = max(1, int(expected_ends))
        self.items: deque[Any] = deque()
        # Causal origin (span) of each buffered record, kept in step
        # with ``items`` so a Read's reply can carry the trace of the
        # Write that deposited it (datum-follows-trace).
        self._origins: deque[Any] = deque()
        self._end_origin: Any = None
        self.ends_seen = 0
        self.ended = False
        self._parked_reads: deque[Invocation] = deque()
        self._parked_writes: deque[Invocation] = deque()
        self.reads_served = 0
        self.writes_accepted = 0
        self.max_occupancy = 0

    # ------------------------------------------------------------------

    def main(self):
        while True:
            invocation = yield Receive(operations={READ_OP, WRITE_OP})
            if invocation.operation == WRITE_OP:
                yield from self._on_write(invocation)
            else:
                yield from self._on_read(invocation)

    # -- write side ------------------------------------------------------

    def _fits(self, count: int) -> bool:
        if self.capacity is None:
            return True
        if not self.items:
            return True  # atomic oversized write into an empty buffer
        return len(self.items) + count <= self.capacity

    def _on_write(self, invocation: Invocation):
        transfer = invocation.args[0]
        if not isinstance(transfer, Transfer):
            yield self.reply(
                invocation,
                error=StreamProtocolError("Write payload must be a Transfer"),
            )
            return
        if self.ended:
            yield self.reply(
                invocation,
                error=StreamProtocolError("Write received after final END"),
            )
            return
        if transfer.at_end:
            yield from self._accept_end(invocation)
            return
        if not self._fits(len(transfer.items)):
            # Exert backpressure: hold the ack until space frees up.
            self._parked_writes.append(invocation)
            return
        yield from self._accept_data(invocation, transfer)

    def _accept_end(self, invocation: Invocation):
        self._end_origin = invocation.span
        self.ends_seen += 1
        self.note_primitive(Primitive.PASSIVE_INPUT)
        self.writes_accepted += 1
        if self.ends_seen >= self.expected_ends:
            self.ended = True
        yield self.reply(invocation, WriteAck(accepted=0))
        if self.ended:
            # Writers parked for space can never be admitted now: data
            # after END would violate the protocol.  Fail them the way
            # Unix fails a write on a closed pipe.
            while self._parked_writes:
                stranded = self._parked_writes.popleft()
                yield self.reply(
                    stranded,
                    error=StreamProtocolError(
                        "stream ended while this Write awaited space"
                    ),
                )
            yield from self._drain_parked_reads()

    def _accept_data(self, invocation: Invocation, transfer: Transfer):
        self.items.extend(transfer.items)
        self._origins.extend([invocation.span] * len(transfer.items))
        self.max_occupancy = max(self.max_occupancy, len(self.items))
        self._note_occupancy()
        self.note_primitive(Primitive.PASSIVE_INPUT)
        self.writes_accepted += 1
        yield self.reply(invocation, WriteAck(accepted=len(transfer.items)))
        yield from self._drain_parked_reads()

    # -- read side -------------------------------------------------------

    def _on_read(self, invocation: Invocation):
        if not self.items and not self.ended:
            self._parked_reads.append(invocation)
            return
        yield from self._answer_read(invocation)

    def _answer_read(self, invocation: Invocation):
        batch = invocation.args[0] if invocation.args else 1
        batch = max(1, int(batch))
        origin = None
        if self.items:
            count = min(batch, len(self.items))
            taken = [self.items.popleft() for _ in range(count)]
            origins = [
                self._origins.popleft() if self._origins else None
                for _ in range(count)
            ]
            origin = origins[0]
            reply_transfer = Transfer.of(taken)
        elif self.ended:
            origin = self._end_origin
            reply_transfer = END_TRANSFER
        else:  # pragma: no cover - guarded by caller
            raise StreamProtocolError("answering a read with nothing to say")
        self._note_occupancy()
        self.note_primitive(Primitive.PASSIVE_OUTPUT)
        self.reads_served += 1
        yield self.reply(invocation, reply_transfer, span=origin)
        yield from self._unpark_writes()

    def _drain_parked_reads(self):
        while self._parked_reads and (self.items or self.ended):
            parked = self._parked_reads.popleft()
            yield from self._answer_read(parked)

    def _unpark_writes(self):
        while self._parked_writes and not self.ended:
            candidate = self._parked_writes[0]
            transfer = candidate.args[0]
            if not self._fits(len(transfer.items)):
                break
            self._parked_writes.popleft()
            yield from self._accept_data(candidate, transfer)

    # ------------------------------------------------------------------

    def _note_occupancy(self) -> None:
        """Publish occupancy as a per-buffer gauge + depth histogram.

        The gauge name carries the buffer's name as an instance
        qualifier (``buffer_occupancy[pipe-1]``), which the Prometheus
        exposition turns into an ``instance`` label so a fleet's
        buffers form one metric family.
        """
        depth = len(self.items)
        stats = self.kernel.stats
        stats.set_gauge(f"buffer_occupancy[{self.name}]", float(depth))
        stats.observe("queue_depth", float(depth), bounds=DEPTH_BUCKETS)

    @property
    def occupancy(self) -> int:
        """Records currently buffered."""
        return len(self.items)

    def __repr__(self) -> str:
        return (
            f"<PassiveBuffer {self.name} {self.occupancy}"
            f"/{self.capacity if self.capacity is not None else '∞'}"
            f"{' ended' if self.ended else ''}>"
        )
