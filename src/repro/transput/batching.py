"""Per-channel output batching for pushing filters.

A filter that performs active output should move ``batch`` records per
Write invocation, mirroring how a reading filter requests ``batch``
records per Read — otherwise the two disciplines' invocation counts are
not comparable.  :class:`OutputBatcher` accumulates records per channel
and flushes full chunks; the remainder and the END markers go out at
:meth:`finish`.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, TYPE_CHECKING

from repro.transput.stream import END_TRANSFER, StreamEndpoint, Transfer

if TYPE_CHECKING:  # pragma: no cover
    from repro.transput.primitives import TransputEject


class OutputBatcher:
    """Accumulates and flushes active output in fixed-size chunks.

    Args:
        eject: the filter performing the writes.
        outputs: channel name -> endpoints (each chunk is written to
            *every* endpoint of its channel — fan-out).
        batch: records per Write invocation.
    """

    def __init__(
        self,
        eject: "TransputEject",
        outputs: Mapping[str, list[StreamEndpoint]],
        batch: int = 1,
    ) -> None:
        self._eject = eject
        self._outputs = {
            channel: list(endpoints) for channel, endpoints in outputs.items()
        }
        self._batch = max(1, int(batch))
        self._pending: dict[str, list[Any]] = {
            channel: [] for channel in self._outputs
        }
        self.writes_issued = 0
        self.finished = False

    def emit(self, emitted: Mapping[str, Iterable[Any]]):
        """Queue records per channel; flush every full chunk."""
        for channel, records in emitted.items():
            batch = list(records)
            if not batch:
                continue
            pending = self._pending.get(channel)
            if pending is None:
                continue  # channel not wired anywhere: drop silently
            pending.extend(batch)
            while len(pending) >= self._batch:
                chunk, self._pending[channel] = (
                    pending[: self._batch],
                    pending[self._batch :],
                )
                pending = self._pending[channel]
                yield from self._write(channel, Transfer.of(chunk))

    def finish(self):
        """Flush remainders and terminate every output with END."""
        if self.finished:
            return
        self.finished = True
        for channel, pending in self._pending.items():
            if pending:
                chunk, self._pending[channel] = list(pending), []
                yield from self._write(channel, Transfer.of(chunk))
        for channel in self._outputs:
            yield from self._write(channel, END_TRANSFER)

    def _write(self, channel: str, transfer: Transfer):
        from repro.transput.primitives import active_output

        for endpoint in self._outputs[channel]:
            yield from active_output(self._eject, endpoint, transfer)
            self.writes_issued += 1
