"""Stream sinks.

"any Eject which generates [Read invocations] is a sink" (paper §4).

- :class:`ActiveSink` issues ``Read`` invocations (active input) — the
  read-only discipline's consumer, and the "pump" of the whole
  pipeline: "Connecting a terminal to a filter Eject would be rather
  like starting a pump."
- :class:`PassiveSink` answers ``Write`` invocations (passive input) —
  the write-only discipline's consumer: "sinks would always be ready
  to accept them."

Both record what they consumed (``collected``) and raise ``done`` when
their stream(s) end, which is what drivers run the simulation until.
"""

from __future__ import annotations

from typing import Any, Iterable, TYPE_CHECKING

from repro.core.errors import StreamProtocolError
from repro.core.message import Invocation
from repro.core.syscalls import Sleep
from repro.transput.primitives import (
    Primitive,
    TransputEject,
    active_input,
)
from repro.transput.stream import StreamEndpoint, Transfer, WriteAck

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID


class ActiveSink(TransputEject):
    """Pumps data out of one or more sources by repeated ``Read``.

    Args:
        inputs: endpoints to drain.  With several inputs, ``strategy``
            selects the order: ``"concat"`` drains each fully in turn;
            ``"round_robin"`` interleaves one batch from each live
            input per round (the Report Window of Figure 4 "is designed
            to read from multiple sources").
        batch: records requested per Read.
        work_cost: virtual time consumed per record (a slow device).
        max_items: stop pumping after this many records (needed for
            potentially infinite sources such as the clock); ``None``
            pumps to END.
    """

    eden_type = "ActiveSink"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        inputs: Iterable[StreamEndpoint] = (),
        name: str | None = None,
        batch: int = 1,
        strategy: str = "concat",
        work_cost: float = 0.0,
        max_items: int | None = None,
    ) -> None:
        if strategy not in ("concat", "round_robin"):
            raise ValueError(f"unknown strategy {strategy!r}")
        super().__init__(kernel, uid, name=name)
        self.inputs = list(inputs)
        self.batch = max(1, int(batch))
        self.strategy = strategy
        self.work_cost = work_cost
        self.max_items = max_items
        self.items_consumed = 0
        self.collected: list[Any] = []
        self.done = False
        self.reads_issued = 0

    def connect(self, endpoint: StreamEndpoint) -> None:
        """Add one more input endpoint (before the simulation runs)."""
        self.inputs.append(endpoint)

    def consume(self, item: Any) -> None:
        """Accept one record; subclasses override (printing, counting…)."""
        self.collected.append(item)

    def main(self):
        if not self.inputs:
            self.done = True
            return
        if self.strategy == "concat":
            yield from self._drain_concat()
        else:
            yield from self._drain_round_robin()
        self.done = True

    def _limit_reached(self) -> bool:
        return self.max_items is not None and self.items_consumed >= self.max_items

    def _drain_concat(self):
        for endpoint in self.inputs:
            while not self._limit_reached():
                transfer = yield from active_input(self, endpoint, self.batch)
                self.reads_issued += 1
                if transfer.at_end:
                    break
                yield from self._consume_all(transfer)
            if self._limit_reached():
                break

    def _drain_round_robin(self):
        live = list(self.inputs)
        while live and not self._limit_reached():
            still_live = []
            for endpoint in live:
                if self._limit_reached():
                    break
                transfer = yield from active_input(self, endpoint, self.batch)
                self.reads_issued += 1
                if transfer.at_end:
                    continue
                yield from self._consume_all(transfer)
                still_live.append(endpoint)
            live = still_live

    def _consume_all(self, transfer: Transfer):
        if self.work_cost:
            yield Sleep(self.work_cost * len(transfer.items))
        for item in transfer.items:
            self.consume(item)
            self.items_consumed += 1


class CollectorSink(ActiveSink):
    """An active sink that simply collects into ``collected``."""

    eden_type = "CollectorSink"


class NullSink(ActiveSink):
    """"The null sink is an Eject which reads indiscriminately and
    ignores the data it is given" (paper §4)."""

    eden_type = "NullSink"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.discarded = 0

    def consume(self, item: Any) -> None:
        self.discarded += 1


class PassiveSink(TransputEject):
    """Accepts ``Write`` invocations; the write-only consumer role.

    ``expected_ends`` supports fan-in of END markers: a passive sink
    fed by several writers is ``done`` only after that many ENDs (each
    upstream writer terminates its own stream).
    """

    eden_type = "PassiveSink"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        name: str | None = None,
        expected_ends: int = 1,
        work_cost: float = 0.0,
    ) -> None:
        super().__init__(kernel, uid, name=name)
        self.expected_ends = max(1, int(expected_ends))
        self.work_cost = work_cost
        self.collected: list[Any] = []
        self.ends_seen = 0
        self.done = False
        self.writes_accepted = 0

    def consume(self, item: Any) -> None:
        """Accept one record; subclasses override."""
        self.collected.append(item)

    def op_Write(self, invocation: Invocation):
        transfer = invocation.args[0]
        if not isinstance(transfer, Transfer):
            raise StreamProtocolError(
                f"Write payload must be a Transfer, got {type(transfer).__name__}"
            )
        if self.done:
            raise StreamProtocolError("Write received after final END")
        self.note_primitive(Primitive.PASSIVE_INPUT)
        self.writes_accepted += 1
        if transfer.at_end:
            self.ends_seen += 1
            if self.ends_seen >= self.expected_ends:
                self.done = True
            return WriteAck(accepted=0)
        if self.work_cost:
            yield Sleep(self.work_cost * len(transfer.items))
        for item in transfer.items:
            self.consume(item)
        return WriteAck(accepted=len(transfer.items))
