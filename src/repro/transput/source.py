"""Stream sources.

"any Eject which responds to Read invocations is by definition a
source" (paper §4).  Two base classes, one per discipline:

- :class:`PassiveSource` answers ``Read`` invocations (passive output)
  — the read-only discipline's producer role.
- :class:`ActiveSource` issues ``Write`` invocations (active output) —
  the write-only and conventional disciplines' producer role.

Concrete sources supply their records through :meth:`generate`;
:class:`ListSource` / :class:`ActiveListSource` are the everyday ones.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, TYPE_CHECKING

from repro.core.message import Invocation
from repro.core.syscalls import Sleep
from repro.transput.channels import ChannelTable
from repro.transput.filterbase import OUTPUT
from repro.transput.primitives import (
    Primitive,
    TransputEject,
    active_output,
)
from repro.transput.stream import (
    END_TRANSFER,
    StreamEndpoint,
    Transfer,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID


class PassiveSource(TransputEject):
    """A source that supplies data only in response to ``Read``s.

    Laziness is the point: "no computation need be done until the
    result is requested" (§4).  ``work_cost`` charges virtual time per
    record produced, modelling a source that computes its output.
    """

    eden_type = "PassiveSource"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        name: str | None = None,
        work_cost: float = 0.0,
        channel_mode: str = "open",
    ) -> None:
        super().__init__(kernel, uid, name=name)
        self.work_cost = work_cost
        self.channel_table = ChannelTable(self, [OUTPUT], mode=channel_mode)
        self._iterator: Iterator[Any] | None = None
        self._exhausted = False
        self.reads_served = 0

    def generate(self) -> Iterable[Any]:
        """The records this source produces; override in subclasses."""
        return ()

    def output_endpoint(self) -> StreamEndpoint:
        """The endpoint consumers should Read from."""
        if self.channel_table.mode == "capability":
            return StreamEndpoint(
                self.uid, self.channel_table.capability(OUTPUT)
            )
        return StreamEndpoint(self.uid, None)

    def _next_batch(self, batch: int) -> list[Any]:
        if self._iterator is None:
            self._iterator = iter(self.generate())
        taken: list[Any] = []
        while len(taken) < batch:
            try:
                taken.append(next(self._iterator))
            except StopIteration:
                self._exhausted = True
                break
        return taken

    def op_Read(self, invocation: Invocation):
        """Serve one Read: the passive-output half of the read pair."""
        self.channel_table.resolve(invocation.channel)
        batch = invocation.args[0] if invocation.args else 1
        taken = self._next_batch(max(1, int(batch)))
        if self.work_cost and taken:
            yield Sleep(self.work_cost * len(taken))
        self.reads_served += 1
        self.note_primitive(Primitive.PASSIVE_OUTPUT)
        if not taken:
            return END_TRANSFER
        return Transfer.of(taken)

    # The Eden prototype's bootstrap op name (§7) is a synonym for Read.
    op_Transfer = op_Read


class ListSource(PassiveSource):
    """A passive source over a fixed list of records."""

    eden_type = "ListSource"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        items: Iterable[Any] = (),
        name: str | None = None,
        work_cost: float = 0.0,
        channel_mode: str = "open",
    ) -> None:
        super().__init__(
            kernel, uid, name=name, work_cost=work_cost, channel_mode=channel_mode
        )
        self.items = list(items)
        self._position = 0

    def generate(self) -> Iterable[Any]:
        while self._position < len(self.items):
            item = self.items[self._position]
            self._position += 1
            yield item

    # -- durability ----------------------------------------------------

    def passive_representation(self) -> Any:
        return {"items": list(self.items), "position": self._position}

    def restore(self, data: Any) -> None:
        self.items = list(data["items"])
        self._position = int(data["position"])

    @classmethod
    def reactivate_blank(cls, kernel: "Kernel", uid: "UID", name: str) -> "ListSource":
        return cls(kernel, uid, items=(), name=name)


class FunctionSource(PassiveSource):
    """A passive source whose records come from a callable.

    ``producer`` is called once, lazily, at the first Read; it returns
    the iterable of records.  (The date/time source of §4 is the
    motivating example — see :mod:`repro.devices.clock_source`.)
    """

    eden_type = "FunctionSource"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        producer=None,
        name: str | None = None,
        work_cost: float = 0.0,
        channel_mode: str = "open",
    ) -> None:
        super().__init__(
            kernel, uid, name=name, work_cost=work_cost, channel_mode=channel_mode
        )
        self._producer = producer

    def generate(self) -> Iterable[Any]:
        if self._producer is None:
            return ()
        return self._producer()


class ActiveSource(TransputEject):
    """A source that pushes its records with ``Write`` invocations.

    The write-only discipline's producer ("Data sources would
    continually attempt to perform write invocations", §5).  Fan-out is
    natural here: every record is written to *each* output endpoint.

    The source starts pushing as soon as its outputs are connected —
    either at construction or later via :meth:`connect`.
    """

    eden_type = "ActiveSource"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        items: Iterable[Any] = (),
        outputs: Iterable[StreamEndpoint] = (),
        name: str | None = None,
        batch: int = 1,
        work_cost: float = 0.0,
    ) -> None:
        super().__init__(kernel, uid, name=name)
        self.items = list(items)
        self.outputs = list(outputs)
        self.batch = max(1, int(batch))
        self.work_cost = work_cost
        self.done = False
        self.writes_issued = 0

    def connect(self, endpoint: StreamEndpoint) -> None:
        """Add one more output endpoint (before the simulation runs)."""
        self.outputs.append(endpoint)

    def main(self):
        if not self.outputs:
            return  # nothing to push to; stay inert
        for start in range(0, len(self.items), self.batch):
            chunk = self.items[start : start + self.batch]
            if self.work_cost:
                yield Sleep(self.work_cost * len(chunk))
            for endpoint in self.outputs:
                yield from active_output(self, endpoint, Transfer.of(chunk))
                self.writes_issued += 1
        for endpoint in self.outputs:
            yield from active_output(self, endpoint, END_TRANSFER)
            self.writes_issued += 1
        self.done = True
