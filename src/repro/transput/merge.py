"""Tagged merging: fan-in that preserves stream identity.

Paper §5 observes that plain fan-in blurs origins: several correspondents
"cannot be distinguished" by the receiving filter.  In the read-only
discipline the *consumer* holds the input UIDs, so it can preserve
identity simply by remembering which endpoint each record came from —
something the write-only dual fundamentally cannot do.
:class:`TaggedMerger` does exactly that: records emerge as
``(label, record)`` pairs.

This is the mechanism behind Figure 4's report window (which labels by
source); the merger makes it available as an ordinary pipeline stage.
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

from repro.transput.primitives import active_input
from repro.transput.readonly import ReadOnlyFilter
from repro.transput.stream import StreamEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID


class TaggedMerger(ReadOnlyFilter):
    """Merge several input streams into one stream of labelled pairs.

    Args:
        inputs: ``(label, endpoint)`` pairs.
        strategy: ``"round_robin"`` (default — interleave one batch per
            live input per round) or ``"concat"`` (drain in order).
    """

    eden_type = "TaggedMerger"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        inputs: Sequence[tuple[str, StreamEndpoint]] = (),
        name: str | None = None,
        strategy: str = "round_robin",
        batch_in: int = 1,
        channel_mode: str = "open",
    ) -> None:
        if strategy not in ("concat", "round_robin"):
            raise ValueError(f"unknown strategy {strategy!r}")
        super().__init__(
            kernel, uid, transducer=None,
            inputs=[endpoint for _label, endpoint in inputs],
            name=name, batch_in=batch_in, channel_mode=channel_mode,
            input_strategy=strategy,
        )
        self.labels = [label for label, _endpoint in inputs]
        self._tagged_live: list[tuple[str, StreamEndpoint]] = []
        self._round_index = 0

    def connect_labelled(self, label: str, endpoint: StreamEndpoint) -> None:
        """Attach one more labelled input (before the simulation runs)."""
        self.labels.append(label)
        self.inputs.append(endpoint)

    def _pull_once(self):
        yield from self._ensure_started()
        if not self._tagged_live and not self._input_done:
            if not self._started_tagged():
                yield from self._finish_input()
                return
        if not self._tagged_live:
            yield from self._finish_input()
            return
        self._round_index %= len(self._tagged_live)
        label, endpoint = self._tagged_live[self._round_index]
        transfer = yield from active_input(self, endpoint, self.batch_in)
        self.pulls_issued += 1
        if transfer.at_end:
            self._tagged_live.pop(self._round_index)
            if not self._tagged_live:
                yield from self._finish_input()
            return
        if self.input_strategy == "round_robin":
            self._round_index += 1
        buffer = self.buffers[self.channel_table.default]
        for item in transfer.items:
            buffer.append((label, item))

    def _started_tagged(self) -> bool:
        if self._tagged_live or self._input_done:
            return bool(self._tagged_live)
        if not self.inputs:
            return False
        self._tagged_live = list(zip(self.labels, self.inputs))
        return True
