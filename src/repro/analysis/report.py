"""Plain-text table rendering for benchmark output.

Benchmarks print the rows the paper's claims describe; this keeps the
formatting in one place (monospace tables, right-aligned numbers).
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Numbers are right-aligned; floats shown with 2 decimals unless they
    are integral.
    """
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    columns = len(headers)
    for row in rendered_rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(headers[i])
        for i in range(columns)
    ]
    numeric = [
        all(_is_numeric(row[i]) for row in rendered_rows) if rendered_rows else False
        for i in range(columns)
    ]

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric[i]:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def _render(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 1e15:
            return str(int(cell))
        return f"{cell:.2f}"
    return str(cell)


def _is_numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def format_ratio(numerator: float, denominator: float) -> str:
    """``"0.50x"``-style ratio, guarding division by zero."""
    if denominator == 0:
        return "n/a"
    return f"{numerator / denominator:.2f}x"
