"""Trace analysis: sequence diagrams and interaction histograms.

The kernel's structured trace records every invocation, delivery and
reply with virtual timestamps.  These helpers turn a trace into things
humans read when debugging distributed behaviour:

- :func:`invocation_timeline` — (time, sender, operation, target) rows;
- :func:`interaction_histogram` — how many invocations each pair of
  Ejects exchanged;
- :func:`format_sequence_diagram` — an ASCII message-sequence chart.

They operate on completed traces; enable tracing with
``Kernel(trace=True)``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.tracing import Tracer


@dataclass(frozen=True)
class TimelineEntry:
    """One invocation as it appears on the timeline."""

    time: float
    sender: str
    operation: str
    target: str
    ticket: int


def invocation_timeline(tracer: Tracer) -> list[TimelineEntry]:
    """Every traced invocation, in send order.

    ``target`` is resolved to the receiving Eject's *name* using the
    matching deliver event when one exists (the invoke event only knows
    the UID).
    """
    delivered_names: dict[int, str] = {}
    for event in tracer.of_kind("deliver"):
        delivered_names[event.detail["ticket"]] = event.subject
    timeline = []
    for event in tracer.of_kind("invoke"):
        ticket = event.detail["ticket"]
        timeline.append(
            TimelineEntry(
                time=event.time,
                sender=event.subject,
                operation=event.detail["op"],
                target=delivered_names.get(ticket, event.detail["target"]),
                ticket=ticket,
            )
        )
    return timeline


def interaction_histogram(tracer: Tracer) -> Counter:
    """Counter of (sender, target, operation) invocation triples."""
    histogram: Counter = Counter()
    for entry in invocation_timeline(tracer):
        histogram[(entry.sender, entry.target, entry.operation)] += 1
    return histogram


def participants(tracer: Tracer) -> list[str]:
    """Every party that sent or received an invocation, in appearance
    order (senders first)."""
    seen: dict[str, None] = {}
    for entry in invocation_timeline(tracer):
        seen.setdefault(entry.sender)
        seen.setdefault(entry.target)
    return list(seen)


def format_sequence_diagram(
    tracer: Tracer, max_messages: int | None = 40
) -> str:
    """An ASCII message-sequence chart of the traced invocations.

    One column per participant; one row per invocation, drawn as an
    arrow from sender column to target column labelled with the
    operation and virtual time.  Replies are left out to keep the
    chart readable (every arrow implies its reply).
    """
    timeline = invocation_timeline(tracer)
    if max_messages is not None:
        timeline = timeline[:max_messages]
    if not timeline:
        return "(no invocations traced)"
    parties = participants(tracer)
    width = max(len(name) for name in parties) + 2
    positions = {name: index * width + width // 2 for index, name in
                 enumerate(parties)}
    total = width * len(parties)

    def column_line(fill_char: str = " ") -> list[str]:
        line = [fill_char] * total
        for name in parties:
            line[positions[name]] = "|"
        return line

    lines = []
    header = [" "] * total
    for name in parties:
        start = positions[name] - len(name) // 2
        start = max(0, min(start, total - len(name)))
        header[start : start + len(name)] = name
    lines.append("".join(header).rstrip())

    for entry in timeline:
        row = column_line()
        a, b = positions[entry.sender], positions[entry.target]
        left, right = min(a, b), max(a, b)
        for index in range(left + 1, right):
            row[index] = "-"
        if a == b:
            row[a] = "O"  # self-invocation
        elif b > a:
            row[right] = ">"
        else:
            row[left] = "<"
        label = f"  {entry.operation} @{entry.time:g}"
        lines.append(("".join(row) + label).rstrip())
    if max_messages is not None and len(invocation_timeline(tracer)) > max_messages:
        lines.append(f"... ({len(invocation_timeline(tracer)) - max_messages} "
                     "more messages)")
    return "\n".join(lines)
