"""Analysis: the paper's analytic cost model, measurement harness and
table formatting for benchmark output."""

from repro.analysis.comparison import (
    Measurement,
    measure_pipeline,
    sweep_pipeline_lengths,
)
from repro.analysis.cost_model import (
    EdgePrediction,
    PipelineShape,
    conventional_shape,
    invocation_savings,
    predict_edge_invocations,
    predict_graph_invocations,
    predicted_invocations,
    predicted_lazy_makespan,
    predicted_pipelined_makespan,
    readonly_shape,
    shape_for,
    writeonly_shape,
)
from repro.analysis.report import format_ratio, format_table
from repro.analysis.trace_tools import (
    TimelineEntry,
    format_sequence_diagram,
    interaction_histogram,
    invocation_timeline,
    participants,
)

__all__ = [
    "EdgePrediction",
    "Measurement",
    "PipelineShape",
    "conventional_shape",
    "TimelineEntry",
    "format_ratio",
    "format_sequence_diagram",
    "format_table",
    "interaction_histogram",
    "invocation_timeline",
    "participants",
    "invocation_savings",
    "measure_pipeline",
    "predict_edge_invocations",
    "predict_graph_invocations",
    "predicted_invocations",
    "predicted_lazy_makespan",
    "predicted_pipelined_makespan",
    "readonly_shape",
    "shape_for",
    "sweep_pipeline_lengths",
    "writeonly_shape",
]
