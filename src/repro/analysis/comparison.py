"""Measurement harness: run the same pipeline in every discipline.

Provides the paper-vs-measured rows the benchmarks print and
EXPERIMENTS.md records.  All runs use identity filters so the analytic
formulas of :mod:`repro.analysis.cost_model` apply exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cost_model import (
    predicted_invocations,
    shape_for,
)
from repro.core.kernel import Kernel
from repro.core.transport import TransportCosts
from repro.transput.filterbase import identity_transducer
from repro.transput.flow import FlowPolicy
from repro.transput.pipeline import compose_segment


@dataclass(frozen=True)
class Measurement:
    """One pipeline run's costs, measured and predicted."""

    discipline: str
    n_filters: int
    items: int
    ejects: int
    buffers: int
    invocations: int
    predicted_invocations: int
    predicted_ejects: int
    predicted_buffers: int
    context_switches: int
    virtual_makespan: float

    @property
    def invocations_per_datum(self) -> float:
        """Measured invocations divided by records moved."""
        return self.invocations / self.items if self.items else 0.0

    @property
    def matches_prediction(self) -> bool:
        """Whether the exact count claims held on this run."""
        return (
            self.invocations == self.predicted_invocations
            and self.ejects == self.predicted_ejects
            and self.buffers == self.predicted_buffers
        )


def measure_pipeline(
    discipline: str,
    n_filters: int,
    items: int,
    batch: int = 1,
    lookahead: int = 0,
    placement=None,
    costs: TransportCosts | None = None,
    source_work_cost: float = 0.0,
    filter_work_cost: float = 0.0,
    sink_work_cost: float = 0.0,
    seed: int = 0,
) -> Measurement:
    """Build, run and measure one identity pipeline.

    A fresh kernel per call keeps measurements independent.
    """
    kernel = Kernel(seed=seed, costs=costs)
    transducers = []
    for _ in range(n_filters):
        transducer = identity_transducer()
        transducer.cost_per_item = filter_work_cost
        transducers.append(transducer)
    flow = FlowPolicy(lookahead=lookahead, batch=batch)
    pipeline = compose_segment(
        kernel,
        discipline,
        [f"record-{index}" for index in range(items)],
        transducers,
        flow=flow,
        placement=placement,
        source_work_cost=source_work_cost,
        sink_work_cost=sink_work_cost,
    )
    output = pipeline.run_to_completion()
    assert len(output) == items, (
        f"{discipline} pipeline lost records: {len(output)} != {items}"
    )
    shape = shape_for(discipline, n_filters)
    return Measurement(
        discipline=discipline,
        n_filters=n_filters,
        items=items,
        ejects=pipeline.eject_count(),
        buffers=pipeline.buffer_count(),
        invocations=pipeline.invocations_used(),
        predicted_invocations=predicted_invocations(
            discipline, n_filters, items, batch
        ),
        predicted_ejects=shape.ejects,
        predicted_buffers=shape.buffers,
        context_switches=pipeline.context_switches(),
        virtual_makespan=pipeline.virtual_makespan or 0.0,
    )


def sweep_pipeline_lengths(
    disciplines: tuple[str, ...],
    lengths: tuple[int, ...],
    items: int,
    **kwargs,
) -> list[Measurement]:
    """Measure every (discipline, n) combination — the T1/T2 sweep."""
    return [
        measure_pipeline(discipline, n_filters, items, **kwargs)
        for n_filters in lengths
        for discipline in disciplines
    ]
