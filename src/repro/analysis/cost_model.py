"""The paper's analytic cost model (claims C1 and C2).

Paper §4:

    "a sequence of n filters, a source and a sink can all be
    implemented by n+2 Ejects.  This means that only n+1 invocations
    are needed to transfer a datum from one end of the pipeline to the
    other.  Conversely, if each filter were to perform active output
    as well as active input, 2n+2 invocations would be needed, as
    would n+1 passive buffer Ejects."

These formulas are *exact* for identity pipelines on our simulator
once end-of-stream traffic is included: a stream of m records takes
m + 1 transfers per hop (m data + 1 END), so total invocations are
``hops × (m + 1)``.  Tests assert measured == predicted, which
validates the simulator against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineShape:
    """A pipeline's static size for the paper's count claims."""

    ejects: int
    buffers: int
    invocations_per_datum: float


def readonly_shape(n_filters: int) -> PipelineShape:
    """Read-only discipline: n + 2 Ejects, 0 buffers, n + 1 inv/datum."""
    _check(n_filters)
    return PipelineShape(
        ejects=n_filters + 2,
        buffers=0,
        invocations_per_datum=n_filters + 1,
    )


def writeonly_shape(n_filters: int) -> PipelineShape:
    """Write-only discipline: the exact dual — identical counts."""
    return readonly_shape(n_filters)


def conventional_shape(n_filters: int) -> PipelineShape:
    """Conventional: 2n + 3 Ejects (n + 1 of them buffers), 2n + 2
    invocations per datum."""
    _check(n_filters)
    return PipelineShape(
        ejects=2 * n_filters + 3,
        buffers=n_filters + 1,
        invocations_per_datum=2 * n_filters + 2,
    )


def shape_for(discipline: str, n_filters: int) -> PipelineShape:
    """Shape lookup by discipline name."""
    table = {
        "readonly": readonly_shape,
        "writeonly": writeonly_shape,
        "conventional": conventional_shape,
    }
    if discipline not in table:
        raise ValueError(f"unknown discipline {discipline!r}")
    return table[discipline](n_filters)


def predicted_invocations(
    discipline: str, n_filters: int, items: int, batch: int = 1
) -> int:
    """Exact invocation count for an identity pipeline moving ``items``
    records in batches of ``batch``.

    Each hop moves ``ceil(items / batch)`` data transfers plus one END
    transfer; the hop count per datum comes from the discipline shape.
    """
    _check(n_filters)
    if items < 0:
        raise ValueError(f"items must be >= 0, got {items}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    hops = int(shape_for(discipline, n_filters).invocations_per_datum)
    transfers_per_hop = -(-items // batch) + 1  # ceil + END
    return hops * transfers_per_hop


def invocation_savings(n_filters: int) -> float:
    """The paper's "roughly half": read-only / conventional inv ratio."""
    _check(n_filters)
    return (n_filters + 1) / (2 * n_filters + 2)


def predicted_lazy_makespan(
    n_filters: int, items: int, hop_cost: float, work_cost: float = 0.0
) -> float:
    """Virtual makespan of a *lazy* read-only pipeline.

    Every datum's journey is a chain of n+1 request/reply round trips
    (2 messages each), fully serialized by demand-driven flow, plus the
    per-stage compute.  Used by experiment T4's serialization baseline.
    """
    _check(n_filters)
    hops = n_filters + 1
    transfers = items + 1
    per_transfer = 2 * hops * hop_cost
    compute = items * work_cost * (n_filters + 1)
    return transfers * per_transfer + compute


def predicted_pipelined_makespan(
    n_filters: int, items: int, stage_cost: float
) -> float:
    """Ideal pipeline-parallel lower bound: fill + drain at the
    bottleneck stage rate (experiment T4's parallel asymptote)."""
    _check(n_filters)
    stages = n_filters + 2
    return (items + stages - 1) * stage_cost


def _check(n_filters: int) -> None:
    if n_filters < 0:
        raise ValueError(f"n_filters must be >= 0, got {n_filters}")


# ---------------------------------------------------------------------------
# Per-edge predictions for dataflow graphs (claims C1/C2 generalized
# along claim C3's fan-out/fan-in duality).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EdgePrediction:
    """One graph edge's predicted invocation cost.

    ``records`` is how many records cross the edge (scatter splits the
    stream, broadcast copies it — computed by routing the actual
    records, because hash partitions are data-dependent).  An
    asymmetric hop costs ``ceil(records / batch) + 1`` invocations
    (data transfers + END); a conventional hop costs double, because
    both sides of its passive buffer are invocations (paper Figure 1).
    """

    src: str
    dst: str
    segment: str
    discipline: str
    records: int
    batch: int
    invocations: int


def predict_edge_invocations(discipline: str, records: int,
                             batch: int = 1) -> int:
    """Invocations for one edge moving ``records`` records."""
    if records < 0:
        raise ValueError(f"records must be >= 0, got {records}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    transfers = -(-records // batch) + 1  # ceil + END
    return transfers * (2 if discipline == "conventional" else 1)


def predict_graph_invocations(graph, records=None) -> list[EdgePrediction]:
    """Per-edge C1/C2 predictions for a :class:`repro.api.Graph`.

    Assumes record-preserving stages (identity-like transducers), the
    same assumption :func:`predicted_invocations` makes for linear
    chains — and reduces to it exactly on a linear graph: the per-edge
    sum is ``hops × (ceil(m/batch)+1)`` (×2 conventional).  Sum the
    ``invocations`` fields to gate a measured
    :class:`repro.api.GraphResult.invocations`; compare per edge to
    localize a miscounting hop.
    """
    return [
        EdgePrediction(
            src=edge.src,
            dst=edge.dst,
            segment=segment.name,
            discipline=segment.discipline,
            records=count,
            batch=segment.flow.batch,
            invocations=predict_edge_invocations(
                segment.discipline, count, segment.flow.batch
            ),
        )
        for edge, segment, count in graph.edge_flow(records)
    ]
