"""Column- and coding-oriented filters: cut, paste, run-length coding.

More members of the §3 catalogue.  The run-length pair gives the
property tests a lossless round trip to verify through every
discipline (decode ∘ encode = identity).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.errors import StreamProtocolError
from repro.transput.filterbase import Transducer, make_transducer


def cut(fields: Sequence[int], delimiter: str | None = None) -> Transducer:
    """Select fields (0-based) from each line (like ``cut``).

    Missing fields are skipped; the output joins the selected fields
    with a single space (or the delimiter when given).
    """
    wanted = list(fields)
    if any(index < 0 for index in wanted):
        raise ValueError("field indexes must be >= 0")
    joiner = delimiter if delimiter is not None else " "

    def select(line: Any):
        parts = str(line).split(delimiter)
        chosen = [parts[i] for i in wanted if i < len(parts)]
        return (joiner.join(chosen),)

    return make_transducer(select, name=f"cut({wanted})")


def paste(columns: int, delimiter: str = "\t") -> Transducer:
    """Merge every ``columns`` consecutive records into one line."""
    if columns < 1:
        raise ValueError(f"columns must be >= 1, got {columns}")

    class _Paste(Transducer):
        name = f"paste({columns})"

        def __init__(self) -> None:
            self._held: list[str] = []

        def step(self, item: Any):
            self._held.append(str(item))
            if len(self._held) == columns:
                line = delimiter.join(self._held)
                self._held = []
                return (line,)
            return ()

        def finish(self):
            if self._held:
                line = delimiter.join(self._held)
                self._held = []
                return (line,)
            return ()

    return _Paste()


def rle_encode() -> Transducer:
    """Run-length encode: maximal runs become ``(count, record)`` pairs."""

    class _Encode(Transducer):
        name = "rle-encode"
        _NOTHING = object()

        def __init__(self) -> None:
            self._current: Any = self._NOTHING
            self._count = 0

        def step(self, item: Any):
            if self._current is self._NOTHING:
                self._current, self._count = item, 1
                return ()
            if item == self._current:
                self._count += 1
                return ()
            out = ((self._count, self._current),)
            self._current, self._count = item, 1
            return out

        def finish(self):
            if self._current is self._NOTHING:
                return ()
            out = ((self._count, self._current),)
            self._current, self._count = self._NOTHING, 0
            return out

    return _Encode()


def rle_decode() -> Transducer:
    """Invert :func:`rle_encode`: ``(count, record)`` -> count records."""

    def expand(pair: Any):
        if (
            not isinstance(pair, tuple)
            or len(pair) != 2
            or not isinstance(pair[0], int)
            or pair[0] < 1
        ):
            raise StreamProtocolError(
                f"rle-decode expects (count, record) pairs, got {pair!r}"
            )
        count, record = pair
        return (record,) * count

    return make_transducer(expand, name="rle-decode")
