"""A stream editor with a command input (paper §5's multi-input filter).

"Examples of programs with multiple inputs include file comparison
programs and stream editors that have a command input as well as a
text input."

The editor's command language (a sed subset):

- ``s/PATTERN/REPLACEMENT/`` — substitute everywhere on the line;
- ``d/PATTERN/`` — delete lines matching PATTERN;
- ``p/PATTERN/`` — keep *only* lines matching PATTERN;
- ``a/TEXT/`` — append TEXT as a new line after every line;
- ``i/TEXT/`` — insert TEXT as a new line before every line.

Any delimiter may replace ``/`` (the character after the command
letter), as in sed.  Commands arrive either at construction or through
the ``commands`` secondary input when run under a
:class:`~repro.transput.writeonly.WriteOnlyFilter`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.errors import EdenError
from repro.transput.filterbase import Transducer


class EditorCommandError(EdenError):
    """A stream-editor command could not be parsed."""


@dataclass(frozen=True)
class _Command:
    kind: str  # "s", "d", "p", "a", "i"
    pattern: re.Pattern | None
    replacement: str | None
    text: str | None

    def apply(self, lines: list[str]) -> list[str]:
        if self.kind == "s":
            assert self.pattern is not None and self.replacement is not None
            return [self.pattern.sub(self.replacement, line) for line in lines]
        if self.kind == "d":
            assert self.pattern is not None
            return [line for line in lines if not self.pattern.search(line)]
        if self.kind == "p":
            assert self.pattern is not None
            return [line for line in lines if self.pattern.search(line)]
        if self.kind == "a":
            assert self.text is not None
            out: list[str] = []
            for line in lines:
                out.append(line)
                out.append(self.text)
            return out
        if self.kind == "i":
            assert self.text is not None
            out = []
            for line in lines:
                out.append(self.text)
                out.append(line)
            return out
        raise EditorCommandError(f"unknown command kind {self.kind!r}")


def parse_command(source: str) -> _Command:
    """Parse one editor command line."""
    stripped = source.strip()
    if len(stripped) < 2:
        raise EditorCommandError(f"command too short: {source!r}")
    kind, delimiter = stripped[0], stripped[1]
    if kind not in "sdpai":
        raise EditorCommandError(f"unknown command {kind!r} in {source!r}")
    body = stripped[2:]
    if body.endswith(delimiter):
        body = body[:-1]
    parts = body.split(delimiter)
    if kind == "s":
        if len(parts) != 2:
            raise EditorCommandError(
                f"s needs PATTERN{delimiter}REPLACEMENT: {source!r}"
            )
        return _Command(
            kind="s",
            pattern=_compile(parts[0], source),
            replacement=parts[1],
            text=None,
        )
    if len(parts) != 1:
        raise EditorCommandError(f"{kind} takes one operand: {source!r}")
    if kind in "dp":
        return _Command(
            kind=kind, pattern=_compile(parts[0], source),
            replacement=None, text=None,
        )
    return _Command(kind=kind, pattern=None, replacement=None, text=parts[0])


def _compile(pattern: str, source: str) -> re.Pattern:
    try:
        return re.compile(pattern)
    except re.error as exc:
        raise EditorCommandError(f"bad pattern in {source!r}: {exc}") from exc


class StreamEditor(Transducer):
    """The editor transducer; commands apply to every line in order.

    When hosted by a write-only filter with a ``commands`` secondary
    input, the commands arrive through :meth:`accept_secondary` before
    the first text record is processed (paper §5's "secondary inputs,
    which are actively read").
    """

    name = "stream-editor"

    def __init__(self, commands: Iterable[str] = ()) -> None:
        self._commands = [parse_command(command) for command in commands]

    @property
    def command_count(self) -> int:
        """How many commands are loaded."""
        return len(self._commands)

    def accept_secondary(self, input_name: str, items: list) -> None:
        """Receive the command script from a secondary input."""
        if input_name != "commands":
            return
        self._commands.extend(
            parse_command(str(line)) for line in items if str(line).strip()
        )

    def step(self, item: Any):
        lines = [str(item)]
        for command in self._commands:
            lines = command.apply(lines)
            if not lines:
                return ()
        return tuple(lines)
