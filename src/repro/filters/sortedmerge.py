"""Sorted-stream merging: another genuinely multi-input filter (§5).

:class:`SortedMergeFilter` reads two sorted input streams and produces
their sorted merge — the classic merge step, expressed in the
read-only discipline where holding two input UIDs is natural.  Like
the :class:`~repro.filters.compare.DifferenceFilter`, it shows why the
paper wants fan-in on the consumer side: the merge *must* know which
stream each record came from to interleave correctly, which a
write-only (passive-input) filter cannot.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, TYPE_CHECKING

from repro.transput.filterbase import OUTPUT
from repro.transput.primitives import active_input
from repro.transput.readonly import ReadOnlyFilter
from repro.transput.stream import StreamEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID


class SortedMergeFilter(ReadOnlyFilter):
    """Merge two individually sorted streams into one sorted stream.

    Args:
        left, right: the input endpoints (each must yield records in
            non-decreasing ``key`` order; the output then is too).
        key: sort key (default: the record itself).
    """

    eden_type = "SortedMergeFilter"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        left: StreamEndpoint | None = None,
        right: StreamEndpoint | None = None,
        name: str | None = None,
        key: Callable[[Any], Any] | None = None,
        batch_in: int = 1,
        channel_mode: str = "open",
    ) -> None:
        inputs = [ep for ep in (left, right) if ep is not None]
        super().__init__(
            kernel, uid, transducer=None, inputs=inputs, name=name,
            batch_in=batch_in, channel_mode=channel_mode,
        )
        self._key = key if key is not None else lambda record: record
        self._left: deque[Any] = deque()
        self._right: deque[Any] = deque()
        self._left_ended = False
        self._right_ended = False

    def _pull_once(self):
        yield from self._ensure_started()
        if len(self.inputs) != 2:
            yield from self._finish_input()
            return
        # Refill whichever side is empty and still open (one per call,
        # keeping per-pull progress bounded like the base class).
        if not self._left_ended and not self._left:
            transfer = yield from active_input(self, self.inputs[0], self.batch_in)
            self.pulls_issued += 1
            if transfer.at_end:
                self._left_ended = True
            else:
                self._left.extend(transfer.items)
        elif not self._right_ended and not self._right:
            transfer = yield from active_input(self, self.inputs[1], self.batch_in)
            self.pulls_issued += 1
            if transfer.at_end:
                self._right_ended = True
            else:
                self._right.extend(transfer.items)
        self._merge_ready()
        if (
            self._left_ended and self._right_ended
            and not self._left and not self._right
        ):
            yield from self._finish_input()

    def _merge_ready(self) -> None:
        out = self.buffers[OUTPUT]
        while True:
            if self._left and self._right:
                if self._key(self._left[0]) <= self._key(self._right[0]):
                    out.append(self._left.popleft())
                else:
                    out.append(self._right.popleft())
            elif self._left and self._right_ended:
                out.append(self._left.popleft())
            elif self._right and self._left_ended:
                out.append(self._right.popleft())
            else:
                return
