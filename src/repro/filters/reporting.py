"""Report-producing filters (paper §5, Figures 3 and 4).

"It is also common for a program to produce a stream of *Reports*
(i.e. monitoring messages) in addition to its main output stream."

:func:`with_reports` wraps any single-output transducer so it also
emits progress reports on the ``Report`` channel; these are the impure
filters that motivate channel identifiers (read-only) and natural
fan-out (write-only).
"""

from __future__ import annotations

from typing import Any

from repro.transput.filterbase import (
    OUTPUT,
    REPORT,
    ReportingTransducer,
    Transducer,
)


class _Reporter(ReportingTransducer):
    """Wraps ``inner``; reports progress every ``every`` records."""

    def __init__(self, inner: Transducer, label: str, every: int) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._inner = inner
        self._label = label
        self._every = every
        self._seen = 0
        self._emitted = 0
        self.name = f"report({inner.name})"
        self.cost_per_item = inner.cost_per_item
        self.channels = (OUTPUT, REPORT)

    def start(self) -> dict[str, Any]:
        return {
            OUTPUT: list(self._inner.start()),
            REPORT: [f"[{self._label}] starting"],
        }

    def step(self, item: Any) -> dict[str, Any]:
        out = list(self._inner.step(item))
        self._seen += 1
        self._emitted += len(out)
        reports = []
        if self._seen % self._every == 0:
            reports.append(
                f"[{self._label}] {self._seen} in, {self._emitted} out"
            )
        return {OUTPUT: out, REPORT: reports}

    def finish(self) -> dict[str, Any]:
        out = list(self._inner.finish())
        self._emitted += len(out)
        return {
            OUTPUT: out,
            REPORT: [
                f"[{self._label}] done: {self._seen} in, {self._emitted} out"
            ],
        }


def with_reports(
    inner: Transducer, label: str | None = None, every: int = 5
) -> ReportingTransducer:
    """Add a ``Report`` channel to any single-output transducer.

    Args:
        inner: the transformation to wrap.
        label: report prefix (defaults to the inner transducer's name).
        every: emit one progress report per this many input records.
    """
    return _Reporter(inner, label=label or inner.name, every=every)


class ErrorReporting(ReportingTransducer):
    """Applies ``fn`` per record; failures go to the Report channel.

    Records that ``fn`` maps cleanly pass to ``Output``; records it
    raises on are reported (and dropped) — the "monitoring messages"
    use-case with real content.
    """

    channels = (OUTPUT, REPORT)

    def __init__(self, fn, label: str = "errors") -> None:
        self._fn = fn
        self._label = label
        self.name = f"error-reporting({label})"
        self._failures = 0

    def step(self, item: Any) -> dict[str, Any]:
        try:
            return {OUTPUT: [self._fn(item)]}
        except Exception as exc:
            self._failures += 1
            return {REPORT: [f"[{self._label}] {item!r}: {exc}"]}

    def finish(self) -> dict[str, Any]:
        return {REPORT: [f"[{self._label}] {self._failures} failures"]}


def fanout(channels: int) -> ReportingTransducer:
    """Duplicate the stream onto ``channels`` output channels.

    Read-only fan-out *via channel identifiers*: each duplicate stream
    is read independently on channel ``"out<i>"`` — the §5 remedy to
    the no-fan-out limitation (experiment T5).
    """
    if channels < 1:
        raise ValueError(f"channels must be >= 1, got {channels}")
    names = tuple(f"out{i}" for i in range(channels))

    class _Fanout(ReportingTransducer):
        name = f"fanout({channels})"

        def __init__(self) -> None:
            self.channels = names

        def step(self, item: Any) -> dict[str, Any]:
            return {channel: [item] for channel in names}

    return _Fanout()
