"""Text-processing filters: numbering, pagination, counting, sorting.

"Text formatters, stream editors, spelling checkers, prettyprinters and
paginators are all filters" (paper §3).  The stateful ones demonstrate
that transducers may buffer arbitrarily (``sort_lines`` holds the whole
stream until ``finish``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.transput.filterbase import Transducer


def number_lines(start: int = 1, template: str = "{number:>6}  {line}") -> Transducer:
    """Prefix each line with its line number (like ``nl`` / ``cat -n``)."""

    class _Numberer(Transducer):
        name = "number-lines"

        def __init__(self) -> None:
            self._next = start

        def step(self, line: Any):
            numbered = template.format(number=self._next, line=line)
            self._next += 1
            return (numbered,)

    return _Numberer()


def paginate(
    page_length: int = 60, title: str = "", header: bool = True
) -> Transducer:
    """A paginator: break the stream into pages with headers.

    Every ``page_length`` body lines are preceded by a header line and
    followed by a form-feed marker record — the paper's canonical
    "paginated listing" example (§4: "If a paginated listing were
    required, the printer server would be requested to read from the
    paginator, and the paginator to read from the file").
    """
    if page_length < 1:
        raise ValueError(f"page_length must be >= 1, got {page_length}")

    class _Paginator(Transducer):
        name = f"paginate({page_length})"

        def __init__(self) -> None:
            self._line_on_page = 0
            self._page = 0

        def _header(self) -> list[str]:
            self._page += 1
            shown = f" {title}" if title else ""
            return [f"---{shown} page {self._page} ---"] if header else []

        def step(self, line: Any):
            out: list[Any] = []
            if self._line_on_page == 0:
                out.extend(self._header())
            out.append(line)
            self._line_on_page += 1
            if self._line_on_page >= page_length:
                self._line_on_page = 0
                out.append("\f")
            return out

        def finish(self):
            if self._line_on_page:
                return ("\f",)
            return ()

    return _Paginator()


@dataclass(frozen=True)
class WordCountSummary:
    """The terminal record emitted by :func:`word_count`."""

    lines: int
    words: int
    characters: int

    def __str__(self) -> str:
        return f"{self.lines:7d} {self.words:7d} {self.characters:7d}"


def word_count() -> Transducer:
    """Count lines/words/characters; emits one summary record at end.

    A filter whose *entire* output appears at end of input — the
    extreme case of buffering.
    """

    class _WordCount(Transducer):
        name = "wc"

        def __init__(self) -> None:
            self._lines = 0
            self._words = 0
            self._chars = 0

        def step(self, line: Any):
            text = str(line)
            self._lines += 1
            self._words += len(text.split())
            self._chars += len(text) + 1  # + newline, as wc would see it
            return ()

        def finish(self):
            return (
                WordCountSummary(
                    lines=self._lines, words=self._words, characters=self._chars
                ),
            )

    return _WordCount()


def sort_lines(key: Callable[[Any], Any] | None = None, reverse: bool = False) -> Transducer:
    """Sort the whole stream (emits everything at end of input)."""

    class _Sorter(Transducer):
        name = "sort"

        def __init__(self) -> None:
            self._held: list[Any] = []

        def step(self, line: Any):
            self._held.append(line)
            return ()

        def finish(self):
            out = sorted(self._held, key=key, reverse=reverse)
            self._held = []
            return tuple(out)

    return _Sorter()


def unique_adjacent() -> Transducer:
    """Drop consecutive duplicate records (like ``uniq``)."""

    class _Unique(Transducer):
        name = "uniq"
        _NOTHING = object()

        def __init__(self) -> None:
            self._previous: Any = self._NOTHING

        def step(self, line: Any):
            if line == self._previous:
                return ()
            self._previous = line
            return (line,)

    return _Unique()


def head(count: int) -> Transducer:
    """Pass only the first ``count`` records.

    Note: a transducer cannot terminate its upstream early; under lazy
    read-only transput the *sink* stops asking, so nothing more is
    computed anyway — laziness subsumes early exit (paper §4).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")

    class _Head(Transducer):
        name = f"head({count})"

        def __init__(self) -> None:
            self._seen = 0

        def step(self, line: Any):
            if self._seen < count:
                self._seen += 1
                return (line,)
            return ()

    return _Head()


def tail(count: int) -> Transducer:
    """Pass only the last ``count`` records (emitted at end of input)."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")

    class _Tail(Transducer):
        name = f"tail({count})"

        def __init__(self) -> None:
            self._held: list[Any] = []

        def step(self, line: Any):
            self._held.append(line)
            if len(self._held) > count:
                self._held.pop(0)
            return ()

        def finish(self):
            out = tuple(self._held)
            self._held = []
            return out

    return _Tail()


def pretty_print(indent: int = 2) -> Transducer:
    """A tiny pretty-printer for brace-structured text.

    Re-indents each line according to the running ``{``/``}`` nesting
    depth — the "prettyprinter" of the paper's filter list.
    """
    if indent < 0:
        raise ValueError(f"indent must be >= 0, got {indent}")

    class _Pretty(Transducer):
        name = "prettyprint"

        def __init__(self) -> None:
            self._depth = 0

        def step(self, line: Any):
            text = str(line).strip()
            leading_closers = len(text) - len(text.lstrip("}"))
            self._depth = max(0, self._depth - leading_closers)
            rendered = " " * (indent * self._depth) + text
            net = text.count("{") - (text.count("}") - leading_closers)
            self._depth = max(0, self._depth + net)
            return (rendered,)

    return _Pretty()
