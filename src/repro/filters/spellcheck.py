"""A spelling checker filter (from the paper's §3 list of filters).

Emits the misspelt words found in its input — i.e. its output is a
transformation (projection) of its input, like every filter.  The
dictionary may be supplied at construction or through a ``dictionary``
secondary input (write-only discipline, paper §5).
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.transput.filterbase import OUTPUT, REPORT, ReportingTransducer, Transducer

_WORD = re.compile(r"[A-Za-z']+")

#: A small built-in dictionary so the filter works out of the box.
DEFAULT_WORDS = frozenset(
    """
    a about after all an and any are as at be because been but by can
    could data do each eden eject ejects file filter filters for from
    had has have he her his i if in input into is it its kernel may
    more most no not of on one only operating or other output paper
    pipe pipeline process program read she so some stream system than
    that the their them then there these they this to transput two
    unix was we were what when which while will with would write you
    """.split()
)


def _words_of(line: Any) -> list[str]:
    return [word.lower() for word in _WORD.findall(str(line))]


class SpellChecker(Transducer):
    """Emit each misspelt word (once per occurrence, lowercased)."""

    name = "spell"

    def __init__(self, dictionary: Iterable[str] | None = None) -> None:
        self._dictionary = (
            {word.lower() for word in dictionary}
            if dictionary is not None
            else set(DEFAULT_WORDS)
        )

    @property
    def dictionary_size(self) -> int:
        """Words currently accepted as correct."""
        return len(self._dictionary)

    def accept_secondary(self, input_name: str, items: list) -> None:
        """Extend the dictionary from a secondary input stream."""
        if input_name != "dictionary":
            return
        for line in items:
            self._dictionary.update(_words_of(line))

    def step(self, item: Any):
        return tuple(
            word for word in _words_of(item) if word not in self._dictionary
        )


class SpellCheckReporter(ReportingTransducer):
    """Pass text through; report misspellings on the Report channel.

    The shape Figure 3/4 motivate: primary output is the untouched
    text, the monitoring stream carries the complaints.
    """

    channels = (OUTPUT, REPORT)
    name = "spell-report"

    def __init__(self, dictionary: Iterable[str] | None = None) -> None:
        self._checker = SpellChecker(dictionary)
        self._line = 0

    def accept_secondary(self, input_name: str, items: list) -> None:
        """Extend the dictionary from a secondary input stream."""
        self._checker.accept_secondary(input_name, items)

    def step(self, item: Any):
        self._line += 1
        bad = self._checker.step(item)
        reports = [f"line {self._line}: misspelt {word!r}" for word in bad]
        return {OUTPUT: [item], REPORT: reports}
