"""Pattern-based filters: the paper's motivating examples.

    "A simple example of a filter is a program whose output is a copy
    of its input except that all lines beginning with 'C' have been
    omitted.  Such a filter might be used to strip comment lines from
    a Fortran program.  Most filters may be parameterised: a more
    useful program is one which deletes all lines matching a pattern
    given as an argument."
"""

from __future__ import annotations

import re

from repro.transput.filterbase import (
    Transducer,
    filter_transducer,
    make_transducer,
)


def comment_stripper(marker: str = "C") -> Transducer:
    """The paper's Fortran comment stripper.

    Omits every line *beginning with* ``marker`` (exactly the §3
    description; pass ``"C"`` for Fortran, ``"#"`` for shellish input).
    """
    transducer = filter_transducer(
        lambda line: not line.startswith(marker),
        name=f"strip-comments({marker!r})",
    )
    return transducer


def delete_matching(pattern: str) -> Transducer:
    """Delete all lines matching ``pattern`` (a regular expression) —
    the parameterised generalisation of the comment stripper."""
    compiled = re.compile(pattern)
    return filter_transducer(
        lambda line: compiled.search(line) is None,
        name=f"delete({pattern!r})",
    )


def grep(pattern: str) -> Transducer:
    """Keep only lines matching ``pattern`` (a regular expression)."""
    compiled = re.compile(pattern)
    return filter_transducer(
        lambda line: compiled.search(line) is not None,
        name=f"grep({pattern!r})",
    )


def substitute(pattern: str, replacement: str, count: int = 0) -> Transducer:
    """Replace ``pattern`` with ``replacement`` in every line (sed s///).

    ``count=0`` replaces every occurrence.
    """
    compiled = re.compile(pattern)
    return make_transducer(
        lambda line: (compiled.sub(replacement, line, count=count),),
        name=f"sub({pattern!r} -> {replacement!r})",
    )


def between(start_pattern: str, end_pattern: str) -> Transducer:
    """Keep lines between a start marker and an end marker (inclusive).

    A stateful pattern filter, like ``sed -n '/a/,/b/p'``.
    """
    start_re = re.compile(start_pattern)
    end_re = re.compile(end_pattern)

    class _Between(Transducer):
        name = f"between({start_pattern!r}, {end_pattern!r})"

        def __init__(self) -> None:
            self._inside = False

        def step(self, line: str):
            if not self._inside:
                if start_re.search(line):
                    self._inside = True
                    return (line,)
                return ()
            if end_re.search(line):
                self._inside = False
            return (line,)

    return _Between()
