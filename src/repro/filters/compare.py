"""A file-comparison filter: two inputs, one difference stream.

Paper §5's other multi-input example ("file comparison programs").
:class:`DifferenceFilter` holds *two* input endpoints — fan-in, which
the read-only discipline supports directly because "the filter Eject F
knows the Unique Identifier of the Eject from which it requests input
data" — and emits a :class:`DiffRecord` per position where the streams
disagree.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from repro.transput.filterbase import OUTPUT
from repro.transput.primitives import active_input
from repro.transput.readonly import ReadOnlyFilter
from repro.transput.stream import StreamEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import Kernel
    from repro.core.uid import UID

#: Marker used in DiffRecord when one stream has ended.
MISSING = "<absent>"


@dataclass(frozen=True)
class DiffRecord:
    """One position where the two inputs disagree."""

    index: int
    left: Any
    right: Any

    def __str__(self) -> str:
        return f"{self.index}: {self.left!r} | {self.right!r}"


class DifferenceFilter(ReadOnlyFilter):
    """Compare two streams record-by-record; emit differences.

    Args:
        left, right: the two input endpoints.
        emit_equal: also emit ``("=", record)`` tuples for agreeing
            positions (default only differences flow downstream).
    """

    eden_type = "DifferenceFilter"

    def __init__(
        self,
        kernel: "Kernel",
        uid: "UID",
        left: StreamEndpoint | None = None,
        right: StreamEndpoint | None = None,
        name: str | None = None,
        emit_equal: bool = False,
        batch_in: int = 1,
        channel_mode: str = "open",
    ) -> None:
        inputs = [ep for ep in (left, right) if ep is not None]
        super().__init__(
            kernel, uid, transducer=None, inputs=inputs, name=name,
            batch_in=batch_in, channel_mode=channel_mode,
        )
        self.emit_equal = emit_equal
        self._left: deque[Any] = deque()
        self._right: deque[Any] = deque()
        self._left_ended = False
        self._right_ended = False
        self._index = 0
        self.differences = 0

    def _pull_once(self):
        yield from self._ensure_started()
        if len(self.inputs) != 2:
            yield from self._finish_input()
            return
        if not self._left_ended and not self._left:
            transfer = yield from active_input(self, self.inputs[0], self.batch_in)
            self.pulls_issued += 1
            if transfer.at_end:
                self._left_ended = True
            else:
                self._left.extend(transfer.items)
        elif not self._right_ended and not self._right:
            transfer = yield from active_input(self, self.inputs[1], self.batch_in)
            self.pulls_issued += 1
            if transfer.at_end:
                self._right_ended = True
            else:
                self._right.extend(transfer.items)
        self._compare_ready()
        if (
            self._left_ended
            and self._right_ended
            and not self._left
            and not self._right
        ):
            yield from self._finish_input()

    def _compare_ready(self) -> None:
        out = self.buffers[OUTPUT]
        while self._left and self._right:
            left, right = self._left.popleft(), self._right.popleft()
            if left != right:
                self.differences += 1
                out.append(DiffRecord(self._index, left, right))
            elif self.emit_equal:
                out.append(("=", left))
            self._index += 1
        while self._left and self._right_ended:
            self.differences += 1
            out.append(DiffRecord(self._index, self._left.popleft(), MISSING))
            self._index += 1
        while self._right and self._left_ended:
            self.differences += 1
            out.append(DiffRecord(self._index, MISSING, self._right.popleft()))
            self._index += 1
