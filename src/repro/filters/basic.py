"""Everyday line filters (the utilities of paper §3).

All of these are *pure* transducers: they transform records without
pumping them, which is precisely the property the read-only discipline
exploits ("the filter Ejects are pure transformers: they do not also
pump data").
"""

from __future__ import annotations

from typing import Any

from repro.transput.filterbase import (
    Transducer,
    make_transducer,
    map_transducer,
)


def identity() -> Transducer:
    """Pass every record through unchanged."""
    return map_transducer(lambda item: item, name="identity")


def upper_case() -> Transducer:
    """Map lines to upper case."""
    return map_transducer(str.upper, name="upper")


def lower_case() -> Transducer:
    """Map lines to lower case."""
    return map_transducer(str.lower, name="lower")


def reverse_line() -> Transducer:
    """Reverse the characters of each line."""
    return map_transducer(lambda line: line[::-1], name="reverse")


def strip_whitespace() -> Transducer:
    """Trim leading and trailing whitespace from each line."""
    return map_transducer(str.strip, name="strip")


def expand_tabs(tabstop: int = 8) -> Transducer:
    """Expand tab characters to spaces (like ``expand``)."""
    if tabstop < 1:
        raise ValueError(f"tabstop must be >= 1, got {tabstop}")
    return map_transducer(
        lambda line: line.expandtabs(tabstop), name=f"expand({tabstop})"
    )


def fold(width: int = 80) -> Transducer:
    """Break long lines at ``width`` characters (like ``fold``).

    Emits one or more records per input record — a one-to-many filter.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")

    def split(line: str):
        if not line:
            return ("",)
        return tuple(line[i : i + width] for i in range(0, len(line), width))

    return make_transducer(split, name=f"fold({width})")


def translate(source: str, target: str) -> Transducer:
    """Character-for-character translation (like ``tr``)."""
    if len(source) != len(target):
        raise ValueError("translate needs equal-length source/target alphabets")
    table = str.maketrans(source, target)
    return map_transducer(lambda line: line.translate(table), name="tr")


def prepend(prefix: str) -> Transducer:
    """Prefix every record — handy for labelling merged streams."""
    return map_transducer(lambda line: f"{prefix}{line}", name=f"prepend({prefix!r})")


def repeat(times: int) -> Transducer:
    """Emit each record ``times`` times (a one-to-many stress filter)."""
    if times < 0:
        raise ValueError(f"times must be >= 0, got {times}")
    return make_transducer(
        lambda item: (item,) * times, name=f"repeat({times})"
    )


def batch_lines(size: int) -> Transducer:
    """Group consecutive records into tuples of ``size`` (last may be short)."""
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")

    class _Batcher(Transducer):
        name = f"batch({size})"

        def __init__(self) -> None:
            self._pending: list[Any] = []

        def step(self, item: Any):
            self._pending.append(item)
            if len(self._pending) == size:
                out = tuple(self._pending)
                self._pending = []
                return (out,)
            return ()

        def finish(self):
            if self._pending:
                out = tuple(self._pending)
                self._pending = []
                return (out,)
            return ()

    return _Batcher()
