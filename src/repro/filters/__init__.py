"""The filter library: the utilities the paper's §3 enumerates.

Every entry is either a transducer factory (usable under all three
disciplines via the pipeline builders) or, for the genuinely
multi-stream cases, a specialised Eject class.
"""

from repro.filters.basic import (
    batch_lines,
    expand_tabs,
    fold,
    identity,
    lower_case,
    prepend,
    repeat,
    reverse_line,
    strip_whitespace,
    translate,
    upper_case,
)
from repro.filters.columns import cut, paste, rle_decode, rle_encode
from repro.filters.compare import MISSING, DiffRecord, DifferenceFilter
from repro.filters.editor import (
    EditorCommandError,
    StreamEditor,
    parse_command,
)
from repro.filters.pattern import (
    between,
    comment_stripper,
    delete_matching,
    grep,
    substitute,
)
from repro.filters.reporting import (
    ErrorReporting,
    fanout,
    with_reports,
)
from repro.filters.sortedmerge import SortedMergeFilter
from repro.filters.spellcheck import (
    DEFAULT_WORDS,
    SpellChecker,
    SpellCheckReporter,
)
from repro.filters.text import (
    WordCountSummary,
    head,
    number_lines,
    paginate,
    pretty_print,
    sort_lines,
    tail,
    unique_adjacent,
    word_count,
)

__all__ = [
    "DEFAULT_WORDS",
    "DiffRecord",
    "DifferenceFilter",
    "EditorCommandError",
    "ErrorReporting",
    "MISSING",
    "SpellCheckReporter",
    "SpellChecker",
    "SortedMergeFilter",
    "StreamEditor",
    "WordCountSummary",
    "batch_lines",
    "between",
    "comment_stripper",
    "cut",
    "delete_matching",
    "expand_tabs",
    "fanout",
    "fold",
    "grep",
    "head",
    "identity",
    "lower_case",
    "number_lines",
    "paginate",
    "parse_command",
    "paste",
    "prepend",
    "pretty_print",
    "repeat",
    "reverse_line",
    "rle_decode",
    "rle_encode",
    "sort_lines",
    "strip_whitespace",
    "substitute",
    "tail",
    "translate",
    "unique_adjacent",
    "upper_case",
    "with_reports",
    "word_count",
]
