"""repro: a reproduction of Black's "An Asymmetric Stream Communication
System" (SOSP 1983).

The package implements the Eden object/invocation substrate as a
deterministic discrete-event simulation, the paper's four transput
primitives, and the read-only, write-only and conventional stream
disciplines, together with a filter library, an Eden filesystem,
devices, a pipeline shell and an asyncio binding.

Quickstart::

    from repro import Kernel, compose_readonly_pipeline
    from repro.filters import comment_stripper

    kernel = Kernel()
    pipeline = compose_readonly_pipeline(
        kernel,
        ["C a comment", "      REAL X"],
        [comment_stripper("C")],
    )
    print(pipeline.run_to_completion())   # ['      REAL X']

Layers:

- :mod:`repro.core` — the simulated Eden kernel (UIDs, invocation,
  Ejects, checkpointing, nodes, transport).
- :mod:`repro.transput` — the four primitives and three disciplines.
- :mod:`repro.filters` — the filter/transducer library.
- :mod:`repro.filesystem` — Eden files, directories, bootstrap Unix FS.
- :mod:`repro.devices` — terminals, printers, windows, workload sources.
- :mod:`repro.shell` — a pipeline command language with ``n>`` redirects.
- :mod:`repro.figures` — the paper's Figures 1-4 as configurations.
- :mod:`repro.analysis` — cost model and measurement harness.
- :mod:`repro.aio` — the same design over asyncio.
"""

from repro.core import (
    EdenError,
    Eject,
    Kernel,
    Node,
    TransportCosts,
    UID,
)
from repro.figures import (
    build_figure1,
    build_figure2,
    build_figure3,
    build_figure4,
)
from repro.shell import Shell
from repro.transput import (
    FlowPolicy,
    Pipeline,
    Transducer,
    build_conventional_pipeline,
    build_pipeline,
    build_readonly_pipeline,
    build_writeonly_pipeline,
    compose_conventional_pipeline,
    compose_pipeline,
    compose_readonly_pipeline,
    compose_segment,
    compose_writeonly_pipeline,
)

__version__ = "1.0.0"

__all__ = [
    "EdenError",
    "Eject",
    "FlowPolicy",
    "Kernel",
    "Node",
    "Pipeline",
    "Shell",
    "Transducer",
    "TransportCosts",
    "UID",
    "__version__",
    "build_conventional_pipeline",
    "compose_conventional_pipeline",
    "compose_pipeline",
    "compose_readonly_pipeline",
    "compose_segment",
    "compose_writeonly_pipeline",
    "build_figure1",
    "build_figure2",
    "build_figure3",
    "build_figure4",
    "build_pipeline",
    "build_readonly_pipeline",
    "build_writeonly_pipeline",
]
