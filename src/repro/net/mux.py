"""Logical-channel multiplexing: many streams over one TCP connection.

The process-per-stage runtime gives every link its own TCP connection,
which tops out at thousands of stages per machine.  This module is the
scaling layer under :mod:`repro.broker`: a :class:`ChannelMux` carries
any number of *logical channels* — each a full asymmetric stream with
its own credit window, sequence/resume state, codec, and span tracing —
over one connection, using the frame header's channel-id extension
(:data:`repro.net.framing.CHAN_FLAG`).

Design rules:

- **A channel is a connection.**  :class:`MuxChannel` exposes exactly
  the :class:`repro.net.protocol.Connection` surface (``send`` /
  ``send_many`` / ``recv`` / ``close``, plus the stats/tracer/codec
  attributes), so :func:`~repro.net.protocol.serve_pull`,
  :func:`~repro.net.protocol.serve_push`, and the HELLO/WELCOME
  handshake (:func:`~repro.net.handshake.send_hello_over` /
  :func:`~repro.net.handshake.expect_hello_over`) run *unchanged* over
  a logical channel.  Pull-stream semantics — demand-driven transfer,
  early termination, no read after END — therefore hold per channel by
  construction, independent of what the other channels do.

- **Fair writing.**  All channels share one socket, so a hot channel
  could starve the rest at the send buffer.  The :class:`FairWriter`
  drains per-channel queues round-robin — one frame per channel per
  pass, accumulating passes into a burst it moves with one *vectored*
  write (``sendmsg`` iovec; see :mod:`repro.net.vectored`) — so
  fairness costs no joins and no per-frame syscalls.  Bounded
  per-channel queues convert a slow receiver into backpressure on that
  channel's producers (``enqueue`` parks) instead of unbounded memory.

- **Handshake frames are not stream traffic.**  Over raw TCP the
  HELLO/WELCOME exchange happens *before* the counted ``Connection``
  exists, so it never perturbs the frame counts the paper's cost model
  predicts.  A channel exists before its handshake, so
  :class:`MuxChannel` explicitly skips HELLO and WELCOME when counting
  — C1/C2 accounting is identical on both transports.

Channel id 0 (:data:`CONTROL_CHANNEL`) is reserved for broker control
traffic (register / open / accept; see :mod:`repro.broker`); data
channels count from 1.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import replace
from typing import Any, Awaitable, Callable, Sequence

from repro.core.tracing import Tracer
from repro.net.bufpool import POOL
from repro.net.framing import (
    CODEC_JSON,
    CODECS,
    BufferedFrameReader,
    Frame,
    FrameError,
    FrameType,
    _release_after_write,
    encode_frame_into,
)
from repro.net.vectored import write_vectored
from repro.net.handshake import (
    ROLE_PULL,
    ROLE_PUSH,
    negotiated_codec,
    send_hello_over,
)
from repro.net.metrics import NetStats
from repro.net.protocol import RemoteReadable, RemoteWritable

__all__ = [
    "CONTROL_CHANNEL",
    "FairWriter",
    "ChannelMux",
    "MuxChannel",
    "HostedReadable",
    "HostedWritable",
]

#: Channel id reserved for broker control traffic (never a stream).
CONTROL_CHANNEL = 0

#: Frame types that belong to connection admission, not the stream;
#: excluded from per-channel stats so C1/C2 counts match raw TCP.
_HANDSHAKE_TYPES = (FrameType.HELLO, FrameType.WELCOME)


class _ChanQueue:
    """One channel's outgoing frames awaiting their round-robin turn.

    ``frames`` holds encoded wire forms: pooled ``bytearray`` buffers
    (ownership passed in by :meth:`MuxChannel.send`, recycled by the
    fair writer after the socket write) or plain ``bytes`` (injector
    chunks, control frames).
    """

    __slots__ = ("frames", "bytes", "room", "queued")

    def __init__(self) -> None:
        self.frames: deque[Any] = deque()
        self.bytes = 0
        self.room = asyncio.Event()
        self.room.set()
        self.queued = False  # present in the writer's rotation?


class FairWriter:
    """Round-robin frame scheduler over one ``StreamWriter``.

    Each scheduling pass takes at most one frame from every pending
    channel; passes accumulate into a burst of up to ``burst_limit``
    bytes that goes out as one vectored write
    (:func:`repro.net.vectored.write_vectored` — a single ``sendmsg``
    iovec on the fast path), so fairness costs neither joins nor
    per-frame syscalls.  Per-channel queues are bounded by
    ``high_water`` bytes — ``enqueue`` parks above it and resumes once
    the queue drains below half, which is what turns one slow receiver
    into backpressure on exactly its own senders.
    """

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        high_water: int = 256 * 1024,
        burst_limit: int = 128 * 1024,
        stats: NetStats | None = None,
    ) -> None:
        self.writer = writer
        self.high_water = max(1, high_water)
        self.burst_limit = max(1, burst_limit)
        self.stats = stats
        self._queues: dict[int, _ChanQueue] = {}
        self._rotation: deque[int] = deque()
        self._wake = asyncio.Event()
        self._task: asyncio.Task[None] | None = None
        self._closed = False
        self.error: BaseException | None = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.ensure_future(self._run())

    async def enqueue(self, chan: int, wire: Any) -> None:
        """Queue one encoded frame for ``chan``; parks when over water."""
        queue = self._queues.setdefault(chan, _ChanQueue())
        while queue.bytes >= self.high_water and not self._closed:
            queue.room.clear()
            await queue.room.wait()
        if self._closed:
            raise ConnectionResetError(
                f"mux writer closed{f': {self.error}' if self.error else ''}"
            )
        queue.frames.append(wire)
        queue.bytes += len(wire)
        if not queue.queued:
            queue.queued = True
            self._rotation.append(chan)
        self._wake.set()

    async def _run(self) -> None:
        try:
            while True:
                await self._wake.wait()
                self._wake.clear()
                while self._rotation:
                    burst: list[Any] = []
                    burst_bytes = 0
                    # Accumulate round-robin passes — one frame per
                    # pending channel per pass: fairness — until the
                    # burst is worth a syscall.
                    while self._rotation and burst_bytes < self.burst_limit:
                        for _ in range(len(self._rotation)):
                            chan = self._rotation.popleft()
                            queue = self._queues[chan]
                            wire = queue.frames.popleft()
                            queue.bytes -= len(wire)
                            burst.append(wire)
                            burst_bytes += len(wire)
                            if queue.frames:
                                self._rotation.append(chan)
                            else:
                                queue.queued = False
                            if queue.bytes < self.high_water // 2:
                                queue.room.set()
                    write_vectored(self.writer, burst, self.stats)
                    await self.writer.drain()
                    for wire in burst:
                        if isinstance(wire, bytearray):
                            _release_after_write(POOL, self.writer, wire)
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError) as error:
            self._fail(error)

    def _fail(self, error: BaseException | None) -> None:
        self._closed = True
        self.error = self.error or error
        for queue in self._queues.values():
            queue.room.set()  # unpark writers so they see the failure

    async def close(self) -> None:
        """Stop scheduling; parked ``enqueue`` calls fail fast."""
        self._fail(None)
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass
            self._task = None


class MuxChannel:
    """One logical channel, shaped exactly like a ``Connection``.

    Every outgoing frame is stamped with the channel id (and offered
    to the fault ``injector``, which can target this channel
    specifically); incoming frames arrive from the mux's reader via
    :meth:`_deliver`.  ``recv`` returns ``None`` once the channel is
    hung up — the per-channel analogue of a peer closing a socket,
    which is how stream code observes a crashed peer or a dying mux
    without any new error vocabulary.
    """

    def __init__(
        self,
        mux: "ChannelMux",
        chan: int,
        stats: NetStats | None = None,
        end_is_request: bool = False,
        tracer: Tracer | None = None,
        label: str | None = None,
        injector: Any | None = None,
        codec: str = CODEC_JSON,
    ) -> None:
        self.mux = mux
        self.chan = chan
        self.stats = stats if stats is not None else NetStats()
        self.end_is_request = end_is_request
        self.tracer = tracer
        self.label = label if label is not None else f"chan{chan}"
        self.clock = mux.clock
        self.injector = injector
        self.codec = codec
        self._inbox: asyncio.Queue[tuple[Frame, int] | None] = asyncio.Queue()
        self._hung_up = False
        self._closed = False
        #: Invoked (with the channel) on local ``close``; the broker
        #: client uses it to tell the broker the route is dead, which
        #: is how the *peer* endpoint comes to observe a hangup.
        self.on_closed: Callable[["MuxChannel"], None] | None = None

    # -- Connection surface --------------------------------------------------

    async def send(self, frame: Frame) -> None:
        if self.injector is None:
            out = POOL.acquire()
            try:
                wire_bytes = encode_frame_into(
                    replace(frame, chan=self.chan), out, self.codec
                )
            except FrameError:
                POOL.release(out)
                raise
            if self.mux.flight is not None:
                self.mux.flight.on_sent(out)
            # Ownership of the pooled buffer passes to the fair
            # writer, which recycles it after the socket write.
            await self.mux.send_wire(self.chan, out)
        else:
            out = bytearray()
            wire_bytes = encode_frame_into(
                replace(frame, chan=self.chan), out, self.codec
            )
            # Record what the stage believes it sent, pre-injection.
            if self.mux.flight is not None:
                self.mux.flight.on_sent(out)
            chunks = await self.injector.outgoing(
                frame.type.name, bytes(out), self.chan
            )
            for chunk in chunks:
                await self.mux.send_wire(self.chan, chunk)
        if frame.type not in _HANDSHAKE_TYPES:
            self.stats.note_sent(frame, wire_bytes, self.end_is_request)
        self.mux.stats.bump("mux_frames_sent")
        if self.tracer is not None:
            self.tracer.emit(
                self.clock(), "send", self.label,
                frame=frame.type.name, bytes=wire_bytes, chan=self.chan,
            )

    async def send_many(self, frames: Sequence[Frame]) -> None:
        for frame in frames:
            await self.send(frame)

    def _note_received(self, frame: Frame, wire_bytes: int) -> None:
        if frame.type not in _HANDSHAKE_TYPES:
            self.stats.note_received(frame, wire_bytes)
        if self.tracer is not None:
            self.tracer.emit(
                self.clock(), "recv", self.label,
                frame=frame.type.name, bytes=wire_bytes, chan=self.chan,
            )

    async def recv(self) -> Frame | None:
        if self._hung_up and self._inbox.empty():
            return None
        item = await self._inbox.get()
        if item is None:
            self._hung_up = True
            return None
        frame, wire_bytes = item
        self._note_received(frame, wire_bytes)
        return frame

    def recv_nowait(self) -> Frame | None:
        """An inbound frame already queued on this channel, else ``None``.

        The ``Connection`` surface the pull server's reply coalescing
        expects; never blocks and never consumes the hangup marker.
        """
        if self._hung_up or self._inbox.empty():
            return None
        item = self._inbox.get_nowait()
        if item is None:
            self._hung_up = True
            return None
        frame, wire_bytes = item
        self._note_received(frame, wire_bytes)
        return frame

    async def close(self) -> None:
        """Detach from the mux (idempotent); peers see a hangup."""
        if self._closed:
            return
        self._closed = True
        self.hangup()
        await self.mux.release(self.chan)
        if self.on_closed is not None:
            self.on_closed(self)

    # -- mux side ------------------------------------------------------------

    def _deliver(self, frame: Frame, wire_bytes: int) -> None:
        if not self._hung_up:
            self._inbox.put_nowait((frame, wire_bytes))

    def hangup(self) -> None:
        """Make ``recv`` return ``None`` after any already-queued frames."""
        self._inbox.put_nowait(None)


class ChannelMux:
    """The multiplexing endpoint of one connection.

    Owns the reader loop (demultiplexing incoming frames into their
    channels' inboxes) and the :class:`FairWriter`.  Frames on
    :data:`CONTROL_CHANNEL` — or without a channel id at all — go to
    the ``on_control`` callback (the broker-client command layer);
    frames for unknown channels are dropped and counted
    (``mux_orphan_frames``), which is what a frame racing a local
    channel close looks like.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        on_control: Callable[[Frame], Awaitable[None]] | None = None,
        on_close: Callable[[BaseException | None], None] | None = None,
        stats: NetStats | None = None,
        clock: Callable[[], float] = time.monotonic,
        label: str = "mux",
        flight: Any | None = None,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.on_control = on_control
        self.on_close = on_close
        self.stats = stats if stats is not None else NetStats()
        self.clock = clock
        self.label = label
        #: Optional flight recorder; sees every frame's wire bytes in
        #: both directions, across all channels of this connection.
        self.flight = flight
        self.channels: dict[int, MuxChannel] = {}
        self._fair = FairWriter(writer, stats=self.stats)
        self._read_task: asyncio.Task[None] | None = None
        self._closed = False
        self.error: BaseException | None = None

    def start(self) -> None:
        """Spin up the reader and writer tasks (idempotent)."""
        self._fair.start()
        if self._read_task is None:
            self._read_task = asyncio.ensure_future(self._read_loop())

    @property
    def closed(self) -> bool:
        return self._closed

    def attach(
        self,
        chan: int,
        **channel_options: Any,
    ) -> MuxChannel:
        """Create (and register) the local endpoint of channel ``chan``."""
        if chan in self.channels:
            raise ValueError(f"channel {chan} already attached")
        if self._closed:
            raise ConnectionResetError(f"{self.label} is closed")
        channel = MuxChannel(self, chan, **channel_options)
        self.channels[chan] = channel
        self.stats.bump("mux_channels_opened")
        self.stats.set_gauge("mux_channels_open", float(len(self.channels)))
        return channel

    async def release(self, chan: int) -> None:
        """Forget a channel (its ``close`` path; safe to repeat)."""
        if self.channels.pop(chan, None) is not None:
            self.stats.set_gauge(
                "mux_channels_open", float(len(self.channels))
            )

    async def send_wire(self, chan: int, wire: bytes) -> None:
        await self._fair.enqueue(chan, wire)

    async def send_control(self, frame: Frame,
                           queue_on: int = CONTROL_CHANNEL) -> None:
        """Send one control frame (stamped onto channel 0).

        ``queue_on`` picks which fair-writer queue carries it: the
        round-robin scheduler only guarantees FIFO *within* a queue,
        so control traffic that must stay ordered behind a channel's
        data (``close-chan`` chasing a final ACK) rides that
        channel's queue instead of queue 0.
        """
        out = bytearray()
        encode_frame_into(
            replace(frame, chan=CONTROL_CHANNEL), out, CODEC_JSON
        )
        if self.flight is not None:
            self.flight.on_sent(out)
        await self._fair.enqueue(queue_on, bytes(out))

    async def _read_loop(self) -> None:
        error: BaseException | None = None
        frames = BufferedFrameReader(
            self.reader,
            tee=self.flight.on_received if self.flight is not None else None,
        )
        try:
            while True:
                frame, wire_bytes = await frames.recv()
                if frame is None:
                    break
                self.stats.bump("mux_frames_received")
                if frame.chan is None or frame.chan == CONTROL_CHANNEL:
                    if self.on_control is not None:
                        await self.on_control(frame)
                    continue
                channel = self.channels.get(frame.chan)
                if channel is not None:
                    channel._deliver(frame, wire_bytes)
                else:
                    self.stats.bump("mux_orphan_frames")
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError, FrameError, EOFError) as exc:
            error = exc
        finally:
            self._shut(error)

    def _shut(self, error: BaseException | None) -> None:
        if self._closed:
            return
        self._closed = True
        self.error = error
        self._fair._fail(error)
        for channel in list(self.channels.values()):
            channel.hangup()
        if self.on_close is not None:
            self.on_close(error)

    async def close(self) -> None:
        """Tear the whole connection down; every channel hangs up."""
        self._shut(None)
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except (asyncio.CancelledError, ConnectionError, OSError,
                    FrameError, EOFError):
                pass
            self._read_task = None
        await self._fair.close()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# ---------------------------------------------------------------------------
# Hosted active sides: RemoteReadable/RemoteWritable over logical channels.
# ---------------------------------------------------------------------------

#: An async channel factory: ``(target_name, role) -> MuxChannel`` with
#: the broker-side open (naming, compatibility check, id issuance)
#: already done.  :class:`repro.broker.client.BrokerClient.opener`
#: produces one.
ChannelOpener = Callable[[str, str], Awaitable[MuxChannel]]


class HostedReadable(RemoteReadable):
    """A :class:`RemoteReadable` whose link is a broker logical channel.

    Everything above the link — READ pipelining, batch autotuning,
    resume dedup by ``seq``, span emission with sequence evidence — is
    inherited unchanged; only how a "connection" comes to exist
    differs: instead of dialing ``host:port``, the reader asks the
    broker for a channel to ``target`` (a fleet-scoped name) and runs
    the ordinary ticket handshake inside it.
    """

    def __init__(self, open_channel: ChannelOpener, target: str,
                 **kwargs: Any) -> None:
        super().__init__("", 0, **kwargs)
        self._open_channel = open_channel
        self.target = target

    async def _ensure_connected(self) -> MuxChannel:  # type: ignore[override]
        if self._connection is None:
            channel = await self._open_channel(self.target, ROLE_PULL)
            channel.stats = self.stats
            channel.tracer = self.tracer
            channel.label = self.label
            channel.injector = self.injector
            offer = CODECS if self.codec != CODEC_JSON else None
            welcome = await send_hello_over(
                channel, self.uid, ROLE_PULL, channel=self.channel,
                book=self.book,
                next_seq=self.received if self.resume else None,
                codecs=offer,
            )
            if offer:
                channel.codec = negotiated_codec(
                    [welcome.body.get("codec")], offer
                )
            self._connection = channel
        return self._connection


class HostedWritable(RemoteWritable):
    """A :class:`RemoteWritable` over a broker logical channel.

    Credit windows, the resume send log, and span emission are
    inherited; the WELCOME that grants the initial credit (and the
    resume cursor) arrives through the channel handshake.
    """

    def __init__(self, open_channel: ChannelOpener, target: str,
                 **kwargs: Any) -> None:
        super().__init__("", 0, **kwargs)
        self._open_channel = open_channel
        self.target = target

    async def _ensure_connected(self) -> MuxChannel:  # type: ignore[override]
        if self._connection is None:
            channel = await self._open_channel(self.target, ROLE_PUSH)
            channel.stats = self.stats
            channel.end_is_request = True
            channel.tracer = self.tracer
            channel.label = self.label
            channel.injector = self.injector
            offer = CODECS if self.codec != CODEC_JSON else None
            welcome = await send_hello_over(
                channel, self.uid, ROLE_PUSH, channel=self.channel,
                book=self.book, codecs=offer,
            )
            if offer:
                channel.codec = negotiated_codec(
                    [welcome.body.get("codec")], offer
                )
            self._credit = int(welcome.body.get("credit", 1))
            self.stats.set_gauge("credit_window", float(self._credit))
            self.stats.set_gauge("credit_available", float(self._credit))
            if self.resume:
                resume_seq = welcome.body.get("resume_seq")
                if isinstance(resume_seq, int):
                    self._next = max(0, min(resume_seq, len(self._sendlog)))
            self._connection = channel
        return self._connection
