"""Host one pipeline stage in one OS process.

``python -m repro.net.stage`` (installed as ``eden-stage``) runs a
source, filter, sink, or pipe stage and wires it to its neighbours
over TCP.  The stage hosts the *same* :class:`~repro.transput.
filterbase.Transducer` objects the simulator runs, wrapped in the
:mod:`repro.aio` stages, with :class:`~repro.net.protocol.
RemoteReadable` / :class:`~repro.net.protocol.RemoteWritable` standing
in for in-process neighbours.  Connection roles per discipline:

====================  =======================  =========================
stage                 accepts (listens)        dials (connects)
====================  =======================  =========================
readonly source       pull clients             —
readonly filter       pull clients             upstream (as pull client)
readonly sink         —                        upstream (as pull client)
writeonly source      —                        downstream (as push client)
writeonly filter      push clients             downstream (as push client)
writeonly sink        push clients             —
conventional source   —                        downstream pipe (push)
conventional filter   —                        upstream pipe (pull) and
                                               downstream pipe (push)
conventional sink     —                        upstream pipe (pull)
conventional pipe     one push + one pull      —
====================  =======================  =========================

The conventional table is the paper's point made physical: because the
conventional discipline's filters are active at both ends, every
adjacent pair needs a *separate passive buffer process* (the Unix
pipe), doubling the number of servers and the per-datum message count
— run ``examples/tcp_pipeline.py`` to watch n+1 vs 2n+2 measured on
real sockets.

Clients reconnect with exponential backoff, so the stages of one
pipeline can be spawned in any order.  Every stage verifies peers'
ticket UIDs against the deterministic :class:`~repro.net.handshake.
TicketBook` named by ``--ticket-space/--ticket-seed`` and rejects
forgeries (C4).  On exit a stage can dump its on-wire counters
(``--stats-file``) and a frame-level trace in the simulator's JSONL
trace format (``--trace-file``); ``--trace-file`` also turns on span
tracing, attaching causal span contexts to every READ/WRITE frame so
the fleet's logs merge into end-to-end traces (:mod:`repro.obs`).
While running, a stage can additionally serve live STATS / SPANS /
HEALTH requests on ``--control-port`` (:mod:`repro.obs.control`);
control traffic never touches the data path's frame counts.
"""

from __future__ import annotations

import argparse
import asyncio
import importlib
import json
import socket
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.capability import PRIMARY_CHANNEL
from repro.core.tracing import Tracer
from repro.devices import random_lines
from repro.aio.streams import (
    AioCollector,
    AioPipe,
    AioReadOnlyStage,
    AioSource,
    AioWriteOnlyStage,
    collect,
)
from repro.fault.inject import (
    KillSwitch,
    KillingReadable,
    KillingWritable,
    build_injector,
    killing_transducer,
)
from repro.fault.plan import FaultPlan
from repro.net.affinity import current_affinity, pin_to_core
from repro.net.bufpool import POOL
from repro.net.handshake import (
    ROLE_PULL,
    ROLE_PUSH,
    HandshakeError,
    Hello,
    TicketBook,
    expect_hello,
)
from repro.net.metrics import NetStats
from repro.net.protocol import (
    Connection,
    PushState,
    RemoteReadable,
    RemoteWritable,
    ReplayLog,
    serve_pull,
    serve_push,
)
from repro.net.framing import CODEC_JSON, CODECS, FrameError
from repro.obs.context import set_span
from repro.obs.control import start_control_server
from repro.obs.flight import FLIGHT_MODES, MODE_FULL, FlightRecorder
from repro.obs.registry import snapshot_payload
from repro.obs.spans import CLOCK_KIND, SPAN_KIND, SpanIds
from repro.transput.filterbase import Transducer, identity_transducer
from repro.transput.flow import FlowAutotuner, FlowPolicy

__all__ = [
    "StageConfig",
    "run_stage",
    "load_transducer",
    "pick_free_port",
    "main",
]

ROLES = ("source", "filter", "sink", "pipe")
DISCIPLINES = ("readonly", "writeonly", "conventional")


def pick_free_port(host: str = "127.0.0.1") -> int:
    """Ask the OS for a currently free TCP port (orchestrator helper)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def _state_key(channel: Any) -> Any:
    """A dict key for per-channel resume state (mirrors serve_pull's)."""
    try:
        hash(channel)
        return channel
    except TypeError:
        return repr(channel)


def load_transducer(spec: str, args: Sequence[Any] = ()) -> Transducer:
    """Instantiate a transducer from a ``module:factory`` spec.

    Example: ``repro.filters:grep`` with args ``["stream"]``.  The
    factory is any callable returning a Transducer (or a Transducer
    instance itself when called with no args).
    """
    module_name, _sep, attribute = spec.partition(":")
    if not _sep or not attribute:
        raise ValueError(f"transducer spec must be module:factory, got {spec!r}")
    factory = getattr(importlib.import_module(module_name), attribute)
    made = factory(*args)
    if not isinstance(made, Transducer):
        raise TypeError(f"{spec} produced {type(made).__name__}, not a Transducer")
    return made


@dataclass
class StageConfig:
    """Everything one stage process needs to know."""

    role: str
    discipline: str
    host: str = "127.0.0.1"
    listen_port: int | None = None
    upstream: tuple[str, int] | None = None
    downstream: tuple[str, int] | None = None
    channel: Any = PRIMARY_CHANNEL
    transducer_spec: str | None = None
    transducer_args: list[Any] = field(default_factory=list)
    source_items: list[Any] | None = None
    flow: FlowPolicy = field(default_factory=FlowPolicy)
    ticket_space: int = 0
    ticket_seed: int = 0
    serial: int = 0
    expected_clients: int | None = None
    stats_file: str | None = None
    trace_file: str | None = None
    output_file: str | None = None
    connect_deadline: float = 15.0
    control_port: int | None = None
    fault: FaultPlan = field(default_factory=FaultPlan)
    resume: bool = False
    io_timeout: float | None = None
    codec: str = CODEC_JSON
    shard: int | None = None
    cpu: int | None = None
    flight_dir: str | None = None
    flight_mode: str = MODE_FULL

    def __post_init__(self) -> None:
        if self.codec not in CODECS:
            raise ValueError(f"codec must be one of {CODECS}, got {self.codec!r}")
        if self.flight_mode not in FLIGHT_MODES:
            raise ValueError(
                f"flight_mode must be one of {FLIGHT_MODES}, "
                f"got {self.flight_mode!r}"
            )
        if self.shard is not None and (
            not isinstance(self.shard, int) or self.shard < 0
        ):
            raise ValueError(f"shard must be >= 0 or None, got {self.shard!r}")
        if self.cpu is not None and (
            not isinstance(self.cpu, int) or self.cpu < 0
        ):
            raise ValueError(f"cpu must be >= 0 or None, got {self.cpu!r}")
        if self.role not in ROLES:
            raise ValueError(f"role must be one of {ROLES}, got {self.role!r}")
        if self.discipline not in DISCIPLINES:
            raise ValueError(
                f"discipline must be one of {DISCIPLINES}, got {self.discipline!r}"
            )
        if self.role == "pipe" and self.discipline != "conventional":
            raise ValueError("pipe stages exist only in the conventional discipline")
        if not isinstance(self.fault, FaultPlan):
            raise ValueError(f"fault must be a FaultPlan, got {self.fault!r}")
        if self.io_timeout is not None and (
            not isinstance(self.io_timeout, (int, float)) or self.io_timeout <= 0
        ):
            raise ValueError(
                f"io_timeout must be > 0 or None, got {self.io_timeout!r}"
            )


class _Stage:
    """The running form of one :class:`StageConfig`."""

    def __init__(self, config: StageConfig) -> None:
        self.config = config
        self.stats = NetStats()
        self.tracer = Tracer(enabled=config.trace_file is not None)
        self.book = TicketBook(space=config.ticket_space, seed=config.ticket_seed)
        self.uid = self.book.ticket(config.serial)
        self.label = f"{config.role}/{config.discipline}#{config.serial}"
        if config.shard is not None:
            self.label = f"s{config.shard}:{self.label}"
        # Core placement first, so every task/socket this stage creates
        # wakes on its shard's core (no-op off Linux or when unplanned).
        self.pinned = pin_to_core(config.cpu)
        if config.cpu is not None:
            self.stats.set_gauge("cpu_core", float(config.cpu))
            self.stats.set_gauge("cpu_pinned", 1.0 if self.pinned else 0.0)
        self.collected: list[Any] | None = None
        # Span IDs are prefixed by the ticket serial: unique across the
        # fleet with zero coordination (and zero randomness).
        self.spans = (
            SpanIds(prefix=f"s{config.serial}-") if self.tracer.enabled else None
        )
        self.started_mono = time.monotonic()
        # Fault machinery: one injector and one kill switch per stage,
        # so nth/every/kill_after schedules span all its connections.
        self.injector = build_injector(config.fault, stats=self.stats,
                                       label=self.label)
        self.kill_switch = (
            KillSwitch(config.fault.kill_after, label=self.label)
            if config.fault.kill_after is not None else None
        )
        self._refusals_left = config.fault.refuse_accepts
        # Resume state outlives individual connections (restarted or
        # reconnecting peers pick up where their predecessor stopped).
        self._replay_logs: dict[Any, ReplayLog] = {}
        self._push_states: dict[Any, PushState] = {}
        # The flight recorder carries enough meta for the replay engine
        # to rebuild this stage in the sim kernel from the capture alone.
        self.flight = None
        if config.flight_dir is not None:
            self.flight = FlightRecorder(
                config.flight_dir, self.label, mode=config.flight_mode,
                stats=self.stats,
                meta={
                    "role": config.role,
                    "discipline": config.discipline,
                    "serial": config.serial,
                    "transducer_spec": config.transducer_spec,
                    "transducer_args": list(config.transducer_args),
                    "batch": config.flow.batch,
                    "codec": config.codec,
                    "shard": config.shard,
                    "resume": config.resume,
                },
            )
        # One autotuner per stage: every active read feeds it, and its
        # current values surface as gauges for eden-top.
        self.tuner = FlowAutotuner(config.flow) if config.flow.adaptive else None
        if self.tuner is not None:
            self.stats.set_gauge("autotune_batch", float(self.tuner.batch))
            self.stats.set_gauge(
                "autotune_credit", float(self.tuner.credit_window)
            )

    # -- building blocks ----------------------------------------------------

    def _connection(self, reader, writer, end_is_request: bool = False) -> Connection:
        return Connection(
            reader, writer, stats=self.stats, end_is_request=end_is_request,
            tracer=self.tracer, label=self.label, injector=self.injector,
            flight=self.flight,
        )

    def _remote_readable(self) -> RemoteReadable:
        host, port = self.config.upstream
        return RemoteReadable(
            host, port, uid=self.uid, book=self.book,
            channel=self.config.channel, stats=self.stats,
            tracer=self.tracer, label=self.label,
            connect_deadline=self.config.connect_deadline,
            spans=self.spans,
            resume=self.config.resume,
            io_timeout=self.config.io_timeout,
            injector=self.injector,
            codec=self.config.codec,
            pipeline_depth=self.config.flow.effective_pipeline_depth(),
            tuner=self.tuner,
            flight=self.flight,
        )

    def _remote_writable(self) -> RemoteWritable:
        host, port = self.config.downstream
        return RemoteWritable(
            host, port, uid=self.uid, book=self.book,
            channel=self.config.channel, stats=self.stats,
            tracer=self.tracer, label=self.label,
            connect_deadline=self.config.connect_deadline,
            spans=self.spans,
            resume=self.config.resume,
            io_timeout=self.config.io_timeout,
            injector=self.injector,
            codec=self.config.codec,
            flight=self.flight,
        )

    def _transducer(self) -> Transducer:
        if self.config.transducer_spec is None:
            made = identity_transducer()
        else:
            made = load_transducer(
                self.config.transducer_spec, self.config.transducer_args
            )
        if self.kill_switch is not None and self.config.role == "filter":
            made = killing_transducer(made, self.kill_switch)
        return made

    def _killing_readable(self, readable: Any) -> Any:
        """Wrap an active-source/sink readable in the stage's kill switch."""
        if self.kill_switch is not None:
            return KillingReadable(readable, self.kill_switch)
        return readable

    def _killing_writable(self, writable: Any) -> Any:
        if self.kill_switch is not None:
            return KillingWritable(writable, self.kill_switch)
        return writable

    def _push_state_for(self, hello: Hello) -> PushState:
        key = _state_key(hello.channel)
        return self._push_states.setdefault(key, PushState())

    async def _serve(self, readables: Any = None, writable: Any = None,
                     clients: int = 1) -> None:
        """Accept ``clients`` connections and serve them to completion.

        Under resume, a connection only counts toward ``clients`` when
        it finished its stream (its END crossed the wire): a peer that
        crashed mid-stream will reconnect as a *new* connection, and
        transport faults merely drop the connection, never the stage.
        """
        done = asyncio.Semaphore(0)
        credit = self.config.flow.effective_credit_window()
        resume = self.config.resume
        # A json-configured stage only ever grants json, so one legacy
        # stage in a binary fleet degrades its own links and no others.
        codec_offer = (
            CODECS if self.config.codec != CODEC_JSON else (CODEC_JSON,)
        )
        resume_seq_for = None
        if resume:
            def resume_seq_for(hello: Hello) -> int | None:
                if hello.role != ROLE_PUSH:
                    return None
                return self._push_state_for(hello).received

        async def handle(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
            if self._refusals_left > 0:
                # A refuse_accepts fault: close before any handshake.
                self._refusals_left -= 1
                self.stats.bump("refused_accepts")
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                return
            try:
                hello = await expect_hello(
                    reader, writer, self.book, self.uid, credit=credit,
                    resume_seq_for=resume_seq_for, codec_offer=codec_offer,
                )
                connection = self._connection(reader, writer)
                connection.codec = hello.codec
                if hello.role == ROLE_PULL and readables is not None:
                    completed = await serve_pull(
                        connection, readables, hello, batch_limit=None,
                        logs=self._replay_logs if resume else None,
                    )
                elif hello.role == ROLE_PUSH and writable is not None:
                    completed = await serve_push(
                        connection, writable, hello,
                        state=self._push_state_for(hello) if resume else None,
                    )
                else:
                    await connection.close()
                    return  # role this stage does not serve: not counted
                await connection.close()
                if completed:
                    done.release()
            except HandshakeError as error:
                print(f"[{self.label}] rejected connection: {error}",
                      file=sys.stderr)
            except (ConnectionError, OSError, FrameError, EOFError) as error:
                if not resume:
                    raise
                # The peer died mid-connection; it (or its restarted
                # successor) will be back — drop this connection only.
                self.stats.bump("client_disconnects")
                print(f"[{self.label}] client link failed: {error}",
                      file=sys.stderr)

        server = await asyncio.start_server(
            handle, host=self.config.host, port=self.config.listen_port or 0
        )
        try:
            for _ in range(clients):
                await done.acquire()
        finally:
            server.close()
            await server.wait_closed()

    @staticmethod
    async def _pump(readable: Any, writable: Any, batch: int) -> None:
        """The active middle: read until END, pushing everything read.

        A traced upstream publishes each read's span as ``last_span``
        (post buffer-trace adoption); the pump makes it the current
        span so the following write joins the datum's trace.
        """
        while True:
            transfer = await readable.read(batch)
            last = getattr(readable, "last_span", None)
            if last is not None:
                set_span(last)
            await writable.write(transfer)
            if transfer.at_end:
                return

    # -- role bodies --------------------------------------------------------

    async def run(self) -> None:
        config = self.config
        flow = config.flow
        if config.role == "source":
            items = config.source_items or []
            if config.discipline == "readonly":
                await self._serve(
                    readables=self._killing_readable(AioSource(items)),
                    clients=config.expected_clients or 1,
                )
            else:  # writeonly and conventional sources both push
                await self._pump(
                    self._killing_readable(AioSource(items)),
                    self._remote_writable(), flow.batch,
                )
        elif config.role == "filter":
            transducer = self._transducer()  # kill switch wraps it here
            if config.discipline == "readonly":
                stage = AioReadOnlyStage(
                    transducer, self._remote_readable(),
                    lookahead=flow.lookahead, batch_in=flow.batch,
                )
                await self._serve(readables=stage,
                                  clients=config.expected_clients or 1)
            elif config.discipline == "writeonly":
                stage = AioWriteOnlyStage(transducer, [self._remote_writable()])
                await self._serve(writable=stage,
                                  clients=config.expected_clients or 1)
            else:  # conventional: active at both ends
                stage = AioWriteOnlyStage(transducer, [self._remote_writable()])
                await self._pump(self._remote_readable(), stage, flow.batch)
        elif config.role == "sink":
            if config.discipline == "writeonly":
                collector = AioCollector()
                await self._serve(writable=self._killing_writable(collector),
                                  clients=config.expected_clients or 1)
                await collector.done.wait()
                self.collected = list(collector.items)
            else:  # readonly and conventional sinks both pull
                self.collected = await collect(
                    self._killing_readable(self._remote_readable()),
                    batch=flow.batch,
                )
        else:  # pipe: a passive buffer process (the Unix pipe, §1)
            capacity = flow.buffer_capacity or 64
            pipe = AioPipe(capacity=capacity)
            await self._serve(readables=pipe,
                              writable=self._killing_writable(pipe),
                              clients=config.expected_clients or 2)

    # -- introspection ------------------------------------------------------

    def control_handlers(self) -> dict[str, Any]:
        """The stage's live-introspection command table (CTRL frames)."""
        from repro.core.tracing import event_to_dict

        def stats_cmd(_body: dict[str, Any]) -> Any:
            POOL.export_gauges(self.stats)
            return snapshot_payload(self.stats)

        def spans_cmd(body: dict[str, Any]) -> Any:
            limit = max(1, int(body.get("limit", 200)))
            return [
                event_to_dict(event)
                for event in self.tracer.of_kind(SPAN_KIND)[-limit:]
            ]

        def health_cmd(_body: dict[str, Any]) -> Any:
            return {
                "label": self.label,
                "role": self.config.role,
                "discipline": self.config.discipline,
                "serial": self.config.serial,
                "uptime_s": time.monotonic() - self.started_mono,
                "tracing": self.tracer.enabled,
                "flow": self.config.flow.describe(),
                "resume": self.config.resume,
                "fault": self.config.fault.as_dict(),
                "codec": self.config.codec,
                "shard": self.config.shard,
                "cpu": self.config.cpu,
                "pinned": self.pinned,
                "affinity": current_affinity(),
                "flight": (self.flight.describe()
                           if self.flight is not None else None),
            }

        return {"stats": stats_cmd, "spans": spans_cmd, "health": health_cmd}

    # -- reporting ----------------------------------------------------------

    def emit_output(self) -> None:
        if self.collected is None:
            return
        lines = "".join(f"{item}\n" for item in self.collected)
        if self.config.output_file:
            with open(self.config.output_file, "w", encoding="utf-8") as handle:
                handle.write(lines)
        else:
            sys.stdout.write(lines)
            sys.stdout.flush()

    def emit_stats(self) -> None:
        if self.config.stats_file:
            POOL.export_gauges(self.stats)
            payload = {
                "role": self.config.role,
                "discipline": self.config.discipline,
                "serial": self.config.serial,
                # counters/gauges/histograms, same shape the control
                # protocol's `stats` command serves.
                **snapshot_payload(self.stats),
            }
            with open(self.config.stats_file, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
        if self.config.trace_file:
            self.tracer.to_jsonl(self.config.trace_file)


async def run_stage(config: StageConfig) -> _Stage:
    """Run one stage to stream completion; returns the finished stage."""
    stage = _Stage(config)
    if stage.tracer.enabled:
        # Anchor this process's monotonic clock to the wall clock so
        # the trace merger can align logs from different processes.
        mono = time.monotonic()
        stage.tracer.emit(
            mono, CLOCK_KIND, stage.label, mono=mono, wall=time.time()
        )
    control = None
    if config.control_port is not None:
        control = await start_control_server(
            stage.control_handlers(), host=config.host, port=config.control_port
        )
    started = time.monotonic()
    try:
        await stage.run()
    finally:
        if stage.flight is not None:
            stage.flight.close()
        if control is not None:
            control.close()
            await control.wait_closed()
    stage.stats.bump("runtime_ms", int((time.monotonic() - started) * 1000))
    return stage


# ---------------------------------------------------------------------------
# Command line.
# ---------------------------------------------------------------------------


def _address(text: str) -> tuple[str, int]:
    host, _sep, port = text.rpartition(":")
    return (host or "127.0.0.1", int(port))


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="eden-stage",
        description="Host one asymmetric-stream pipeline stage over TCP.",
    )
    parser.add_argument("--role", required=True, choices=ROLES)
    parser.add_argument("--discipline", required=True, choices=DISCIPLINES)
    parser.add_argument("--listen", type=int, default=None, metavar="PORT",
                        help="port to accept connections on (server roles)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--upstream", type=_address, default=None,
                        metavar="HOST:PORT", help="stage to read from")
    parser.add_argument("--downstream", type=_address, default=None,
                        metavar="HOST:PORT", help="stage to write to")
    parser.add_argument("--channel", default=PRIMARY_CHANNEL)
    parser.add_argument("--transducer", default=None, metavar="MODULE:FACTORY")
    parser.add_argument("--transducer-args", default="[]", metavar="JSON")
    parser.add_argument("--source-json", default=None, metavar="JSON",
                        help="explicit source records as a JSON array")
    parser.add_argument("--source-count", type=int, default=None,
                        help="generate this many random lines instead")
    parser.add_argument("--source-width", type=int, default=8)
    parser.add_argument("--source-seed", type=int, default=0)
    parser.add_argument("--batch", type=int, default=1)
    parser.add_argument("--lookahead", type=int, default=0)
    parser.add_argument("--inbox-capacity", type=int, default=None)
    parser.add_argument("--buffer-capacity", type=int, default=64)
    parser.add_argument("--credit-window", type=int, default=None,
                        help="explicit push credit window (default: derived)")
    parser.add_argument("--pipeline-depth", type=int, default=None,
                        help="READ requests kept in flight (default: derived)")
    parser.add_argument("--adaptive", action="store_true",
                        help="autotune batch/credit from observed RTT (AIMD)")
    parser.add_argument("--codec", default=CODEC_JSON, choices=CODECS,
                        help="preferred frame body codec (negotiated per link)")
    parser.add_argument("--shard", type=int, default=None,
                        help="shard index of this stage's sub-pipeline")
    parser.add_argument("--cpu", type=int, default=None, metavar="CORE",
                        help="pin this stage to a CPU core (Linux; no-op "
                             "elsewhere)")
    parser.add_argument("--ticket-space", type=int, default=0)
    parser.add_argument("--ticket-seed", type=int, default=0)
    parser.add_argument("--serial", type=int, default=0,
                        help="this stage's ticket serial in the book")
    parser.add_argument("--expected-clients", type=int, default=None)
    parser.add_argument("--stats-file", default=None)
    parser.add_argument("--trace-file", default=None)
    parser.add_argument("--output-file", default=None)
    parser.add_argument("--connect-deadline", type=float, default=15.0)
    parser.add_argument("--control-port", type=int, default=None, metavar="PORT",
                        help="serve STATS/SPANS/HEALTH control requests here")
    parser.add_argument("--fault-json", default=None, metavar="JSON",
                        help="FaultPlan this stage should suffer")
    parser.add_argument("--resume", action="store_true",
                        help="enable session resume (seq numbers + replay)")
    parser.add_argument("--io-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="reply silence treated as a dead link (resume)")
    parser.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="record every frame to rotating segment files "
                             "under DIR (the flight recorder)")
    parser.add_argument("--flight-mode", default=MODE_FULL,
                        choices=sorted(FLIGHT_MODES),
                        help="full payloads (replayable) or digests only "
                             "(cheapest; timing + conformance)")
    return parser


def config_from_args(argv: Sequence[str] | None = None) -> StageConfig:
    """Parse a command line into a :class:`StageConfig`."""
    parser = _parser()
    options = parser.parse_args(argv)
    source_items = None
    if options.source_json is not None:
        source_items = json.loads(options.source_json)
    elif options.source_count is not None:
        source_items = random_lines(
            count=options.source_count, width=options.source_width,
            seed=options.source_seed,
        )
    elif options.role == "source":
        parser.error("--role source requires --source-json or --source-count")
    return StageConfig(
        role=options.role,
        discipline=options.discipline,
        host=options.host,
        listen_port=options.listen,
        upstream=options.upstream,
        downstream=options.downstream,
        channel=options.channel,
        transducer_spec=options.transducer,
        transducer_args=json.loads(options.transducer_args),
        source_items=source_items,
        flow=FlowPolicy(
            lookahead=options.lookahead,
            batch=options.batch,
            buffer_capacity=options.buffer_capacity,
            inbox_capacity=options.inbox_capacity,
            credit_window=options.credit_window,
            pipeline_depth=options.pipeline_depth,
            adaptive=options.adaptive,
        ),
        ticket_space=options.ticket_space,
        ticket_seed=options.ticket_seed,
        serial=options.serial,
        expected_clients=options.expected_clients,
        stats_file=options.stats_file,
        trace_file=options.trace_file,
        output_file=options.output_file,
        connect_deadline=options.connect_deadline,
        control_port=options.control_port,
        fault=(FaultPlan.from_json(options.fault_json)
               if options.fault_json is not None else FaultPlan()),
        resume=options.resume,
        io_timeout=options.io_timeout,
        codec=options.codec,
        shard=options.shard,
        cpu=options.cpu,
        flight_dir=options.flight_dir,
        flight_mode=options.flight_mode,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: run one stage to completion."""
    try:
        config = config_from_args(argv)
        stage = asyncio.run(run_stage(config))
    except KeyboardInterrupt:
        return 130
    except Exception as error:  # surface the cause, fail the process
        print(f"eden-stage: {type(error).__name__}: {error}", file=sys.stderr)
        return 1
    stage.emit_output()
    stage.emit_stats()
    return 0


if __name__ == "__main__":
    sys.exit(main())
