"""Length-prefixed binary frames for the wire protocol.

One frame is one protocol message.  The layout (all integers
big-endian) is::

    +-------+------+----------+--------------------+
    | magic | type | body len | body (UTF-8 JSON)  |
    | 4 B   | 1 B  | 4 B      | body-len bytes     |
    +-------+------+----------+--------------------+

``magic`` is ``b"EDN1"`` (protocol name + version); a connection
presenting anything else is dropped with :class:`FrameError` rather
than mis-parsed.  The body is a JSON object whose fields depend on the
frame type; records and channel identifiers are encoded by
:func:`encode_payload`, which extends JSON with tagged forms for the
Python values Eden streams actually carry (bytes, tuples,
:class:`~repro.core.uid.UID`, :class:`~repro.core.capability.
ChannelCapability`, and dicts with non-string keys).

Frame types map one-to-one onto the protocol's messages:

- ``HELLO`` / ``WELCOME`` / ``ERROR`` — connection setup (see
  :mod:`repro.net.handshake`);
- ``READ`` — active input's demand (request);
- ``DATA`` — passive output's reply to a ``READ``;
- ``WRITE`` — active output's push (request);
- ``ACK`` — passive input's credit grant (reply; see
  :mod:`repro.net.protocol` for the credit rules);
- ``END`` — end of stream; a reply when answering a ``READ``, a
  request when pushed by a writer;
- ``CTRL`` / ``CTRL_REPLY`` — out-of-band introspection (STATS /
  SPANS / HEALTH; see :mod:`repro.obs.control`).  Control frames are
  exchanged on a separate listener with the raw :func:`read_frame` /
  :func:`write_frame` helpers, never through a counted
  :class:`~repro.net.protocol.Connection`, so observing a fleet does
  not perturb the frame counts the paper's cost model predicts.

Any frame body may additionally carry a ``trace`` field (see
:data:`TRACE_KEY`): the causal span context ``[trace, span, parent]``
of the request or reply.  Peers that do not do span tracing simply
ignore the key, so traced and untraced stages interoperate.
"""

from __future__ import annotations

import asyncio
import base64
import enum
import json
import struct
from dataclasses import dataclass, field
from typing import Any

from repro.core.capability import ChannelCapability
from repro.core.errors import EdenError
from repro.core.uid import UID

__all__ = [
    "FrameError",
    "FrameType",
    "Frame",
    "FrameDecoder",
    "MAGIC",
    "HEADER",
    "MAX_FRAME_BODY",
    "encode_payload",
    "decode_payload",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "read_frame_sized",
    "write_frame",
    "TRACE_KEY",
    "attach_trace",
    "frame_trace",
]

#: Protocol identifier + version, first on every frame.
MAGIC = b"EDN1"

#: Header layout: magic, frame type, body length.
HEADER = struct.Struct("!4sBI")

#: Upper bound on one frame's body, a defence against a corrupt or
#: hostile length prefix allocating unbounded memory.
MAX_FRAME_BODY = 16 * 1024 * 1024


class FrameError(EdenError):
    """A frame could not be encoded, decoded, or was malformed."""


class FrameType(enum.IntEnum):
    """The wire protocol's message vocabulary."""

    HELLO = 1
    WELCOME = 2
    READ = 3
    DATA = 4
    WRITE = 5
    ACK = 6
    END = 7
    ERROR = 8
    CTRL = 9
    CTRL_REPLY = 10


@dataclass(frozen=True)
class Frame:
    """One decoded protocol message: a type plus its JSON body."""

    type: FrameType
    body: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        inner = " ".join(f"{k}={v!r}" for k, v in sorted(self.body.items()))
        return f"<{self.type.name} {inner}>".replace(" >", ">")


# ---------------------------------------------------------------------------
# Payload (record / channel-id) codec: JSON plus tagged extensions.
# ---------------------------------------------------------------------------

#: JSON object keys reserved for the tagged extensions below.
_TAGS = ("__bytes__", "__tuple__", "__uid__", "__chan__", "__dict__")


def encode_payload(value: Any) -> Any:
    """Map ``value`` to a JSON-representable form, tagging extensions.

    Supported beyond plain JSON: ``bytes`` (base64), ``tuple``
    (preserved as tuple, not list), :class:`UID`,
    :class:`ChannelCapability`, and dicts whose keys are non-string or
    collide with a reserved tag.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_payload(item) for item in value]}
    if isinstance(value, list):
        return [encode_payload(item) for item in value]
    if isinstance(value, UID):
        return {"__uid__": [value.space, value.serial, value.nonce]}
    if isinstance(value, ChannelCapability):
        return {
            "__chan__": {
                "owner": [value.owner.space, value.owner.serial, value.owner.nonce],
                "name": value.name,
                "secret": value.secret,
            }
        }
    if isinstance(value, dict):
        plain = all(isinstance(key, str) and key not in _TAGS for key in value)
        if plain:
            return {key: encode_payload(item) for key, item in value.items()}
        return {
            "__dict__": [
                [encode_payload(key), encode_payload(item)]
                for key, item in value.items()
            ]
        }
    raise FrameError(f"cannot encode {type(value).__name__} payload: {value!r}")


def decode_payload(value: Any) -> Any:
    """Inverse of :func:`encode_payload`."""
    if isinstance(value, list):
        return [decode_payload(item) for item in value]
    if isinstance(value, dict):
        if "__bytes__" in value:
            return base64.b64decode(value["__bytes__"])
        if "__tuple__" in value:
            return tuple(decode_payload(item) for item in value["__tuple__"])
        if "__uid__" in value:
            space, serial, nonce = value["__uid__"]
            return UID(space=space, serial=serial, nonce=nonce)
        if "__chan__" in value:
            inner = value["__chan__"]
            space, serial, nonce = inner["owner"]
            return ChannelCapability(
                owner=UID(space=space, serial=serial, nonce=nonce),
                name=inner["name"],
                secret=inner["secret"],
            )
        if "__dict__" in value:
            return {
                decode_payload(key): decode_payload(item)
                for key, item in value["__dict__"]
            }
        return {key: decode_payload(item) for key, item in value.items()}
    return value


# ---------------------------------------------------------------------------
# Span-context header field.
# ---------------------------------------------------------------------------

#: Reserved body key carrying a span context as ``[trace, span, parent]``.
TRACE_KEY = "trace"


def attach_trace(body: dict[str, Any], context: Any) -> dict[str, Any]:
    """Return ``body`` with ``context`` attached under :data:`TRACE_KEY`.

    ``context`` is a :class:`repro.obs.spans.SpanContext` (or ``None``,
    in which case ``body`` is returned unchanged).  Mutates and returns
    ``body`` for call-site convenience.
    """
    if context is not None:
        body[TRACE_KEY] = context.as_wire()
    return body


def frame_trace(frame: Frame) -> Any:
    """The span context a frame carries, or ``None``.

    Tolerant by design: an absent, malformed or foreign ``trace`` field
    yields ``None`` rather than an error, so an old peer (or another
    implementation) can never break a traced stage.
    """
    from repro.obs.spans import SpanContext

    return SpanContext.from_wire(frame.body.get(TRACE_KEY))


# ---------------------------------------------------------------------------
# Frame <-> bytes.
# ---------------------------------------------------------------------------


def encode_frame(frame: Frame) -> bytes:
    """Serialize one frame to its wire form."""
    try:
        body = json.dumps(
            encode_payload(frame.body), separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise FrameError(f"unencodable frame body: {error}") from error
    if len(body) > MAX_FRAME_BODY:
        raise FrameError(f"frame body of {len(body)} bytes exceeds MAX_FRAME_BODY")
    return HEADER.pack(MAGIC, int(frame.type), len(body)) + body


def decode_frame(buffer: bytes) -> tuple[Frame, int]:
    """Decode one frame from the head of ``buffer``.

    Returns ``(frame, consumed)``.  Raises :class:`FrameError` on a
    malformed header and ``IndexError``-free ``None`` handling is the
    caller's job via :class:`FrameDecoder`; this low-level form demands
    the buffer hold at least one complete frame.
    """
    if len(buffer) < HEADER.size:
        raise FrameError(f"truncated header: {len(buffer)} bytes")
    magic, type_code, length = HEADER.unpack_from(buffer)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if length > MAX_FRAME_BODY:
        raise FrameError(f"declared body of {length} bytes exceeds MAX_FRAME_BODY")
    if len(buffer) < HEADER.size + length:
        raise FrameError("truncated body")
    try:
        frame_type = FrameType(type_code)
    except ValueError as error:
        raise FrameError(f"unknown frame type {type_code}") from error
    raw = buffer[HEADER.size : HEADER.size + length]
    try:
        body = decode_payload(json.loads(raw.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"undecodable frame body: {error}") from error
    if not isinstance(body, dict):
        raise FrameError(f"frame body must be an object, got {type(body).__name__}")
    return Frame(type=frame_type, body=body), HEADER.size + length


class FrameDecoder:
    """Incremental decoder for a byte stream of frames.

    Feed arbitrary chunks; complete frames come out.  Tolerates frames
    split across (or packed within) TCP segments.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        """Absorb ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: list[Frame] = []
        while True:
            if len(self._buffer) < HEADER.size:
                break
            magic, _type_code, length = HEADER.unpack_from(self._buffer)
            if magic != MAGIC:
                raise FrameError(f"bad magic {bytes(magic)!r}")
            if length > MAX_FRAME_BODY:
                raise FrameError(f"declared body of {length} bytes exceeds cap")
            if len(self._buffer) < HEADER.size + length:
                break
            frame, consumed = decode_frame(bytes(self._buffer))
            del self._buffer[:consumed]
            frames.append(frame)
        return frames

    @property
    def pending(self) -> int:
        """Bytes buffered awaiting a complete frame."""
        return len(self._buffer)


# ---------------------------------------------------------------------------
# asyncio stream helpers.
# ---------------------------------------------------------------------------


async def read_frame_sized(
    reader: asyncio.StreamReader,
) -> tuple[Frame | None, int]:
    """Read one frame; returns ``(frame, wire_bytes)``, frame None on EOF."""
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None, 0
        raise FrameError("connection closed mid-header") from error
    magic, type_code, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if length > MAX_FRAME_BODY:
        raise FrameError(f"declared body of {length} bytes exceeds cap")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError("connection closed mid-body") from error
    frame, consumed = decode_frame(header + body)
    return frame, consumed


async def read_frame(reader: asyncio.StreamReader) -> Frame | None:
    """Read exactly one frame; ``None`` on clean EOF at a frame edge."""
    frame, _wire_bytes = await read_frame_sized(reader)
    return frame


async def write_frame(writer: asyncio.StreamWriter, frame: Frame) -> int:
    """Send one frame; returns the bytes put on the wire."""
    wire = encode_frame(frame)
    writer.write(wire)
    await writer.drain()
    return len(wire)
