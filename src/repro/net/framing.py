"""Length-prefixed binary frames for the wire protocol.

One frame is one protocol message.  The layout (all integers
big-endian) is::

    +-------+------+----------+--------------------+
    | magic | type | body len | body               |
    | 4 B   | 1 B  | 4 B      | body-len bytes     |
    +-------+------+----------+--------------------+

``magic`` is ``b"EDN1"`` (protocol name + version); a connection
presenting anything else is dropped with :class:`FrameError` rather
than mis-parsed.

The body is one of two encodings of the same dict-of-fields model,
selected per frame by the high bit of the type byte (so every frame is
self-describing and the two codecs can share a connection):

- **json** (type bit clear) — a UTF-8 JSON object.  Records and
  channel identifiers are encoded by :func:`encode_payload`, which
  extends JSON with tagged forms for the Python values Eden streams
  actually carry (bytes, tuples, :class:`~repro.core.uid.UID`,
  :class:`~repro.core.capability.ChannelCapability`, and dicts with
  non-string keys).  Every peer speaks it; handshake frames always
  use it.
- **binary** (type bit set) — a compact tagged form (one tag byte per
  value, zigzag varints for integers, length-prefixed UTF-8 for
  strings) that needs no base64 detour for bytes and no tag-escaping
  for dicts.  It is negotiated in the HELLO/WELCOME exchange (see
  :mod:`repro.net.handshake`); a peer that never offers it simply
  keeps receiving JSON — codec mixing is per-connection, never a
  protocol fork.

Encoders append into caller-supplied ``bytearray`` buffers
(:func:`encode_frame_into`) so several frames can be coalesced into
one ``write``; decoders work over ``memoryview`` slices so a partial
frame is never re-copied while it accumulates.

Frame types map one-to-one onto the protocol's messages:

- ``HELLO`` / ``WELCOME`` / ``ERROR`` — connection setup (see
  :mod:`repro.net.handshake`);
- ``READ`` — active input's demand (request);
- ``DATA`` — passive output's reply to a ``READ``;
- ``WRITE`` — active output's push (request);
- ``ACK`` — passive input's credit grant (reply; see
  :mod:`repro.net.protocol` for the credit rules);
- ``END`` — end of stream; a reply when answering a ``READ``, a
  request when pushed by a writer;
- ``CTRL`` / ``CTRL_REPLY`` — out-of-band introspection (STATS /
  SPANS / HEALTH; see :mod:`repro.obs.control`).  Control frames are
  exchanged on a separate listener with the raw :func:`read_frame` /
  :func:`write_frame` helpers, never through a counted
  :class:`~repro.net.protocol.Connection`, so observing a fleet does
  not perturb the frame counts the paper's cost model predicts.

Any frame body may additionally carry a ``trace`` field (see
:data:`TRACE_KEY`): the causal span context ``[trace, span, parent]``
of the request or reply.  Peers that do not do span tracing simply
ignore the key, so traced and untraced stages interoperate.

**Logical channels.**  A frame may belong to a *logical channel* —
one of many multiplexed streams sharing a single TCP connection (see
:mod:`repro.net.mux`).  The channel id travels as a header extension,
not a body field, so a relay (the broker) can route frames without
decoding bodies: when bit :data:`CHAN_FLAG` of the type byte is set, a
4-byte big-endian unsigned channel id immediately follows the 9-byte
header, before the body.  The body-length field still counts only the
body.  Frames without the flag (``Frame.chan is None``) are exactly
the pre-channel wire form, so un-multiplexed peers interoperate
unchanged.
"""

from __future__ import annotations

import asyncio
import base64
import enum
import json
import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.capability import ChannelCapability
from repro.core.errors import EdenError
from repro.core.uid import UID
from repro.net.bufpool import POOL, BufferPool

__all__ = [
    "FrameError",
    "FrameType",
    "Frame",
    "FrameDecoder",
    "BufferedFrameReader",
    "SocketFrameReader",
    "MAGIC",
    "HEADER",
    "MAX_FRAME_BODY",
    "READ_CHUNK",
    "DECODER_SHRINK",
    "CODEC_JSON",
    "CODEC_BINARY",
    "CODECS",
    "BINARY_FLAG",
    "CHAN_FLAG",
    "MAX_CHANNEL_ID",
    "encode_payload",
    "decode_payload",
    "encode_frame",
    "encode_frame_into",
    "decode_frame",
    "read_frame",
    "read_frame_sized",
    "write_frame",
    "write_frames",
    "TRACE_KEY",
    "attach_trace",
    "frame_trace",
]

#: Protocol identifier + version, first on every frame.
MAGIC = b"EDN1"

#: Header layout: magic, frame type (with codec flag), body length.
HEADER = struct.Struct("!4sBI")

#: Upper bound on one frame's body, a defence against a corrupt or
#: hostile length prefix allocating unbounded memory.
MAX_FRAME_BODY = 16 * 1024 * 1024

#: The always-available UTF-8 JSON body encoding.
CODEC_JSON = "json"
#: The negotiated compact tagged body encoding.
CODEC_BINARY = "binary"
#: Every codec this implementation speaks, preference first.
CODECS = (CODEC_BINARY, CODEC_JSON)

#: High bit of the type byte: set when the body is binary-encoded.
BINARY_FLAG = 0x80

#: Type-byte flag: a 4-byte channel id follows the header.
CHAN_FLAG = 0x40

#: The channel-id header extension (big-endian unsigned 32-bit).
_CHAN_EXT = struct.Struct("!I")

#: Largest representable logical-channel id.
MAX_CHANNEL_ID = 2**32 - 1

#: Every bit of the type byte that is a flag, not part of the type.
_FLAG_MASK = BINARY_FLAG | CHAN_FLAG


class FrameError(EdenError):
    """A frame could not be encoded, decoded, or was malformed."""


class FrameType(enum.IntEnum):
    """The wire protocol's message vocabulary."""

    HELLO = 1
    WELCOME = 2
    READ = 3
    DATA = 4
    WRITE = 5
    ACK = 6
    END = 7
    ERROR = 8
    CTRL = 9
    CTRL_REPLY = 10


@dataclass(frozen=True)
class Frame:
    """One decoded protocol message: a type plus its JSON body.

    ``chan`` is the logical-channel id the frame travels on, or
    ``None`` for a frame outside any multiplexed connection (the
    pre-channel wire form).
    """

    type: FrameType
    body: dict[str, Any] = field(default_factory=dict)
    chan: int | None = None

    def __str__(self) -> str:
        inner = " ".join(f"{k}={v!r}" for k, v in sorted(self.body.items()))
        label = self.type.name if self.chan is None else (
            f"{self.type.name}@{self.chan}"
        )
        return f"<{label} {inner}>".replace(" >", ">")


# ---------------------------------------------------------------------------
# Payload (record / channel-id) codec: JSON plus tagged extensions.
# ---------------------------------------------------------------------------

#: JSON object keys reserved for the tagged extensions below.
_TAGS = ("__bytes__", "__tuple__", "__uid__", "__chan__", "__dict__")


def encode_payload(value: Any) -> Any:
    """Map ``value`` to a JSON-representable form, tagging extensions.

    Supported beyond plain JSON: ``bytes`` (base64), ``tuple``
    (preserved as tuple, not list), :class:`UID`,
    :class:`ChannelCapability`, and dicts whose keys are non-string or
    collide with a reserved tag.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_payload(item) for item in value]}
    if isinstance(value, list):
        return [encode_payload(item) for item in value]
    if isinstance(value, UID):
        return {"__uid__": [value.space, value.serial, value.nonce]}
    if isinstance(value, ChannelCapability):
        return {
            "__chan__": {
                "owner": [value.owner.space, value.owner.serial, value.owner.nonce],
                "name": value.name,
                "secret": value.secret,
            }
        }
    if isinstance(value, dict):
        plain = all(isinstance(key, str) and key not in _TAGS for key in value)
        if plain:
            return {key: encode_payload(item) for key, item in value.items()}
        return {
            "__dict__": [
                [encode_payload(key), encode_payload(item)]
                for key, item in value.items()
            ]
        }
    raise FrameError(f"cannot encode {type(value).__name__} payload: {value!r}")


def decode_payload(value: Any) -> Any:
    """Inverse of :func:`encode_payload`."""
    if isinstance(value, list):
        return [decode_payload(item) for item in value]
    if isinstance(value, dict):
        if "__bytes__" in value:
            return base64.b64decode(value["__bytes__"])
        if "__tuple__" in value:
            return tuple(decode_payload(item) for item in value["__tuple__"])
        if "__uid__" in value:
            space, serial, nonce = value["__uid__"]
            return UID(space=space, serial=serial, nonce=nonce)
        if "__chan__" in value:
            inner = value["__chan__"]
            space, serial, nonce = inner["owner"]
            return ChannelCapability(
                owner=UID(space=space, serial=serial, nonce=nonce),
                name=inner["name"],
                secret=inner["secret"],
            )
        if "__dict__" in value:
            return {
                decode_payload(key): decode_payload(item)
                for key, item in value["__dict__"]
            }
        return {key: decode_payload(item) for key, item in value.items()}
    return value


# ---------------------------------------------------------------------------
# Binary body codec: one tag byte per value, varints for integers.
# ---------------------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_UID = 0x0A
_T_CHAN = 0x0B

_F64 = struct.Struct("!d")


def _put_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _put_int(out: bytearray, value: int) -> None:
    """Append a signed integer as a zigzag varint (any magnitude)."""
    _put_varint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))


def _encode_binary(value: Any, out: bytearray) -> None:
    """Append ``value`` in the tagged binary form."""
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        _put_int(out, value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_T_STR)
        _put_varint(out, len(data))
        out += data
    elif isinstance(value, bytes):
        out.append(_T_BYTES)
        _put_varint(out, len(value))
        out += value
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        _put_varint(out, len(value))
        for item in value:
            _encode_binary(item, out)
    elif isinstance(value, list):
        out.append(_T_LIST)
        _put_varint(out, len(value))
        for item in value:
            _encode_binary(item, out)
    elif isinstance(value, UID):
        out.append(_T_UID)
        _put_int(out, value.space)
        _put_int(out, value.serial)
        _put_int(out, value.nonce)
    elif isinstance(value, ChannelCapability):
        out.append(_T_CHAN)
        _put_int(out, value.owner.space)
        _put_int(out, value.owner.serial)
        _put_int(out, value.owner.nonce)
        _encode_binary(value.name, out)
        _put_int(out, value.secret)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        _put_varint(out, len(value))
        for key, item in value.items():
            _encode_binary(key, out)
            _encode_binary(item, out)
    else:
        raise FrameError(f"cannot encode {type(value).__name__} payload: {value!r}")


def _get_varint(view: memoryview, offset: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if offset >= len(view):
            raise FrameError("truncated binary body: varint runs off the end")
        byte = view[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 1024:  # > 1024-bit integer: corrupt, not data
            raise FrameError("binary body varint is implausibly long")


def _get_int(view: memoryview, offset: int) -> tuple[int, int]:
    raw, offset = _get_varint(view, offset)
    return (-((raw + 1) >> 1) if raw & 1 else raw >> 1), offset


def _get_sized(view: memoryview, offset: int, size: int) -> tuple[memoryview, int]:
    end = offset + size
    if end > len(view):
        raise FrameError("truncated binary body: value runs off the end")
    return view[offset:end], end


def _decode_binary(view: memoryview, offset: int) -> tuple[Any, int]:
    """Decode one tagged value starting at ``offset``."""
    if offset >= len(view):
        raise FrameError("truncated binary body: missing value tag")
    tag = view[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        return _get_int(view, offset)
    if tag == _T_FLOAT:
        raw, offset = _get_sized(view, offset, _F64.size)
        return _F64.unpack(raw)[0], offset
    if tag == _T_STR:
        size, offset = _get_varint(view, offset)
        raw, offset = _get_sized(view, offset, size)
        try:
            return str(raw, "utf-8"), offset
        except UnicodeDecodeError as error:
            raise FrameError(f"undecodable binary string: {error}") from error
    if tag == _T_BYTES:
        size, offset = _get_varint(view, offset)
        raw, offset = _get_sized(view, offset, size)
        return bytes(raw), offset
    if tag in (_T_LIST, _T_TUPLE):
        count, offset = _get_varint(view, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_binary(view, offset)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), offset
    if tag == _T_DICT:
        count, offset = _get_varint(view, offset)
        pairs = {}
        for _ in range(count):
            key, offset = _decode_binary(view, offset)
            item, offset = _decode_binary(view, offset)
            pairs[key] = item
        return pairs, offset
    if tag == _T_UID:
        space, offset = _get_int(view, offset)
        serial, offset = _get_int(view, offset)
        nonce, offset = _get_int(view, offset)
        return UID(space=space, serial=serial, nonce=nonce), offset
    if tag == _T_CHAN:
        space, offset = _get_int(view, offset)
        serial, offset = _get_int(view, offset)
        nonce, offset = _get_int(view, offset)
        name, offset = _decode_binary(view, offset)
        secret, offset = _get_int(view, offset)
        return ChannelCapability(
            owner=UID(space=space, serial=serial, nonce=nonce),
            name=name, secret=secret,
        ), offset
    raise FrameError(f"unknown binary value tag 0x{tag:02x}")


# ---------------------------------------------------------------------------
# Span-context header field.
# ---------------------------------------------------------------------------

#: Reserved body key carrying a span context as ``[trace, span, parent]``.
TRACE_KEY = "trace"


def attach_trace(body: dict[str, Any], context: Any) -> dict[str, Any]:
    """Return ``body`` with ``context`` attached under :data:`TRACE_KEY`.

    ``context`` is a :class:`repro.obs.spans.SpanContext` (or ``None``,
    in which case ``body`` is returned unchanged).  Mutates and returns
    ``body`` for call-site convenience.
    """
    if context is not None:
        body[TRACE_KEY] = context.as_wire()
    return body


def frame_trace(frame: Frame) -> Any:
    """The span context a frame carries, or ``None``.

    Tolerant by design: an absent, malformed or foreign ``trace`` field
    yields ``None`` rather than an error, so an old peer (or another
    implementation) can never break a traced stage.
    """
    from repro.obs.spans import SpanContext

    return SpanContext.from_wire(frame.body.get(TRACE_KEY))


# ---------------------------------------------------------------------------
# Frame <-> bytes.
# ---------------------------------------------------------------------------


def encode_frame_into(frame: Frame, out: bytearray,
                      codec: str = CODEC_JSON) -> int:
    """Append one frame's wire form to ``out``; return its byte length.

    Appending into a caller-owned buffer lets several frames coalesce
    into one socket write (see :func:`write_frames`) and avoids the
    header-plus-body concatenation copy of the one-shot path.
    """
    start = len(out)
    head = HEADER.size
    if frame.chan is not None:
        if not 0 <= frame.chan <= MAX_CHANNEL_ID:
            raise FrameError(
                f"channel id {frame.chan} outside [0, {MAX_CHANNEL_ID}]"
            )
        head += _CHAN_EXT.size
    out += b"\x00" * head
    if codec == CODEC_BINARY:
        _encode_binary(frame.body, out)
        type_code = int(frame.type) | BINARY_FLAG
    elif codec == CODEC_JSON:
        try:
            out += json.dumps(
                encode_payload(frame.body), separators=(",", ":"),
                allow_nan=False,
            ).encode("utf-8")
        except (TypeError, ValueError) as error:
            raise FrameError(f"unencodable frame body: {error}") from error
        type_code = int(frame.type)
    else:
        raise FrameError(f"unknown codec {codec!r} (expected one of {CODECS})")
    length = len(out) - start - head
    if length > MAX_FRAME_BODY:
        del out[start:]
        raise FrameError(f"frame body of {length} bytes exceeds MAX_FRAME_BODY")
    if frame.chan is not None:
        type_code |= CHAN_FLAG
        _CHAN_EXT.pack_into(out, start + HEADER.size, frame.chan)
    HEADER.pack_into(out, start, MAGIC, type_code, length)
    return len(out) - start


def encode_frame(frame: Frame, codec: str = CODEC_JSON) -> bytes:
    """Serialize one frame to its wire form."""
    out = bytearray()
    encode_frame_into(frame, out, codec)
    return bytes(out)


def _frame_type(type_code: int) -> FrameType:
    """The type byte's :class:`FrameType`, flags stripped.

    Checked *before* any flag-driven header-extension parsing, so a
    garbage type byte whose bits happen to include :data:`CHAN_FLAG`
    reports "unknown frame type", not a misleading extension error.
    """
    try:
        return FrameType(type_code & ~_FLAG_MASK)
    except ValueError as error:
        raise FrameError(
            f"unknown frame type {type_code & ~_FLAG_MASK}"
        ) from error


def _decode_body(type_code: int, view: memoryview,
                 chan: int | None = None) -> Frame:
    """Build a Frame from its raw type byte and body bytes.

    The codec is read off the type byte's :data:`BINARY_FLAG`, so
    every frame is self-describing — a connection can switch codecs
    after negotiation without a parser mode change.  ``chan`` is the
    already-parsed channel-id header extension, if the type byte
    carried :data:`CHAN_FLAG`.
    """
    frame_type = _frame_type(type_code)
    if type_code & BINARY_FLAG:
        body, end = _decode_binary(view, 0)
        if end != len(view):
            raise FrameError(
                f"binary body has {len(view) - end} trailing byte(s)"
            )
    else:
        try:
            body = decode_payload(json.loads(bytes(view).decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise FrameError(f"undecodable frame body: {error}") from error
    if not isinstance(body, dict):
        raise FrameError(f"frame body must be an object, got {type(body).__name__}")
    return Frame(type=frame_type, body=body, chan=chan)


def decode_frame(buffer: bytes) -> tuple[Frame, int]:
    """Decode one frame from the head of ``buffer``.

    Returns ``(frame, consumed)``.  Raises :class:`FrameError` on a
    malformed header and ``IndexError``-free ``None`` handling is the
    caller's job via :class:`FrameDecoder`; this low-level form demands
    the buffer hold at least one complete frame.
    """
    if len(buffer) < HEADER.size:
        raise FrameError(f"truncated header: {len(buffer)} bytes")
    magic, type_code, length = HEADER.unpack_from(buffer)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if length > MAX_FRAME_BODY:
        raise FrameError(f"declared body of {length} bytes exceeds MAX_FRAME_BODY")
    _frame_type(type_code)
    head = HEADER.size
    chan: int | None = None
    if type_code & CHAN_FLAG:
        head += _CHAN_EXT.size
        if len(buffer) < head:
            raise FrameError("truncated channel-id extension")
        chan = _CHAN_EXT.unpack_from(buffer, HEADER.size)[0]
    if len(buffer) < head + length:
        raise FrameError("truncated body")
    view = memoryview(buffer)[head : head + length]
    return _decode_body(type_code, view, chan), head + length


#: Residual-buffer size above which :class:`FrameDecoder` right-sizes
#: its allocation once the pending tail drops back to a fraction of it.
DECODER_SHRINK = 64 * 1024


class FrameDecoder:
    """Incremental decoder for a byte stream of frames.

    Feed arbitrary chunks; complete frames come out.  Tolerates frames
    split across (or packed within) TCP segments.  Consumed bytes are
    tracked by a running offset and the buffer is compacted only once
    the consumed prefix outweighs what remains, so feeding a large
    frame chunk-by-chunk costs O(n), not O(n²) re-copies.

    **Shrink guarantee.**  ``del buffer[:offset]`` compaction trims the
    *length* but may leave the *allocation* at whatever a large frame
    grew it to (a CPython resize keeps capacity within a window of the
    new size).  Once the buffer has ever grown past
    ``shrink_threshold`` and the pending tail falls to a quarter of
    that peak, the residue is rebuilt in a fresh right-sized
    ``bytearray`` — one 16 MB frame no longer pins 16 MB for the life
    of the connection.
    """

    def __init__(self, shrink_threshold: int = DECODER_SHRINK,
                 tee: Any = None) -> None:
        self._buffer = bytearray()
        self._offset = 0
        self._shrink = max(1, shrink_threshold)
        self._peak = 0
        #: Optional per-frame raw-bytes observer: called with a
        #: ``memoryview`` of each decoded frame's full wire form (the
        #: flight recorder's inbound hook).  The view borrows the
        #: decoder's buffer — consume it synchronously, never store it.
        self.tee = tee

    def feed_sized(self, data: Any) -> list[tuple[Frame, int]]:
        """Absorb ``data``; return ``(frame, wire_bytes)`` per frame.

        ``wire_bytes`` is each frame's full on-wire size (header plus
        any channel extension plus body), so byte accounting survives
        segment-oriented reads.  Accepts ``bytes``, ``bytearray`` or
        ``memoryview`` — a ``recv_into`` scratch slice feeds directly.
        """
        self._buffer += data
        buffer = self._buffer
        if len(buffer) > self._peak:
            self._peak = len(buffer)
        offset = self._offset
        frames: list[tuple[Frame, int]] = []
        view = memoryview(buffer)
        try:
            while True:
                if len(buffer) - offset < HEADER.size:
                    break
                magic, type_code, length = HEADER.unpack_from(buffer, offset)
                if magic != MAGIC:
                    raise FrameError(f"bad magic {bytes(magic)!r}")
                if length > MAX_FRAME_BODY:
                    raise FrameError(
                        f"declared body of {length} bytes exceeds cap"
                    )
                _frame_type(type_code)
                body_start = offset + HEADER.size
                chan: int | None = None
                if type_code & CHAN_FLAG:
                    if len(buffer) - body_start < _CHAN_EXT.size:
                        break
                    chan = _CHAN_EXT.unpack_from(buffer, body_start)[0]
                    body_start += _CHAN_EXT.size
                if len(buffer) - body_start < length:
                    break
                frames.append((
                    _decode_body(
                        type_code, view[body_start:body_start + length], chan
                    ),
                    body_start + length - offset,
                ))
                if self.tee is not None:
                    self.tee(view[offset:body_start + length])
                offset = body_start + length
        finally:
            view.release()
        if offset and offset * 2 >= len(buffer):
            del buffer[:offset]
            offset = 0
        if (self._peak > self._shrink
                and (len(buffer) - offset) * 4 <= self._peak):
            self._buffer = bytearray(memoryview(buffer)[offset:])
            self._offset = 0
            self._peak = len(self._buffer)
        else:
            self._offset = offset
        return frames

    def feed(self, data: Any) -> list[Frame]:
        """Absorb ``data``; return every frame completed by it."""
        return [frame for frame, _size in self.feed_sized(data)]

    @property
    def pending(self) -> int:
        """Bytes buffered awaiting a complete frame."""
        return len(self._buffer) - self._offset

    @property
    def buffer_size(self) -> int:
        """Current internal buffer length (shrink-fix observability)."""
        return len(self._buffer)


# ---------------------------------------------------------------------------
# asyncio stream helpers.
# ---------------------------------------------------------------------------


async def read_frame_sized(
    reader: asyncio.StreamReader,
) -> tuple[Frame | None, int]:
    """Read one frame; returns ``(frame, wire_bytes)``, frame None on EOF."""
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None, 0
        raise FrameError("connection closed mid-header") from error
    magic, type_code, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if length > MAX_FRAME_BODY:
        raise FrameError(f"declared body of {length} bytes exceeds cap")
    _frame_type(type_code)
    head = HEADER.size
    chan: int | None = None
    if type_code & CHAN_FLAG:
        try:
            ext = await reader.readexactly(_CHAN_EXT.size)
        except asyncio.IncompleteReadError as error:
            raise FrameError("connection closed mid-channel-id") from error
        chan = _CHAN_EXT.unpack(ext)[0]
        head += _CHAN_EXT.size
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError("connection closed mid-body") from error
    return _decode_body(type_code, memoryview(body), chan), head + length


async def read_frame(reader: asyncio.StreamReader) -> Frame | None:
    """Read exactly one frame; ``None`` on clean EOF at a frame edge."""
    frame, _wire_bytes = await read_frame_sized(reader)
    return frame


#: Default segment size for the buffered frame readers: big enough to
#: swallow a pipelined burst in one read, small enough to recycle.
READ_CHUNK = 64 * 1024


class BufferedFrameReader:
    """Frame source that reads whole segments, not exact field sizes.

    :func:`read_frame_sized` awaits ``readexactly`` two or three times
    per frame, and each await returns a fresh ``bytes`` object.  This
    reader instead pulls whatever the transport already has (up to
    ``chunk`` bytes) and runs it through one incremental
    :class:`FrameDecoder`, so a single await — and a single buffer
    append — amortises over every frame the segment carried.  A
    pipelined burst of small DATA frames decodes out of one read.

    :meth:`recv_nowait` hands out frames that are already decoded
    without touching the socket; the pull server uses it to batch all
    the READs one segment carried into a single vectored reply burst.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 chunk: int = READ_CHUNK, tee: Any = None) -> None:
        self._reader = reader
        self._decoder = FrameDecoder(tee=tee)
        self._chunk = chunk
        self._ready: deque[tuple[Frame, int]] = deque()
        self._eof = False

    async def recv(self) -> tuple[Frame | None, int]:
        """Next frame as ``(frame, wire_bytes)``; ``(None, 0)`` on EOF."""
        while not self._ready:
            if self._eof:
                return None, 0
            data = await self._reader.read(self._chunk)
            if not data:
                self._eof = True
                if self._decoder.pending:
                    raise FrameError("connection closed mid-frame")
                return None, 0
            self._ready.extend(self._decoder.feed_sized(data))
        return self._ready.popleft()

    def recv_nowait(self) -> tuple[Frame, int] | None:
        """An already-decoded ``(frame, wire_bytes)``, else ``None``.

        Never performs I/O, so "nothing ready" only means the last
        segment is fully served — more may be sitting in the kernel.
        """
        return self._ready.popleft() if self._ready else None

    @property
    def buffered(self) -> int:
        """Frames decoded and waiting to be served."""
        return len(self._ready)


class SocketFrameReader:
    """The segment-oriented frame source over a plain blocking socket.

    Reads with ``recv_into`` against one reusable scratch buffer, so
    steady-state receiving allocates nothing per segment — the true
    zero-copy read path.  The asyncio data plane cannot use it (a
    transport owns its socket; raw ``recv`` beside it would corrupt
    the stream) and uses :class:`BufferedFrameReader` instead; this
    class serves synchronous tooling, tests, and benchmark probes.
    """

    def __init__(self, sock: Any, chunk: int = READ_CHUNK) -> None:
        self._sock = sock
        self._scratch = bytearray(chunk)
        self._view = memoryview(self._scratch)
        self._decoder = FrameDecoder()
        self._ready: deque[tuple[Frame, int]] = deque()
        self._eof = False

    def recv(self) -> tuple[Frame | None, int]:
        """Next frame as ``(frame, wire_bytes)``; ``(None, 0)`` on EOF."""
        while not self._ready:
            if self._eof:
                return None, 0
            count = self._sock.recv_into(self._view)
            if not count:
                self._eof = True
                if self._decoder.pending:
                    raise FrameError("connection closed mid-frame")
                return None, 0
            self._ready.extend(self._decoder.feed_sized(self._view[:count]))
        return self._ready.popleft()


def _release_after_write(pool: BufferPool | None,
                         writer: asyncio.StreamWriter,
                         out: bytearray) -> None:
    """Recycle ``out`` once the transport can no longer reference it.

    asyncio's built-in transports copy on ``write`` (immediate send,
    or an extend into their own buffer), so recycling after ``drain``
    is safe.  For any transport still holding queued bytes we cannot
    prove the copy, so the buffer is dropped to the allocator instead
    of recycled — correctness over hit rate.
    """
    if pool is None:
        return
    transport = getattr(writer, "transport", None)
    try:
        busy = transport is not None and transport.get_write_buffer_size() > 0
    except Exception:
        busy = True
    if not busy:
        pool.release(out)


async def write_frame(
    writer: asyncio.StreamWriter, frame: Frame, codec: str = CODEC_JSON,
    pool: BufferPool | None = POOL, tee: Any = None,
) -> int:
    """Send one frame; returns the bytes put on the wire.

    The wire form is built in a pooled ``bytearray`` (recycled
    allocation, no per-frame garbage); pass ``pool=None`` to opt out.
    ``tee`` observes the encoded wire bytes before the write — the
    flight recorder's outbound hook, reusing the pooled buffer rather
    than re-encoding or copying the frame.
    """
    out = pool.acquire() if pool is not None else bytearray()
    size = encode_frame_into(frame, out, codec)
    if tee is not None:
        tee(out)
    writer.write(out)
    await writer.drain()
    _release_after_write(pool, writer, out)
    return size


async def write_frames(
    writer: asyncio.StreamWriter,
    frames: Sequence[Frame],
    codec: str = CODEC_JSON,
    pool: BufferPool | None = POOL,
    tee: Any = None,
) -> int:
    """Send several frames in one coalesced write; returns wire bytes.

    One pooled buffer, one ``write``, one ``drain`` — a pipelined
    burst of READs (or a credit window of WRITEs) costs a single
    syscall instead of one per frame.  ``tee`` observes each frame's
    wire slice of the shared buffer individually, so a coalesced burst
    still records one flight event per frame.
    """
    out = pool.acquire() if pool is not None else bytearray()
    sizes = []
    for frame in frames:
        sizes.append(encode_frame_into(frame, out, codec))
    size = len(out)
    if tee is not None:
        with memoryview(out) as view:
            position = 0
            for frame_size in sizes:
                tee(view[position:position + frame_size])
                position += frame_size
    writer.write(out)
    await writer.drain()
    _release_after_write(pool, writer, out)
    return size
