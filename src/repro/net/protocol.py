"""The four transput primitives as wire roles over TCP.

Only *corresponding* pairs of primitives connect (the paper's central
observation), and each pair is one connection pattern:

- **read-only** (active input ↔ passive output): the consumer
  connects with role ``pull`` and issues ``READ`` frames — the
  demand-driven pull protocol — and the producer answers each with one
  ``DATA`` (or ``END``) frame.  :class:`RemoteReadable` is the active
  side; :func:`serve_pull` is the passive side.

- **write-only** (active output ↔ passive input): the producer
  connects with role ``push`` and sends ``WRITE`` frames under a
  *credit window*: the WELCOME grants an initial allowance of records,
  and every ``ACK`` returns the allowance consumed downstream.  A
  window of 1 is the fully synchronous (lazy) push; a window of k
  keeps k records in flight (the eager/anticipatory knob of §4 —
  :meth:`FlowPolicy.credit_window` derives the window from the same
  policy the simulator uses).  :class:`RemoteWritable` is the active
  side; :func:`serve_push` the passive side.

Backpressure is therefore end-to-end and protocol-level: a slow pull
server simply delays its ``DATA``; a slow push server delays its
``ACK`` (it writes into the local stage first, which may itself block
on *its* downstream connection).

Both remote classes implement the :mod:`repro.aio` ``Readable`` /
``Writable`` protocols, so every existing aio stage composes with them
unchanged — that is what lets :mod:`repro.net.stage` host simulator
transducers with no porting.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Mapping, Union

from repro.core.errors import (
    EdenError,
    NoSuchChannelError,
    StreamProtocolError,
)
from repro.core.tracing import Tracer
from repro.net.framing import (
    Frame,
    FrameError,
    FrameType,
    read_frame_sized,
    write_frame,
)
from repro.net.handshake import (
    ROLE_PULL,
    ROLE_PUSH,
    Hello,
    TicketBook,
    send_hello,
)
from repro.net.metrics import NetStats
from repro.transput.stream import END_TRANSFER, Transfer

__all__ = [
    "WireError",
    "Connection",
    "connect_with_backoff",
    "RemoteReadable",
    "RemoteWritable",
    "serve_pull",
    "serve_push",
]


class WireError(EdenError):
    """The remote peer reported an error frame, or the link misbehaved."""


class Connection:
    """One framed TCP connection with metrics and optional tracing.

    ``end_is_request`` selects the END accounting (True on the pushing
    side of a write-only link; see :mod:`repro.net.metrics`).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        stats: NetStats | None = None,
        end_is_request: bool = False,
        tracer: Tracer | None = None,
        label: str = "conn",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.stats = stats if stats is not None else NetStats()
        self.end_is_request = end_is_request
        self.tracer = tracer
        self.label = label
        self.clock = clock

    async def send(self, frame: Frame) -> None:
        wire_bytes = await write_frame(self.writer, frame)
        self.stats.note_sent(frame, wire_bytes, self.end_is_request)
        if self.tracer is not None:
            self.tracer.emit(
                self.clock(), "send", self.label,
                frame=frame.type.name, bytes=wire_bytes,
            )

    async def recv(self) -> Frame | None:
        frame, wire_bytes = await read_frame_sized(self.reader)
        if frame is not None:
            self.stats.note_received(frame, wire_bytes)
            if self.tracer is not None:
                self.tracer.emit(
                    self.clock(), "recv", self.label,
                    frame=frame.type.name, bytes=wire_bytes,
                )
        return frame

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # peer already gone
            pass


async def connect_with_backoff(
    host: str,
    port: int,
    deadline: float = 15.0,
    first_delay: float = 0.05,
    max_delay: float = 1.0,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial ``host:port``, retrying transient failures with backoff.

    Stages of one pipeline are spawned concurrently, so a client may
    dial before its server listens; exponential backoff up to
    ``deadline`` seconds absorbs that (and transient RSTs) without any
    start-order coordination.
    """
    started = time.monotonic()
    delay = first_delay
    while True:
        try:
            return await asyncio.open_connection(host, port)
        except (ConnectionError, OSError) as error:
            if time.monotonic() - started + delay > deadline:
                raise WireError(
                    f"could not connect to {host}:{port} "
                    f"within {deadline:.1f}s: {error}"
                ) from error
            await asyncio.sleep(delay)
            delay = min(delay * 2, max_delay)


class RemoteReadable:
    """Active input over TCP: the ``Readable`` face of a remote stage.

    ``read(batch)`` sends one ``READ`` frame and blocks for the
    ``DATA``/``END`` reply — one invocation per transfer, exactly the
    simulator's accounting.  END is cached, so re-reading a finished
    stream is local and free (the protocol's idempotent-END rule).
    """

    def __init__(
        self,
        host: str,
        port: int,
        uid: Any,
        book: TicketBook | None = None,
        channel: Any = "Output",
        stats: NetStats | None = None,
        tracer: Tracer | None = None,
        label: str = "pull-client",
        connect_deadline: float = 15.0,
    ) -> None:
        self.host = host
        self.port = port
        self.uid = uid
        self.book = book
        self.channel = channel
        self.stats = stats if stats is not None else NetStats()
        self.tracer = tracer
        self.label = label
        self.connect_deadline = connect_deadline
        self._connection: Connection | None = None
        self._ended = False

    async def _ensure_connected(self) -> Connection:
        if self._connection is None:
            reader, writer = await connect_with_backoff(
                self.host, self.port, deadline=self.connect_deadline
            )
            connection = Connection(
                reader, writer, stats=self.stats,
                tracer=self.tracer, label=self.label,
            )
            await send_hello(
                reader, writer, self.uid, ROLE_PULL,
                channel=self.channel, book=self.book,
            )
            self._connection = connection
        return self._connection

    async def read(self, batch: int = 1) -> Transfer:
        if self._ended:
            return END_TRANSFER
        connection = await self._ensure_connected()
        await connection.send(
            Frame(FrameType.READ, {"batch": max(1, batch),
                                   "channel": self.channel})
        )
        reply = await connection.recv()
        if reply is None:
            raise WireError("peer closed mid-stream (no END received)")
        if reply.type is FrameType.DATA:
            return Transfer.of(reply.body["items"])
        if reply.type is FrameType.END:
            self._ended = True
            await connection.close()
            self._connection = None
            return END_TRANSFER
        if reply.type is FrameType.ERROR:
            raise WireError(
                f"remote error: {reply.body.get('code')} "
                f"({reply.body.get('message')})"
            )
        raise WireError(f"unexpected reply {reply.type.name} to READ")

    async def aclose(self) -> None:
        """Drop the connection (idempotent)."""
        if self._connection is not None:
            await self._connection.close()
            self._connection = None


class RemoteWritable:
    """Active output over TCP: the ``Writable`` face of a remote stage.

    Writes are governed by the credit window the server granted at
    WELCOME: each ``WRITE`` frame spends one credit per record, each
    ``ACK`` refunds what the server consumed.  When credit runs out the
    writer parks on the socket until an ACK arrives — backpressure by
    delayed reply, never by refusal, the paper's flow-control rule.
    """

    def __init__(
        self,
        host: str,
        port: int,
        uid: Any,
        book: TicketBook | None = None,
        channel: Any = "Output",
        stats: NetStats | None = None,
        tracer: Tracer | None = None,
        label: str = "push-client",
        connect_deadline: float = 15.0,
    ) -> None:
        self.host = host
        self.port = port
        self.uid = uid
        self.book = book
        self.channel = channel
        self.stats = stats if stats is not None else NetStats()
        self.tracer = tracer
        self.label = label
        self.connect_deadline = connect_deadline
        self._connection: Connection | None = None
        self._credit = 0
        self._ended = False

    async def _ensure_connected(self) -> Connection:
        if self._connection is None:
            reader, writer = await connect_with_backoff(
                self.host, self.port, deadline=self.connect_deadline
            )
            connection = Connection(
                reader, writer, stats=self.stats, end_is_request=True,
                tracer=self.tracer, label=self.label,
            )
            welcome = await send_hello(
                reader, writer, self.uid, ROLE_PUSH,
                channel=self.channel, book=self.book,
            )
            self._credit = int(welcome.body.get("credit", 1))
            self._connection = connection
        return self._connection

    async def _absorb(self, frame: Frame | None) -> bool:
        """Fold one server frame into the credit; True if final ACK."""
        if frame is None:
            raise WireError("peer closed while acks were outstanding")
        if frame.type is FrameType.ERROR:
            raise WireError(
                f"remote error: {frame.body.get('code')} "
                f"({frame.body.get('message')})"
            )
        if frame.type is not FrameType.ACK:
            raise WireError(f"unexpected frame {frame.type.name} on push link")
        self._credit += int(frame.body.get("credit", 0))
        return bool(frame.body.get("final", False))

    async def write(self, transfer: Transfer) -> None:
        if self._ended:
            raise StreamProtocolError("write after END")
        connection = await self._ensure_connected()
        if transfer.at_end:
            await connection.send(Frame(FrameType.END, {"channel": self.channel}))
            # Wait for the final ack: when it arrives, every record has
            # been consumed downstream and the stage may exit safely.
            while not await self._absorb(await connection.recv()):
                pass
            self._ended = True
            await connection.close()
            self._connection = None
            return
        pending = list(transfer.items)
        while pending:
            while self._credit <= 0:
                await self._absorb(await connection.recv())
            chunk, pending = pending[: self._credit], pending[self._credit:]
            await connection.send(
                Frame(FrameType.WRITE, {"items": chunk, "channel": self.channel})
            )
            self._credit -= len(chunk)


# ---------------------------------------------------------------------------
# Passive (server) sides.
# ---------------------------------------------------------------------------

#: A single stream, or a channel-id -> Readable table (paper §5).
ReadableMap = Union[Any, Mapping[Any, Any]]


def _resolve_channel(readables: ReadableMap, channel: Any) -> Any:
    """Find the Readable a channel identifier addresses.

    A mapping gives multi-channel service: string/integer/capability
    keys are matched by equality, which for capabilities includes the
    64-bit secret — a forged capability simply fails the lookup, the
    same outcome the simulator's ``ChannelMinter.validate`` produces.
    """
    if not isinstance(readables, Mapping):
        return readables
    try:
        return readables[channel]
    except (KeyError, TypeError):
        raise NoSuchChannelError(channel, "serve_pull") from None


async def serve_pull(
    connection: Connection,
    readables: ReadableMap,
    hello: Hello | None = None,
    batch_limit: int | None = None,
) -> None:
    """Answer a pull client: passive output over one connection.

    Serves ``READ`` frames from the addressed Readable until the
    client disconnects.  END replies are idempotent: every READ past
    the end is answered END again.
    """
    ended: set[Any] = set()
    while True:
        frame = await connection.recv()
        if frame is None:
            return
        if frame.type is not FrameType.READ:
            await connection.send(Frame(FrameType.ERROR, {
                "code": "bad-frame",
                "message": f"pull connection got {frame.type.name}",
            }))
            raise WireError(f"pull connection got {frame.type.name}")
        channel = frame.body.get("channel")
        batch = max(1, int(frame.body.get("batch", 1)))
        if batch_limit is not None:
            batch = min(batch, batch_limit)
        try:
            readable = _resolve_channel(readables, channel)
        except NoSuchChannelError as error:
            await connection.send(Frame(FrameType.ERROR, {
                "code": "no-such-channel", "message": str(error),
            }))
            continue
        key = _channel_key(channel)
        if key in ended:
            await connection.send(Frame(FrameType.END, {"channel": channel}))
            continue
        transfer = await readable.read(batch)
        if transfer.at_end:
            ended.add(key)
            await connection.send(Frame(FrameType.END, {"channel": channel}))
        else:
            await connection.send(Frame(FrameType.DATA, {
                "items": list(transfer.items), "channel": channel,
            }))


def _channel_key(channel: Any) -> Any:
    try:
        hash(channel)
        return channel
    except TypeError:
        return repr(channel)


async def serve_push(
    connection: Connection,
    writable: Any,
    hello: Hello | None = None,
) -> None:
    """Receive a push client: passive input over one connection.

    The initial credit was granted in the WELCOME (see
    :func:`repro.net.handshake.expect_hello`); this loop refunds credit
    only *after* the local writable has accepted the records, so the
    window bounds true end-to-end in-flight data.
    """
    while True:
        frame = await connection.recv()
        if frame is None:
            return
        if frame.type is FrameType.WRITE:
            items = frame.body.get("items", [])
            await writable.write(Transfer.of(items))
            await connection.send(Frame(FrameType.ACK, {
                "credit": len(items), "channel": frame.body.get("channel"),
            }))
        elif frame.type is FrameType.END:
            await writable.write(END_TRANSFER)
            try:
                await connection.send(Frame(FrameType.ACK, {
                    "credit": 0, "final": True,
                    "channel": frame.body.get("channel"),
                }))
            except (ConnectionError, OSError, FrameError):
                pass  # writer may close the instant END is out
            return
        else:
            await connection.send(Frame(FrameType.ERROR, {
                "code": "bad-frame",
                "message": f"push connection got {frame.type.name}",
            }))
            raise WireError(f"push connection got {frame.type.name}")
