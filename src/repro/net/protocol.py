"""The four transput primitives as wire roles over TCP.

Only *corresponding* pairs of primitives connect (the paper's central
observation), and each pair is one connection pattern:

- **read-only** (active input ↔ passive output): the consumer
  connects with role ``pull`` and issues ``READ`` frames — the
  demand-driven pull protocol — and the producer answers each with one
  ``DATA`` (or ``END``) frame.  :class:`RemoteReadable` is the active
  side; :func:`serve_pull` is the passive side.

- **write-only** (active output ↔ passive input): the producer
  connects with role ``push`` and sends ``WRITE`` frames under a
  *credit window*: the WELCOME grants an initial allowance of records,
  and every ``ACK`` returns the allowance consumed downstream.  A
  window of 1 is the fully synchronous (lazy) push; a window of k
  keeps k records in flight (the eager/anticipatory knob of §4 —
  :meth:`FlowPolicy.credit_window` derives the window from the same
  policy the simulator uses).  :class:`RemoteWritable` is the active
  side; :func:`serve_push` the passive side.

Backpressure is therefore end-to-end and protocol-level: a slow pull
server simply delays its ``DATA``; a slow push server delays its
``ACK`` (it writes into the local stage first, which may itself block
on *its* downstream connection).

Both remote classes implement the :mod:`repro.aio` ``Readable`` /
``Writable`` protocols, so every existing aio stage composes with them
unchanged — that is what lets :mod:`repro.net.stage` host simulator
transducers with no porting.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Mapping, Union

from repro.core.errors import (
    EdenError,
    NoSuchChannelError,
    StreamProtocolError,
)
from repro.core.tracing import Tracer
from repro.net.framing import (
    Frame,
    FrameError,
    FrameType,
    attach_trace,
    frame_trace,
    read_frame_sized,
    write_frame,
)
from repro.obs.context import bind_span, current_span
from repro.obs.spans import SPAN_KIND, SpanContext, SpanIds
from repro.net.handshake import (
    ROLE_PULL,
    ROLE_PUSH,
    Hello,
    TicketBook,
    send_hello,
)
from repro.net.metrics import NetStats
from repro.transput.stream import END_TRANSFER, Transfer

__all__ = [
    "WireError",
    "Connection",
    "connect_with_backoff",
    "RemoteReadable",
    "RemoteWritable",
    "serve_pull",
    "serve_push",
]


class WireError(EdenError):
    """The remote peer reported an error frame, or the link misbehaved."""


class Connection:
    """One framed TCP connection with metrics and optional tracing.

    ``end_is_request`` selects the END accounting (True on the pushing
    side of a write-only link; see :mod:`repro.net.metrics`).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        stats: NetStats | None = None,
        end_is_request: bool = False,
        tracer: Tracer | None = None,
        label: str = "conn",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.stats = stats if stats is not None else NetStats()
        self.end_is_request = end_is_request
        self.tracer = tracer
        self.label = label
        self.clock = clock

    async def send(self, frame: Frame) -> None:
        wire_bytes = await write_frame(self.writer, frame)
        self.stats.note_sent(frame, wire_bytes, self.end_is_request)
        if self.tracer is not None:
            self.tracer.emit(
                self.clock(), "send", self.label,
                frame=frame.type.name, bytes=wire_bytes,
            )

    async def recv(self) -> Frame | None:
        frame, wire_bytes = await read_frame_sized(self.reader)
        if frame is not None:
            self.stats.note_received(frame, wire_bytes)
            if self.tracer is not None:
                self.tracer.emit(
                    self.clock(), "recv", self.label,
                    frame=frame.type.name, bytes=wire_bytes,
                )
        return frame

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # peer already gone
            pass


async def connect_with_backoff(
    host: str,
    port: int,
    deadline: float = 15.0,
    first_delay: float = 0.05,
    max_delay: float = 1.0,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial ``host:port``, retrying transient failures with backoff.

    Stages of one pipeline are spawned concurrently, so a client may
    dial before its server listens; exponential backoff up to
    ``deadline`` seconds absorbs that (and transient RSTs) without any
    start-order coordination.
    """
    started = time.monotonic()
    delay = first_delay
    while True:
        try:
            return await asyncio.open_connection(host, port)
        except (ConnectionError, OSError) as error:
            if time.monotonic() - started + delay > deadline:
                raise WireError(
                    f"could not connect to {host}:{port} "
                    f"within {deadline:.1f}s: {error}"
                ) from error
            await asyncio.sleep(delay)
            delay = min(delay * 2, max_delay)


class RemoteReadable:
    """Active input over TCP: the ``Readable`` face of a remote stage.

    ``read(batch)`` sends one ``READ`` frame and blocks for the
    ``DATA``/``END`` reply — one invocation per transfer, exactly the
    simulator's accounting.  END is cached, so re-reading a finished
    stream is local and free (the protocol's idempotent-END rule).

    With a ``spans`` allocator, every READ round trip becomes one
    span: a child of the span currently being served in this task (a
    demand chain) or a fresh trace root (a driving pump).  A reply
    carrying a ``trace`` override — a buffer handing back a datum
    deposited under another trace — *re-roots* the span into the
    datum's trace (see :meth:`repro.aio.streams.AioPipe.read`); the
    adopted context is published as :attr:`last_span` so a pump can
    carry it to its downstream write.
    """

    def __init__(
        self,
        host: str,
        port: int,
        uid: Any,
        book: TicketBook | None = None,
        channel: Any = "Output",
        stats: NetStats | None = None,
        tracer: Tracer | None = None,
        label: str = "pull-client",
        connect_deadline: float = 15.0,
        spans: SpanIds | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.uid = uid
        self.book = book
        self.channel = channel
        self.stats = stats if stats is not None else NetStats()
        self.tracer = tracer
        self.label = label
        self.connect_deadline = connect_deadline
        self.spans = spans
        #: Span context of the most recent read (post-adoption).
        self.last_span: SpanContext | None = None
        self._connection: Connection | None = None
        self._ended = False

    async def _ensure_connected(self) -> Connection:
        if self._connection is None:
            reader, writer = await connect_with_backoff(
                self.host, self.port, deadline=self.connect_deadline
            )
            connection = Connection(
                reader, writer, stats=self.stats,
                tracer=self.tracer, label=self.label,
            )
            await send_hello(
                reader, writer, self.uid, ROLE_PULL,
                channel=self.channel, book=self.book,
            )
            self._connection = connection
        return self._connection

    async def read(self, batch: int = 1) -> Transfer:
        if self._ended:
            return END_TRANSFER
        connection = await self._ensure_connected()
        ctx: SpanContext | None = None
        started = 0.0
        body: dict[str, Any] = {"batch": max(1, batch), "channel": self.channel}
        if self.spans is not None:
            ctx = self.spans.derive(current_span())
            attach_trace(body, ctx)
            started = connection.clock()
        await connection.send(Frame(FrameType.READ, body))
        reply = await connection.recv()
        if reply is None:
            raise WireError("peer closed mid-stream (no END received)")
        if reply.type in (FrameType.DATA, FrameType.END):
            if ctx is not None:
                ctx = self._finish_span(ctx, reply, started, connection)
            if reply.type is FrameType.END:
                self._ended = True
                await connection.close()
                self._connection = None
                return END_TRANSFER
            return Transfer.of(reply.body["items"])
        if ctx is not None:
            self._finish_span(ctx, reply, started, connection, status="error")
        if reply.type is FrameType.ERROR:
            raise WireError(
                f"remote error: {reply.body.get('code')} "
                f"({reply.body.get('message')})"
            )
        raise WireError(f"unexpected reply {reply.type.name} to READ")

    def _finish_span(
        self,
        ctx: SpanContext,
        reply: Frame,
        started: float,
        connection: Connection,
        status: str = "ok",
    ) -> SpanContext:
        """Close one READ span (adopting a reply's trace override)."""
        override = frame_trace(reply)
        if override is not None and override.trace != ctx.trace:
            # Datum-follows-trace: keep our span id, join the datum's
            # trace as a child of the hop that deposited it.
            ctx = SpanContext(
                trace=override.trace, span=ctx.span, parent=override.span
            )
        ended = connection.clock()
        self.last_span = ctx
        self.stats.observe("read_rtt_ms", (ended - started) * 1000.0)
        if self.tracer is not None:
            self.tracer.emit(
                ended, SPAN_KIND, self.label,
                trace=ctx.trace, span=ctx.span, parent=ctx.parent,
                op="READ", start=started, end=ended, status=status,
            )
        return ctx

    async def aclose(self) -> None:
        """Drop the connection (idempotent)."""
        if self._connection is not None:
            await self._connection.close()
            self._connection = None


class RemoteWritable:
    """Active output over TCP: the ``Writable`` face of a remote stage.

    Writes are governed by the credit window the server granted at
    WELCOME: each ``WRITE`` frame spends one credit per record, each
    ``ACK`` refunds what the server consumed.  When credit runs out the
    writer parks on the socket until an ACK arrives — backpressure by
    delayed reply, never by refusal, the paper's flow-control rule.

    With a ``spans`` allocator, every WRITE frame is one span (child of
    the span being served in this task) bracketing credit wait through
    frame send; the END span additionally covers the final-ACK wait.
    Credit occupancy is published as the ``credit_window`` /
    ``credit_available`` gauges.
    """

    def __init__(
        self,
        host: str,
        port: int,
        uid: Any,
        book: TicketBook | None = None,
        channel: Any = "Output",
        stats: NetStats | None = None,
        tracer: Tracer | None = None,
        label: str = "push-client",
        connect_deadline: float = 15.0,
        spans: SpanIds | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.uid = uid
        self.book = book
        self.channel = channel
        self.stats = stats if stats is not None else NetStats()
        self.tracer = tracer
        self.label = label
        self.connect_deadline = connect_deadline
        self.spans = spans
        self._connection: Connection | None = None
        self._credit = 0
        self._ended = False

    async def _ensure_connected(self) -> Connection:
        if self._connection is None:
            reader, writer = await connect_with_backoff(
                self.host, self.port, deadline=self.connect_deadline
            )
            connection = Connection(
                reader, writer, stats=self.stats, end_is_request=True,
                tracer=self.tracer, label=self.label,
            )
            welcome = await send_hello(
                reader, writer, self.uid, ROLE_PUSH,
                channel=self.channel, book=self.book,
            )
            self._credit = int(welcome.body.get("credit", 1))
            self.stats.set_gauge("credit_window", float(self._credit))
            self.stats.set_gauge("credit_available", float(self._credit))
            self._connection = connection
        return self._connection

    async def _absorb(self, frame: Frame | None) -> bool:
        """Fold one server frame into the credit; True if final ACK."""
        if frame is None:
            raise WireError("peer closed while acks were outstanding")
        if frame.type is FrameType.ERROR:
            raise WireError(
                f"remote error: {frame.body.get('code')} "
                f"({frame.body.get('message')})"
            )
        if frame.type is not FrameType.ACK:
            raise WireError(f"unexpected frame {frame.type.name} on push link")
        self._credit += int(frame.body.get("credit", 0))
        self.stats.set_gauge("credit_available", float(self._credit))
        return bool(frame.body.get("final", False))

    async def write(self, transfer: Transfer) -> None:
        if self._ended:
            raise StreamProtocolError("write after END")
        connection = await self._ensure_connected()
        if transfer.at_end:
            ctx: SpanContext | None = None
            started = 0.0
            body: dict[str, Any] = {"channel": self.channel}
            if self.spans is not None:
                ctx = self.spans.derive(current_span())
                attach_trace(body, ctx)
                started = connection.clock()
            await connection.send(Frame(FrameType.END, body))
            # Wait for the final ack: when it arrives, every record has
            # been consumed downstream and the stage may exit safely.
            while not await self._absorb(await connection.recv()):
                pass
            if ctx is not None:
                self._finish_span(ctx, "END", started, connection)
            self._ended = True
            await connection.close()
            self._connection = None
            return
        pending = list(transfer.items)
        while pending:
            ctx = None
            started = 0.0
            if self.spans is not None:
                ctx = self.spans.derive(current_span())
                started = connection.clock()
            while self._credit <= 0:
                await self._absorb(await connection.recv())
            chunk, pending = pending[: self._credit], pending[self._credit:]
            body = {"items": chunk, "channel": self.channel}
            if ctx is not None:
                attach_trace(body, ctx)
            await connection.send(Frame(FrameType.WRITE, body))
            self._credit -= len(chunk)
            self.stats.set_gauge("credit_available", float(self._credit))
            if ctx is not None:
                self._finish_span(ctx, "WRITE", started, connection)

    def _finish_span(
        self,
        ctx: SpanContext,
        op: str,
        started: float,
        connection: Connection,
    ) -> None:
        """Close one WRITE/END span."""
        ended = connection.clock()
        self.stats.observe("ack_wait_ms", (ended - started) * 1000.0)
        if self.tracer is not None:
            self.tracer.emit(
                ended, SPAN_KIND, self.label,
                trace=ctx.trace, span=ctx.span, parent=ctx.parent,
                op=op, start=started, end=ended, status="ok",
            )


# ---------------------------------------------------------------------------
# Passive (server) sides.
# ---------------------------------------------------------------------------

#: A single stream, or a channel-id -> Readable table (paper §5).
ReadableMap = Union[Any, Mapping[Any, Any]]


def _resolve_channel(readables: ReadableMap, channel: Any) -> Any:
    """Find the Readable a channel identifier addresses.

    A mapping gives multi-channel service: string/integer/capability
    keys are matched by equality, which for capabilities includes the
    64-bit secret — a forged capability simply fails the lookup, the
    same outcome the simulator's ``ChannelMinter.validate`` produces.
    """
    if not isinstance(readables, Mapping):
        return readables
    try:
        return readables[channel]
    except (KeyError, TypeError):
        raise NoSuchChannelError(channel, "serve_pull") from None


async def serve_pull(
    connection: Connection,
    readables: ReadableMap,
    hello: Hello | None = None,
    batch_limit: int | None = None,
) -> None:
    """Answer a pull client: passive output over one connection.

    Serves ``READ`` frames from the addressed Readable until the
    client disconnects.  END replies are idempotent: every READ past
    the end is answered END again.
    """
    ended: set[Any] = set()
    while True:
        frame = await connection.recv()
        if frame is None:
            return
        if frame.type is not FrameType.READ:
            await connection.send(Frame(FrameType.ERROR, {
                "code": "bad-frame",
                "message": f"pull connection got {frame.type.name}",
            }))
            raise WireError(f"pull connection got {frame.type.name}")
        channel = frame.body.get("channel")
        batch = max(1, int(frame.body.get("batch", 1)))
        if batch_limit is not None:
            batch = min(batch, batch_limit)
        try:
            readable = _resolve_channel(readables, channel)
        except NoSuchChannelError as error:
            await connection.send(Frame(FrameType.ERROR, {
                "code": "no-such-channel", "message": str(error),
            }))
            continue
        key = _channel_key(channel)
        if key in ended:
            await connection.send(Frame(FrameType.END, {"channel": channel}))
            continue
        # Serve under the READ's span so any request this read triggers
        # (an upstream pull, a downstream push) parents itself on it.
        ctx = frame_trace(frame)
        started = connection.clock()
        with bind_span(ctx):
            transfer = await readable.read(batch)
        connection.stats.observe(
            "serve_read_ms", (connection.clock() - started) * 1000.0
        )
        # A buffer hands back records deposited under another trace;
        # forward that origin so the reader joins the datum's trace.
        origin = getattr(readable, "last_read_origin", None)
        if transfer.at_end:
            ended.add(key)
            body = {"channel": channel}
            await connection.send(Frame(FrameType.END, attach_trace(body, origin)))
        else:
            body = {"items": list(transfer.items), "channel": channel}
            await connection.send(Frame(FrameType.DATA, attach_trace(body, origin)))


def _channel_key(channel: Any) -> Any:
    try:
        hash(channel)
        return channel
    except TypeError:
        return repr(channel)


async def serve_push(
    connection: Connection,
    writable: Any,
    hello: Hello | None = None,
) -> None:
    """Receive a push client: passive input over one connection.

    The initial credit was granted in the WELCOME (see
    :func:`repro.net.handshake.expect_hello`); this loop refunds credit
    only *after* the local writable has accepted the records, so the
    window bounds true end-to-end in-flight data.
    """
    while True:
        frame = await connection.recv()
        if frame is None:
            return
        if frame.type is FrameType.WRITE:
            items = frame.body.get("items", [])
            started = connection.clock()
            # Serve under the WRITE's span: a downstream push this
            # write triggers (or a buffer deposit) joins its trace.
            with bind_span(frame_trace(frame)):
                await writable.write(Transfer.of(items))
            connection.stats.observe(
                "serve_write_ms", (connection.clock() - started) * 1000.0
            )
            await connection.send(Frame(FrameType.ACK, {
                "credit": len(items), "channel": frame.body.get("channel"),
            }))
        elif frame.type is FrameType.END:
            with bind_span(frame_trace(frame)):
                await writable.write(END_TRANSFER)
            try:
                await connection.send(Frame(FrameType.ACK, {
                    "credit": 0, "final": True,
                    "channel": frame.body.get("channel"),
                }))
            except (ConnectionError, OSError, FrameError):
                pass  # writer may close the instant END is out
            return
        else:
            await connection.send(Frame(FrameType.ERROR, {
                "code": "bad-frame",
                "message": f"push connection got {frame.type.name}",
            }))
            raise WireError(f"push connection got {frame.type.name}")
