"""The four transput primitives as wire roles over TCP.

Only *corresponding* pairs of primitives connect (the paper's central
observation), and each pair is one connection pattern:

- **read-only** (active input ↔ passive output): the consumer
  connects with role ``pull`` and issues ``READ`` frames — the
  demand-driven pull protocol — and the producer answers each with one
  ``DATA`` (or ``END``) frame.  :class:`RemoteReadable` is the active
  side; :func:`serve_pull` is the passive side.

- **write-only** (active output ↔ passive input): the producer
  connects with role ``push`` and sends ``WRITE`` frames under a
  *credit window*: the WELCOME grants an initial allowance of records,
  and every ``ACK`` returns the allowance consumed downstream.  A
  window of 1 is the fully synchronous (lazy) push; a window of k
  keeps k records in flight (the eager/anticipatory knob of §4 —
  :meth:`FlowPolicy.effective_credit_window` derives the window from
  the same policy the simulator uses).  :class:`RemoteWritable` is the
  active side; :func:`serve_push` the passive side.

Backpressure is therefore end-to-end and protocol-level: a slow pull
server simply delays its ``DATA``; a slow push server delays its
``ACK`` (it writes into the local stage first, which may itself block
on *its* downstream connection).

Both remote classes implement the :mod:`repro.aio` ``Readable`` /
``Writable`` protocols, so every existing aio stage composes with them
unchanged — that is what lets :mod:`repro.net.stage` host simulator
transducers with no porting.

**Session resume** (``docs/fault_tolerance.md``): with ``resume=True``
the stream gains per-record sequence numbers.  Every ``DATA`` and
``WRITE`` frame carries ``seq`` — the stream index of its first record
— so both ends can recognise, and discard, records they have already
seen.  The active sides treat transport failures as retryable
(:class:`LinkDown`): a pull client reconnects and asks to resume at
its received count (HELLO ``resume.next_seq``); a push client keeps a
full send log and rewinds to the ``resume_seq`` the server's WELCOME
advertises.  The passive sides keep the matching state *outside* any
one connection: :class:`ReplayLog` retains every record a pull server
has produced so a reconnecting (or restarted) consumer can re-fetch
them, and :class:`PushState` remembers how many records a push server
has accepted so duplicated prefixes are dropped, not re-written.
Exactly-once delivery is the composition of the two: at-least-once
from retransmission, deduplication from ``seq``.  All of it is gated
on ``resume`` — a plan without faults runs the identical byte stream
the pre-resume runtime produced.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, MutableMapping, Sequence, Union

from repro.core.errors import (
    EdenError,
    NoSuchChannelError,
    StreamProtocolError,
)
from repro.core.tracing import Tracer
from repro.net.bufpool import POOL
from repro.net.framing import (
    CODEC_JSON,
    CODECS,
    BufferedFrameReader,
    Frame,
    FrameError,
    FrameType,
    _release_after_write,
    attach_trace,
    encode_frame,
    encode_frame_into,
    frame_trace,
    write_frame,
)
from repro.net.vectored import write_vectored
from repro.obs.context import bind_span, current_span
from repro.obs.spans import SPAN_KIND, SpanContext, SpanIds
from repro.net.handshake import (
    ROLE_PULL,
    ROLE_PUSH,
    Hello,
    HandshakeLinkDown,
    TicketBook,
    negotiated_codec,
    send_hello,
)
from repro.net.metrics import NetStats
from repro.transput.flow import FlowAutotuner
from repro.transput.stream import END_TRANSFER, Transfer

__all__ = [
    "WireError",
    "LinkDown",
    "Connection",
    "connect_with_backoff",
    "RemoteReadable",
    "RemoteWritable",
    "ReplayLog",
    "PushState",
    "serve_pull",
    "serve_push",
]


class WireError(EdenError):
    """The remote peer reported an error frame, or the link misbehaved."""


class LinkDown(WireError):
    """The transport failed mid-stream (peer gone, frame garbage, timeout).

    Distinct from a fatal :class:`WireError` (a protocol ``ERROR``
    frame, a forged ticket): under ``resume`` a ``LinkDown`` is the
    signal to reconnect and resume, never to abort the stream.
    """


#: Transport-level failures a resuming peer treats as retryable.
#: (``asyncio.IncompleteReadError`` is an ``EOFError``;
#: ``asyncio.TimeoutError`` aliases ``TimeoutError`` from 3.11 on.)
_LINK_FAULTS = (
    ConnectionError,
    OSError,
    FrameError,
    EOFError,
    asyncio.TimeoutError,
    TimeoutError,
)


class Connection:
    """One framed TCP connection with metrics and optional tracing.

    ``end_is_request`` selects the END accounting (True on the pushing
    side of a write-only link; see :mod:`repro.net.metrics`).

    ``injector`` is a :class:`repro.fault.inject.FaultInjector` (or
    anything with its ``outgoing`` coroutine): every outgoing frame is
    offered to it, and what the injector returns — nothing, one copy,
    two copies, corrupted bytes — is what actually reaches the socket.
    Stats still count the frame as sent once: the *stage* believes it
    sent it, which is exactly the lie a chaos experiment needs.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        stats: NetStats | None = None,
        end_is_request: bool = False,
        tracer: Tracer | None = None,
        label: str = "conn",
        clock: Callable[[], float] = time.monotonic,
        injector: Any | None = None,
        codec: str = CODEC_JSON,
        flight: Any | None = None,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.stats = stats if stats is not None else NetStats()
        self.end_is_request = end_is_request
        self.tracer = tracer
        self.label = label
        self.clock = clock
        self.injector = injector
        #: Optional :class:`repro.obs.flight.FlightRecorder`: every
        #: frame this connection moves is teed to it as raw wire bytes
        #: (the pooled encode buffer out, the decoder's view in), so
        #: capture costs no extra copy on either path.
        self.flight = flight
        #: Body encoding for outgoing frames; handshake code flips this
        #: to the negotiated codec once the WELCOME settles it (inbound
        #: frames are self-describing, so only sending needs a mode).
        self.codec = codec
        #: Segment-oriented inbound frame source, created on first
        #: recv — after the handshake's raw reads have finished.
        self._frames: BufferedFrameReader | None = None

    async def send(self, frame: Frame) -> None:
        if self.injector is None:
            wire_bytes = await write_frame(
                self.writer, frame, self.codec,
                tee=self.flight.on_sent if self.flight is not None else None,
            )
        else:
            wire = encode_frame(frame, self.codec)
            wire_bytes = len(wire)
            if self.flight is not None:
                # Record what the stage *believes* it sent; the
                # injector's mutations are the chaos under test.
                self.flight.on_sent(wire)
            for chunk in await self.injector.outgoing(frame.type.name, wire):
                self.writer.write(chunk)
            await self.writer.drain()
        self.stats.note_sent(frame, wire_bytes, self.end_is_request)
        if self.tracer is not None:
            self.tracer.emit(
                self.clock(), "send", self.label,
                frame=frame.type.name, bytes=wire_bytes,
            )

    async def send_many(self, frames: Sequence[Frame]) -> None:
        """Send several frames as one vectored burst (one syscall).

        Each frame is encoded into its own pooled buffer and the burst
        goes out through :func:`repro.net.vectored.write_vectored` —
        one ``sendmsg`` iovec when the transport allows it, the
        joined-write fallback (byte-identical stream) otherwise.

        Under fault injection each frame still passes through the
        injector individually — a dropped READ must stay droppable.
        """
        if not frames:
            return
        if self.injector is not None:
            for frame in frames:
                await self.send(frame)
            return
        buffers: list[bytearray] = []
        sizes: list[int] = []
        try:
            for frame in frames:
                out = POOL.acquire()
                buffers.append(out)
                sizes.append(encode_frame_into(frame, out, self.codec))
        except FrameError:
            for out in buffers:
                POOL.release(out)
            raise
        if self.flight is not None:
            for out in buffers:
                self.flight.on_sent(out)
        write_vectored(self.writer, buffers, self.stats)
        await self.writer.drain()
        for out in buffers:
            _release_after_write(POOL, self.writer, out)
        now = self.clock()
        for frame, wire_bytes in zip(frames, sizes):
            self.stats.note_sent(frame, wire_bytes, self.end_is_request)
            if self.tracer is not None:
                self.tracer.emit(
                    now, "send", self.label,
                    frame=frame.type.name, bytes=wire_bytes,
                )

    def _note_received(self, frame: Frame, wire_bytes: int) -> None:
        self.stats.note_received(frame, wire_bytes)
        if self.tracer is not None:
            self.tracer.emit(
                self.clock(), "recv", self.label,
                frame=frame.type.name, bytes=wire_bytes,
            )

    async def recv(self) -> Frame | None:
        if self._frames is None:
            self._frames = BufferedFrameReader(
                self.reader,
                tee=(self.flight.on_received
                     if self.flight is not None else None),
            )
        frame, wire_bytes = await self._frames.recv()
        if frame is not None:
            self._note_received(frame, wire_bytes)
        return frame

    def recv_nowait(self) -> Frame | None:
        """An inbound frame already decoded from a past segment, else None.

        Performs no I/O, so "None" only means the last read segment is
        fully consumed.  The pull server uses this to discover that a
        pipelined client packed several READs into one segment — and
        answer them all in one vectored burst.
        """
        if self._frames is None:
            return None
        entry = self._frames.recv_nowait()
        if entry is None:
            return None
        frame, wire_bytes = entry
        self._note_received(frame, wire_bytes)
        return frame

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # peer already gone
            pass


async def connect_with_backoff(
    host: str,
    port: int,
    deadline: float = 15.0,
    first_delay: float = 0.05,
    max_delay: float = 1.0,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial ``host:port``, retrying transient failures with backoff.

    Stages of one pipeline are spawned concurrently, so a client may
    dial before its server listens; exponential backoff up to
    ``deadline`` seconds absorbs that (and transient RSTs) without any
    start-order coordination.  The same deadline bounds resume: a
    client reconnecting to a crashed stage waits this long for the
    supervisor to restart it before giving up with a fatal
    :class:`WireError`.
    """
    started = time.monotonic()
    delay = first_delay
    while True:
        try:
            return await asyncio.open_connection(host, port)
        except (ConnectionError, OSError) as error:
            if time.monotonic() - started + delay > deadline:
                raise WireError(
                    f"could not connect to {host}:{port} "
                    f"within {deadline:.1f}s: {error}"
                ) from error
            await asyncio.sleep(delay)
            delay = min(delay * 2, max_delay)


class RemoteReadable:
    """Active input over TCP: the ``Readable`` face of a remote stage.

    ``read(batch)`` sends one ``READ`` frame and blocks for the
    ``DATA``/``END`` reply — one invocation per transfer, exactly the
    simulator's accounting.  END is cached, so re-reading a finished
    stream is local and free (the protocol's idempotent-END rule).

    With a ``spans`` allocator, every READ round trip becomes one
    span: a child of the span currently being served in this task (a
    demand chain) or a fresh trace root (a driving pump).  A reply
    carrying a ``trace`` override — a buffer handing back a datum
    deposited under another trace — *re-roots* the span into the
    datum's trace (see :meth:`repro.aio.streams.AioPipe.read`); the
    adopted context is published as :attr:`last_span` so a pump can
    carry it to its downstream write.

    With ``resume=True`` the reader survives a dying link: transport
    failures (and reply silence beyond ``io_timeout``) become
    reconnects that present ``received`` — how many records this
    reader has accepted — as the resume point, and any duplicated
    prefix in a reply is discarded by its ``seq``.

    ``pipeline_depth > 1`` turns on read pipelining: the reader keeps
    up to that many READ requests on the wire (sent coalesced) and
    consumes replies oldest-first, so the server computes batch *k+1*
    while batch *k* is in flight — the per-batch round-trip stall
    becomes overlap.  Replies arrive in request order, so pull
    semantics, seq numbering, and resume dedup are unchanged; the only
    visible cost is a tail of idempotent END replies once the stream
    finishes, which the reader drains before closing.  A
    :class:`FlowAutotuner` (``tuner``) feeds observed round-trips back
    into the batch size and in-flight window.
    """

    def __init__(
        self,
        host: str,
        port: int,
        uid: Any,
        book: TicketBook | None = None,
        channel: Any = "Output",
        stats: NetStats | None = None,
        tracer: Tracer | None = None,
        label: str = "pull-client",
        connect_deadline: float = 15.0,
        spans: SpanIds | None = None,
        resume: bool = False,
        io_timeout: float | None = None,
        injector: Any | None = None,
        codec: str = CODEC_JSON,
        pipeline_depth: int = 1,
        tuner: FlowAutotuner | None = None,
        flight: Any | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.uid = uid
        self.book = book
        self.channel = channel
        self.stats = stats if stats is not None else NetStats()
        self.tracer = tracer
        self.label = label
        self.connect_deadline = connect_deadline
        self.spans = spans
        self.resume = resume
        self.io_timeout = io_timeout
        self.injector = injector
        self.codec = codec
        self.pipeline_depth = max(1, pipeline_depth)
        self.tuner = tuner
        self.flight = flight
        #: Span context of the most recent read (post-adoption).
        self.last_span: SpanContext | None = None
        #: Records accepted so far == the next sequence number wanted.
        self.received = 0
        self._connection: Connection | None = None
        self._ended = False
        #: (span ctx, send time) of every READ awaiting its reply.
        self._inflight: deque[tuple[SpanContext | None, float]] = deque()

    async def _ensure_connected(self) -> Connection:
        if self._connection is None:
            reader, writer = await connect_with_backoff(
                self.host, self.port, deadline=self.connect_deadline
            )
            connection = Connection(
                reader, writer, stats=self.stats,
                tracer=self.tracer, label=self.label,
                injector=self.injector, flight=self.flight,
            )
            offer = CODECS if self.codec != CODEC_JSON else None
            welcome = await send_hello(
                reader, writer, self.uid, ROLE_PULL,
                channel=self.channel, book=self.book,
                next_seq=self.received if self.resume else None,
                codecs=offer,
            )
            if offer:
                connection.codec = negotiated_codec(
                    [welcome.body.get("codec")], offer
                )
            self._connection = connection
        return self._connection

    def _depth(self) -> int:
        """How many READs to keep in flight right now."""
        if self.tuner is not None:
            return max(self.pipeline_depth, self.tuner.credit_window)
        return self.pipeline_depth

    async def _pump(self, connection: Connection, batch: int) -> None:
        """Top the in-flight READ window up to the pipeline depth."""
        want = self._depth() - len(self._inflight)
        if want <= 0:
            return
        frames: list[Frame] = []
        contexts: list[SpanContext | None] = []
        for _ in range(want):
            ctx: SpanContext | None = None
            body: dict[str, Any] = {
                "batch": max(1, batch), "channel": self.channel,
            }
            if self.spans is not None:
                ctx = self.spans.derive(current_span())
                attach_trace(body, ctx)
            frames.append(Frame(FrameType.READ, body))
            contexts.append(ctx)
        started = connection.clock()
        if len(frames) == 1:
            await connection.send(frames[0])
        else:
            await connection.send_many(frames)
        for ctx in contexts:
            self._inflight.append((ctx, started))

    async def _recv(self, connection: Connection) -> Frame | None:
        if self.io_timeout is None:
            return await connection.recv()
        try:
            return await asyncio.wait_for(connection.recv(), self.io_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            raise LinkDown(
                f"{self.label}: no reply within {self.io_timeout:.1f}s"
            ) from None

    async def read(self, batch: int = 1) -> Transfer:
        if self._ended:
            return END_TRANSFER
        if self.tuner is not None:
            batch = max(batch, self.tuner.batch)
        if not self.resume:
            transfer = await self._read_once(batch)
            assert transfer is not None
            return transfer
        while True:
            try:
                transfer = await self._read_once(batch)
            except LinkDown:
                await self._reset_link()
                continue
            if transfer is not None:  # None: reply was all duplicates
                return transfer

    async def _read_once(self, batch: int) -> Transfer | None:
        try:
            connection = await self._ensure_connected()
        except (HandshakeLinkDown, *_LINK_FAULTS) as error:
            if self.resume:
                raise LinkDown(
                    f"{self.label}: link failed connecting: {error}"
                ) from error
            raise
        try:
            await self._pump(connection, batch)
            reply = await self._recv(connection)
        except _LINK_FAULTS as error:
            if self.resume:
                raise LinkDown(f"{self.label}: link failed mid-read: {error}") \
                    from error
            raise
        ctx, started = (
            self._inflight.popleft() if self._inflight else (None, 0.0)
        )
        if reply is None:
            if self.resume:
                raise LinkDown("peer closed mid-stream (no END received)")
            raise WireError("peer closed mid-stream (no END received)")
        if reply.type in (FrameType.DATA, FrameType.END):
            self._observe_rtt(connection.clock() - started)
            fresh: list[Any] = []
            seq = reply.body.get("seq")
            if reply.type is FrameType.DATA:
                fresh = list(reply.body.get("items", []))
                if self.resume and isinstance(seq, int):
                    skip = min(len(fresh), max(0, self.received - seq))
                    if skip:
                        self.stats.bump("duplicate_records", skip)
                        fresh = fresh[skip:]
                    # Evidence records the slice actually *accepted*
                    # (post-dedup), so retransmitted prefixes do not
                    # show up as overlap in --verify-once.
                    seq = self.received
            if ctx is not None:
                ctx = self._finish_span(
                    ctx, reply, started, connection, seq=seq, count=len(fresh)
                )
            if reply.type is FrameType.END:
                self._ended = True
                await self._drain_inflight(connection)
                await connection.close()
                self._connection = None
                return END_TRANSFER
            if fresh:
                self.stats.bump("records_in", len(fresh))
            if self.resume:
                if not fresh:
                    return None
                self.received += len(fresh)
            return Transfer.of(fresh)
        if ctx is not None:
            self._finish_span(ctx, reply, started, connection, status="error")
        if reply.type is FrameType.ERROR:
            raise WireError(
                f"remote error: {reply.body.get('code')} "
                f"({reply.body.get('message')})"
            )
        raise WireError(f"unexpected reply {reply.type.name} to READ")

    def _observe_rtt(self, rtt_s: float) -> None:
        self.stats.observe("read_rtt_ms", rtt_s * 1000.0)
        if self.tuner is not None and self.tuner.observe(rtt_s):
            self.stats.set_gauge("autotune_batch", float(self.tuner.batch))
            self.stats.set_gauge(
                "autotune_credit", float(self.tuner.credit_window)
            )

    async def _drain_inflight(self, connection: Connection) -> None:
        """Collect replies to pipelined READs still on the wire at END.

        The server answers each with an idempotent END; leaving them
        unread would make our close look like a mid-request disconnect
        on the serving side.  Link faults here are moot — the stream
        already ended — so they only cut the drain short.
        """
        try:
            while self._inflight:
                self._inflight.popleft()
                if await self._recv(connection) is None:
                    break
        except (LinkDown, *_LINK_FAULTS):
            pass
        self._inflight.clear()

    async def _reset_link(self) -> None:
        """Drop a failed connection so the next read redials and resumes."""
        self.stats.bump("reconnects")
        self._inflight.clear()
        if self._connection is not None:
            await self._connection.close()
            self._connection = None

    def _finish_span(
        self,
        ctx: SpanContext,
        reply: Frame,
        started: float,
        connection: Connection,
        status: str = "ok",
        seq: Any = None,
        count: int = 0,
    ) -> SpanContext:
        """Close one READ span (adopting a reply's trace override)."""
        override = frame_trace(reply)
        if override is not None and override.trace != ctx.trace:
            # Datum-follows-trace: keep our span id, join the datum's
            # trace as a child of the hop that deposited it.
            ctx = SpanContext(
                trace=override.trace, span=ctx.span, parent=override.span
            )
        ended = connection.clock()
        self.last_span = ctx
        if self.tracer is not None:
            extra: dict[str, Any] = {}
            if isinstance(seq, int):
                # Sequence evidence for exactly-once verification
                # (``eden-trace --verify-once``): which stream slice
                # this span actually delivered.
                extra = {"seq": seq, "n": count}
            self.tracer.emit(
                ended, SPAN_KIND, self.label,
                trace=ctx.trace, span=ctx.span, parent=ctx.parent,
                op="READ", start=started, end=ended, status=status,
                **extra,
            )
        return ctx

    async def aclose(self) -> None:
        """Drop the connection (idempotent)."""
        if self._connection is not None:
            await self._connection.close()
            self._connection = None


class RemoteWritable:
    """Active output over TCP: the ``Writable`` face of a remote stage.

    Writes are governed by the credit window the server granted at
    WELCOME: each ``WRITE`` frame spends one credit per record, each
    ``ACK`` refunds what the server consumed.  When credit runs out the
    writer parks on the socket until an ACK arrives — backpressure by
    delayed reply, never by refusal, the paper's flow-control rule.

    With a ``spans`` allocator, every WRITE frame is one span (child of
    the span being served in this task) bracketing credit wait through
    frame send; the END span additionally covers the final-ACK wait.
    Credit occupancy is published as the ``credit_window`` /
    ``credit_available`` gauges.

    With ``resume=True`` the writer retains every record it has ever
    been asked to write (the send log) and stamps each WRITE with the
    ``seq`` of its first record.  A transport failure rewinds the send
    cursor to the ``resume_seq`` the reconnect's WELCOME advertises
    and replays from there; the server's :class:`PushState` drops any
    duplicated prefix.
    """

    def __init__(
        self,
        host: str,
        port: int,
        uid: Any,
        book: TicketBook | None = None,
        channel: Any = "Output",
        stats: NetStats | None = None,
        tracer: Tracer | None = None,
        label: str = "push-client",
        connect_deadline: float = 15.0,
        spans: SpanIds | None = None,
        resume: bool = False,
        io_timeout: float | None = None,
        injector: Any | None = None,
        codec: str = CODEC_JSON,
        flight: Any | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.uid = uid
        self.book = book
        self.channel = channel
        self.stats = stats if stats is not None else NetStats()
        self.tracer = tracer
        self.label = label
        self.connect_deadline = connect_deadline
        self.spans = spans
        self.resume = resume
        self.io_timeout = io_timeout
        self.injector = injector
        self.codec = codec
        self.flight = flight
        self._connection: Connection | None = None
        self._credit = 0
        self._ended = False
        #: Every record ever written (resume only) and the send cursor.
        self._sendlog: list[Any] = []
        self._next = 0

    async def _ensure_connected(self) -> Connection:
        if self._connection is None:
            reader, writer = await connect_with_backoff(
                self.host, self.port, deadline=self.connect_deadline
            )
            connection = Connection(
                reader, writer, stats=self.stats, end_is_request=True,
                tracer=self.tracer, label=self.label,
                injector=self.injector, flight=self.flight,
            )
            offer = CODECS if self.codec != CODEC_JSON else None
            welcome = await send_hello(
                reader, writer, self.uid, ROLE_PUSH,
                channel=self.channel, book=self.book,
                codecs=offer,
            )
            if offer:
                connection.codec = negotiated_codec(
                    [welcome.body.get("codec")], offer
                )
            self._credit = int(welcome.body.get("credit", 1))
            self.stats.set_gauge("credit_window", float(self._credit))
            self.stats.set_gauge("credit_available", float(self._credit))
            if self.resume:
                resume_seq = welcome.body.get("resume_seq")
                if isinstance(resume_seq, int):
                    # The server already holds the first resume_seq
                    # records: rewind (or fast-forward) the cursor.
                    self._next = max(0, min(resume_seq, len(self._sendlog)))
            self._connection = connection
        return self._connection

    async def _recv(self, connection: Connection) -> Frame | None:
        if self.io_timeout is None:
            return await connection.recv()
        try:
            return await asyncio.wait_for(connection.recv(), self.io_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            raise LinkDown(
                f"{self.label}: no ack within {self.io_timeout:.1f}s"
            ) from None

    async def _absorb(self, frame: Frame | None) -> bool:
        """Fold one server frame into the credit; True if final ACK."""
        if frame is None:
            if self.resume:
                raise LinkDown("peer closed while acks were outstanding")
            raise WireError("peer closed while acks were outstanding")
        if frame.type is FrameType.ERROR:
            raise WireError(
                f"remote error: {frame.body.get('code')} "
                f"({frame.body.get('message')})"
            )
        if frame.type is not FrameType.ACK:
            raise WireError(f"unexpected frame {frame.type.name} on push link")
        self._credit += int(frame.body.get("credit", 0))
        self.stats.set_gauge("credit_available", float(self._credit))
        return bool(frame.body.get("final", False))

    async def _reset_link(self) -> None:
        """Drop a failed connection; the next flush redials and rewinds."""
        self.stats.bump("reconnects")
        self._credit = 0
        if self._connection is not None:
            await self._connection.close()
            self._connection = None

    async def write(self, transfer: Transfer) -> None:
        if self._ended:
            raise StreamProtocolError("write after END")
        if not self.resume:
            await self._write_legacy(transfer)
            return
        if transfer.at_end:
            await self._end_resume()
            return
        self._sendlog.extend(transfer.items)
        await self._flush()

    async def _write_legacy(self, transfer: Transfer) -> None:
        connection = await self._ensure_connected()
        if transfer.at_end:
            ctx: SpanContext | None = None
            started = 0.0
            body: dict[str, Any] = {"channel": self.channel}
            if self.spans is not None:
                ctx = self.spans.derive(current_span())
                attach_trace(body, ctx)
                started = connection.clock()
            await connection.send(Frame(FrameType.END, body))
            # Wait for the final ack: when it arrives, every record has
            # been consumed downstream and the stage may exit safely.
            while not await self._absorb(await self._recv(connection)):
                pass
            if ctx is not None:
                self._finish_span(ctx, "END", started, connection)
            self._ended = True
            await connection.close()
            self._connection = None
            return
        pending = list(transfer.items)
        while pending:
            ctx = None
            started = 0.0
            if self.spans is not None:
                ctx = self.spans.derive(current_span())
                started = connection.clock()
            while self._credit <= 0:
                await self._absorb(await self._recv(connection))
            chunk, pending = pending[: self._credit], pending[self._credit:]
            body = {"items": chunk, "channel": self.channel}
            if ctx is not None:
                attach_trace(body, ctx)
            await connection.send(Frame(FrameType.WRITE, body))
            self._credit -= len(chunk)
            self.stats.bump("records_out", len(chunk))
            self.stats.set_gauge("credit_available", float(self._credit))
            if ctx is not None:
                self._finish_span(ctx, "WRITE", started, connection)

    async def _flush(self) -> None:
        """Drive the send log's cursor to its head, resuming over faults."""
        while self._next < len(self._sendlog):
            try:
                connection = await self._ensure_connected()
                ctx: SpanContext | None = None
                started = 0.0
                if self.spans is not None:
                    ctx = self.spans.derive(current_span())
                    started = connection.clock()
                while self._credit <= 0:
                    await self._absorb(await self._recv(connection))
                chunk = self._sendlog[self._next: self._next + self._credit]
                body: dict[str, Any] = {
                    "items": chunk, "channel": self.channel, "seq": self._next,
                }
                if ctx is not None:
                    attach_trace(body, ctx)
                await connection.send(Frame(FrameType.WRITE, body))
                self._next += len(chunk)
                self._credit -= len(chunk)
                self.stats.bump("records_out", len(chunk))
                self.stats.set_gauge("credit_available", float(self._credit))
                if ctx is not None:
                    self._finish_span(ctx, "WRITE", started, connection)
            except LinkDown:
                await self._reset_link()
            except (HandshakeLinkDown, *_LINK_FAULTS):
                await self._reset_link()

    async def _end_resume(self) -> None:
        """Flush everything, send END, and survive faults until final ACK."""
        while True:
            try:
                await self._flush()
                connection = await self._ensure_connected()
                ctx: SpanContext | None = None
                started = 0.0
                body: dict[str, Any] = {"channel": self.channel,
                                        "seq": self._next}
                if self.spans is not None:
                    ctx = self.spans.derive(current_span())
                    attach_trace(body, ctx)
                    started = connection.clock()
                await connection.send(Frame(FrameType.END, body))
                while not await self._absorb(await self._recv(connection)):
                    pass
                if ctx is not None:
                    self._finish_span(ctx, "END", started, connection)
                break
            except LinkDown:
                await self._reset_link()
            except (HandshakeLinkDown, *_LINK_FAULTS):
                await self._reset_link()
        self._ended = True
        if self._connection is not None:
            await self._connection.close()
            self._connection = None

    def _finish_span(
        self,
        ctx: SpanContext,
        op: str,
        started: float,
        connection: Connection,
    ) -> None:
        """Close one WRITE/END span."""
        ended = connection.clock()
        self.stats.observe("ack_wait_ms", (ended - started) * 1000.0)
        if self.tracer is not None:
            self.tracer.emit(
                ended, SPAN_KIND, self.label,
                trace=ctx.trace, span=ctx.span, parent=ctx.parent,
                op=op, start=started, end=ended, status="ok",
            )


# ---------------------------------------------------------------------------
# Passive (server) sides.
# ---------------------------------------------------------------------------

#: A single stream, or a channel-id -> Readable table (paper §5).
ReadableMap = Union[Any, Mapping[Any, Any]]


def _resolve_channel(readables: ReadableMap, channel: Any) -> Any:
    """Find the Readable a channel identifier addresses.

    A mapping gives multi-channel service: string/integer/capability
    keys are matched by equality, which for capabilities includes the
    64-bit secret — a forged capability simply fails the lookup, the
    same outcome the simulator's ``ChannelMinter.validate`` produces.
    """
    if not isinstance(readables, Mapping):
        return readables
    try:
        return readables[channel]
    except (KeyError, TypeError):
        raise NoSuchChannelError(channel, "serve_pull") from None


class ReplayLog:
    """Full retention for one pull-served channel (resume only).

    The log outlives any single connection: every record the stage has
    produced on the channel stays here (with the trace origin it was
    produced under), so a consumer reconnecting at ``next_seq = k`` is
    served records ``k, k+1, ...`` from memory instead of advancing
    the — non-rewindable — underlying Readable.  ``lock`` serialises
    producers across connections; ``served_high`` marks how far any
    consumer has gotten, so re-served records are counted as
    ``replayed_records``.
    """

    def __init__(self) -> None:
        self.records: list[Any] = []
        self.origins: list[SpanContext | None] = []
        self.ended = False
        self.served_high = 0
        self.replayed = 0
        self.lock = asyncio.Lock()


@dataclass
class PushState:
    """One push-served channel's progress, shared across connections.

    ``received`` is the count of records actually accepted into the
    local Writable — exactly the ``resume_seq`` a reconnect's WELCOME
    advertises; ``ended`` remembers a consumed END so a replayed END
    is re-acknowledged, not re-written.
    """

    received: int = 0
    ended: bool = False
    duplicates: int = field(default=0)


async def serve_pull(
    connection: Connection,
    readables: ReadableMap,
    hello: Hello | None = None,
    batch_limit: int | None = None,
    logs: MutableMapping[Any, ReplayLog] | None = None,
) -> bool:
    """Answer a pull client: passive output over one connection.

    Serves ``READ`` frames from the addressed Readable until the
    client disconnects.  END replies are idempotent: every READ past
    the end is answered END again.

    ``logs`` (a channel-key → :class:`ReplayLog` mapping owned by the
    *stage*, not this connection) switches on resume service: records
    are retained, ``DATA`` frames carry ``seq``, and the connection's
    read cursor starts at the hello's ``next_seq``.

    Returns True when the connection completed its stream — under
    resume, only if this connection actually delivered an END, so a
    consumer that died mid-stream (and will reconnect) is not mistaken
    for a finished one.
    """
    if logs is None:
        return await _serve_pull_legacy(connection, readables, batch_limit)
    return await _serve_pull_resume(connection, readables, hello,
                                    batch_limit, logs)


#: Cap on READ replies coalesced into one vectored burst (bounds both
#: reply latency and the number of pooled buffers held at once).
_REPLY_BURST = 64


async def _serve_pull_legacy(
    connection: Connection,
    readables: ReadableMap,
    batch_limit: int | None,
) -> bool:
    ended: set[Any] = set()
    while True:
        frame = await connection.recv()
        if frame is None:
            return True
        # A pipelined client packs several READs into one segment; every
        # one already decoded (recv_nowait) is answered in this burst,
        # so the reply side costs one vectored write, not one write per
        # request.  Replies stay in request order.
        replies: list[Frame] = []
        fatal: WireError | None = None
        while True:
            reply = None
            if frame.type is not FrameType.READ:
                reply = Frame(FrameType.ERROR, {
                    "code": "bad-frame",
                    "message": f"pull connection got {frame.type.name}",
                })
                fatal = WireError(f"pull connection got {frame.type.name}")
            else:
                channel = frame.body.get("channel")
                batch = max(1, int(frame.body.get("batch", 1)))
                if batch_limit is not None:
                    batch = min(batch, batch_limit)
                readable = None
                try:
                    readable = _resolve_channel(readables, channel)
                except NoSuchChannelError as error:
                    reply = Frame(FrameType.ERROR, {
                        "code": "no-such-channel", "message": str(error),
                    })
                if readable is not None:
                    key = _channel_key(channel)
                    if key in ended:
                        reply = Frame(FrameType.END, {"channel": channel})
                    else:
                        # Serve under the READ's span so any request
                        # this read triggers (an upstream pull, a
                        # downstream push) parents itself on it.
                        ctx = frame_trace(frame)
                        started = connection.clock()
                        with bind_span(ctx):
                            transfer = await readable.read(batch)
                        connection.stats.observe(
                            "serve_read_ms",
                            (connection.clock() - started) * 1000.0,
                        )
                        # A buffer hands back records deposited under
                        # another trace; forward that origin so the
                        # reader joins the datum's trace.
                        origin = getattr(readable, "last_read_origin", None)
                        if transfer.at_end:
                            ended.add(key)
                            body = {"channel": channel}
                            reply = Frame(
                                FrameType.END, attach_trace(body, origin)
                            )
                        else:
                            items = list(transfer.items)
                            body = {"items": items, "channel": channel}
                            reply = Frame(
                                FrameType.DATA, attach_trace(body, origin)
                            )
                            connection.stats.bump("records_out", len(items))
            replies.append(reply)
            if fatal is not None or len(replies) >= _REPLY_BURST:
                break
            nxt = connection.recv_nowait()
            if nxt is None:
                break
            frame = nxt
        if len(replies) == 1:
            await connection.send(replies[0])
        else:
            await connection.send_many(replies)
        if fatal is not None:
            raise fatal


async def _serve_pull_resume(
    connection: Connection,
    readables: ReadableMap,
    hello: Hello | None,
    batch_limit: int | None,
    logs: MutableMapping[Any, ReplayLog],
) -> bool:
    start = 0
    if hello is not None and hello.next_seq is not None:
        start = hello.next_seq
    cursors: dict[Any, int] = {}
    served_end = False
    while True:
        frame = await connection.recv()
        if frame is None:
            return served_end
        if frame.type is not FrameType.READ:
            await connection.send(Frame(FrameType.ERROR, {
                "code": "bad-frame",
                "message": f"pull connection got {frame.type.name}",
            }))
            raise WireError(f"pull connection got {frame.type.name}")
        channel = frame.body.get("channel")
        batch = max(1, int(frame.body.get("batch", 1)))
        if batch_limit is not None:
            batch = min(batch, batch_limit)
        try:
            readable = _resolve_channel(readables, channel)
        except NoSuchChannelError as error:
            await connection.send(Frame(FrameType.ERROR, {
                "code": "no-such-channel", "message": str(error),
            }))
            continue
        key = _channel_key(channel)
        log = logs.setdefault(key, ReplayLog())
        cursor = cursors.get(key, start)
        ctx = frame_trace(frame)
        async with log.lock:
            # Fill the log until it can answer at ``cursor`` — also the
            # fast-forward path of a *restarted* stage whose fresh log
            # must regenerate records a consumer already holds.
            while len(log.records) <= cursor and not log.ended:
                started = connection.clock()
                with bind_span(ctx):
                    transfer = await readable.read(batch)
                connection.stats.observe(
                    "serve_read_ms", (connection.clock() - started) * 1000.0
                )
                origin = getattr(readable, "last_read_origin", None)
                if transfer.at_end:
                    log.ended = True
                else:
                    items = list(transfer.items)
                    log.records.extend(items)
                    log.origins.extend([origin] * len(items))
            if cursor < len(log.records):
                stop = min(len(log.records), cursor + batch)
                items = log.records[cursor:stop]
                origin = log.origins[cursor]
                replayed = max(0, min(stop, log.served_high) - cursor)
                if replayed:
                    log.replayed += replayed
                    connection.stats.bump("replayed_records", replayed)
                log.served_high = max(log.served_high, stop)
                cursors[key] = stop
                body = {"items": items, "channel": channel, "seq": cursor}
                await connection.send(
                    Frame(FrameType.DATA, attach_trace(body, origin))
                )
                connection.stats.bump("records_out", len(items))
            else:
                body = {"channel": channel, "seq": len(log.records)}
                await connection.send(Frame(FrameType.END, body))
                served_end = True


def _channel_key(channel: Any) -> Any:
    try:
        hash(channel)
        return channel
    except TypeError:
        return repr(channel)


async def serve_push(
    connection: Connection,
    writable: Any,
    hello: Hello | None = None,
    state: PushState | None = None,
) -> bool:
    """Receive a push client: passive input over one connection.

    The initial credit was granted in the WELCOME (see
    :func:`repro.net.handshake.expect_hello`); this loop refunds credit
    only *after* the local writable has accepted the records, so the
    window bounds true end-to-end in-flight data.

    ``state`` (a :class:`PushState` owned by the *stage*) switches on
    resume service: ``WRITE`` frames whose ``seq`` shows they replay an
    already-accepted prefix have that prefix dropped (credit is still
    refunded in full), and an END after a consumed END is
    re-acknowledged without touching the writable.

    Returns True when the connection completed its stream — under
    resume, only if an END actually arrived, so a producer that died
    mid-stream (and will reconnect) is not mistaken for a finished one.
    """
    if state is None:
        return await _serve_push_legacy(connection, writable)
    return await _serve_push_resume(connection, writable, state)


async def _serve_push_legacy(connection: Connection, writable: Any) -> bool:
    while True:
        frame = await connection.recv()
        if frame is None:
            return True
        if frame.type is FrameType.WRITE:
            items = frame.body.get("items", [])
            started = connection.clock()
            # Serve under the WRITE's span: a downstream push this
            # write triggers (or a buffer deposit) joins its trace.
            with bind_span(frame_trace(frame)):
                await writable.write(Transfer.of(items))
            connection.stats.observe(
                "serve_write_ms", (connection.clock() - started) * 1000.0
            )
            connection.stats.bump("records_in", len(items))
            await connection.send(Frame(FrameType.ACK, {
                "credit": len(items), "channel": frame.body.get("channel"),
            }))
        elif frame.type is FrameType.END:
            with bind_span(frame_trace(frame)):
                await writable.write(END_TRANSFER)
            try:
                await connection.send(Frame(FrameType.ACK, {
                    "credit": 0, "final": True,
                    "channel": frame.body.get("channel"),
                }))
            except (ConnectionError, OSError, FrameError):
                pass  # writer may close the instant END is out
            return True
        else:
            await connection.send(Frame(FrameType.ERROR, {
                "code": "bad-frame",
                "message": f"push connection got {frame.type.name}",
            }))
            raise WireError(f"push connection got {frame.type.name}")


async def _serve_push_resume(
    connection: Connection,
    writable: Any,
    state: PushState,
) -> bool:
    while True:
        frame = await connection.recv()
        if frame is None:
            return False
        if frame.type is FrameType.WRITE:
            items = list(frame.body.get("items", []))
            seq = frame.body.get("seq")
            skip = 0
            if isinstance(seq, int):
                skip = min(len(items), max(0, state.received - seq))
            if skip:
                state.duplicates += skip
                connection.stats.bump("duplicate_records", skip)
            fresh = items[skip:]
            started = connection.clock()
            if fresh and not state.ended:
                with bind_span(frame_trace(frame)):
                    await writable.write(Transfer.of(fresh))
                state.received += len(fresh)
                connection.stats.bump("records_in", len(fresh))
            connection.stats.observe(
                "serve_write_ms", (connection.clock() - started) * 1000.0
            )
            # Refund the *full* frame: duplicates consumed no buffer.
            await connection.send(Frame(FrameType.ACK, {
                "credit": len(items), "channel": frame.body.get("channel"),
            }))
        elif frame.type is FrameType.END:
            if not state.ended:
                with bind_span(frame_trace(frame)):
                    await writable.write(END_TRANSFER)
                state.ended = True
            try:
                await connection.send(Frame(FrameType.ACK, {
                    "credit": 0, "final": True,
                    "channel": frame.body.get("channel"),
                }))
            except (ConnectionError, OSError, FrameError):
                pass  # writer may close the instant END is out
            return True
        else:
            await connection.send(Frame(FrameType.ERROR, {
                "code": "bad-frame",
                "message": f"push connection got {frame.type.name}",
            }))
            raise WireError(f"push connection got {frame.type.name}")
