"""CPU core placement for process fleets (Linux affinity, portable no-op).

A sharded fleet only scales when its shards actually run on different
cores.  Left to the scheduler, a burst of short-lived Python processes
tends to stampede: every stage of every shard wakes on the same few
cores, and the 4-shard curve *regresses* (the committed
BENCH_dataplane.json measured 0.58x).  Pinning each shard's sub-fleet
to one core keeps a shard's stages sharing an L1/L2 and its socket
wakeups local, while different shards own different cores — the
process-parallel placement the T14 benchmark measures.

Everything here degrades gracefully: on platforms without
``os.sched_setaffinity`` (macOS, Windows) pinning is a recorded no-op,
and planners fall back to unpinned placement when the machine has a
single core (pinning everything to cpu0 would only add syscalls).

Placement policies (the ``placement_policy`` knob of
:func:`repro.net.launch.plan_sharded_fleet` and
:class:`repro.api.Pipeline`):

- ``"cores"`` (default) — shard *i* is pinned to core
  ``available[i % len(available)]``; with fewer shards than cores each
  shard owns a core outright.
- ``"none"`` — no pinning; the pre-PR-7 behaviour.
"""

from __future__ import annotations

import os

__all__ = [
    "PLACEMENT_POLICIES",
    "available_cores",
    "assign_cores",
    "pin_to_core",
    "current_affinity",
]

#: The shard-placement policies the planners accept.
PLACEMENT_POLICIES = ("cores", "none")


def available_cores() -> list[int]:
    """The CPU ids this process may run on, sorted.

    Uses the scheduler affinity mask where available (it respects
    cgroup/container limits, unlike ``os.cpu_count``), falling back to
    ``range(os.cpu_count())``.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return sorted(os.sched_getaffinity(0))
        except OSError:
            pass
    return list(range(os.cpu_count() or 1))


def assign_cores(
    shards: int,
    policy: str = "cores",
    cores: list[int] | None = None,
) -> list[int | None]:
    """Pick a core per shard, or ``None`` entries when pinning is off.

    Round-robin over the available cores: with ``shards <= cores``
    every shard owns a core; beyond that cores are shared in order,
    which still keeps any one shard's stages co-located.  A single-core
    machine (or ``policy="none"``) yields all-``None`` — the planner
    then emits no ``--cpu`` flags at all, so the planned command lines
    are byte-identical to the unpinned ones.
    """
    if policy not in PLACEMENT_POLICIES:
        raise ValueError(
            f"placement_policy must be one of {PLACEMENT_POLICIES}, "
            f"got {policy!r}"
        )
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if cores is None:
        cores = available_cores()
    if policy == "none" or len(cores) < 2:
        return [None] * shards
    return [cores[index % len(cores)] for index in range(shards)]


def pin_to_core(core: int | None) -> bool:
    """Pin the calling process to ``core``; True when it took effect.

    ``None``, an unknown core id, or a platform without
    ``sched_setaffinity`` all return False instead of raising — a
    fleet planned on one machine must still *run* anywhere.
    """
    if core is None or not hasattr(os, "sched_setaffinity"):
        return False
    try:
        os.sched_setaffinity(0, {int(core)})
        return True
    except (OSError, ValueError):
        return False


def current_affinity() -> list[int] | None:
    """The current affinity mask, or ``None`` where unsupported."""
    if not hasattr(os, "sched_getaffinity"):
        return None
    try:
        return sorted(os.sched_getaffinity(0))
    except OSError:
        return None
