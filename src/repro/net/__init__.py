"""repro.net: the asymmetric stream protocol on real TCP sockets.

The simulator (:mod:`repro.core`) proves the paper's claims under a
virtual clock; :mod:`repro.aio` shows the four primitives working on
coroutines inside one process.  This package takes the final step the
ROADMAP asks for: the same :class:`~repro.transput.filterbase.
Transducer` filters running in *separate OS processes*, connected by
length-prefixed frames over TCP.

Layer map:

- :mod:`repro.net.framing` — the binary frame codec (``READ``,
  ``DATA``, ``WRITE``, ``ACK``, ``END``, ``ERROR`` + handshake frames),
  with channel identifiers on every stream frame (paper §5).
- :mod:`repro.net.handshake` — the UID/capability hello: a connection
  is accepted only if it presents a genuine ticket UID, mirroring the
  simulated kernel's forgery check (paper §5, claim C4).
- :mod:`repro.net.protocol` — the four primitives as wire roles:
  active input issues ``READ`` and receives ``DATA`` (the read-only
  discipline); active output pushes ``WRITE`` under a credit window
  granted by the passive input (the write-only discipline).
- :mod:`repro.net.stage` — an asyncio server/client hosting one
  pipeline stage, runnable as ``python -m repro.net.stage`` (installed
  as ``eden-stage``).
- :mod:`repro.net.metrics` — on-wire frame/byte counters shaped like
  :class:`~repro.core.stats.KernelStats`, so integration tests can
  check the paper's invocation formulas (n+1 vs 2n+2) on real traffic.
"""

from repro.net.framing import (
    Frame,
    FrameDecoder,
    FrameError,
    FrameType,
    MAX_FRAME_BODY,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_payload,
    read_frame,
    write_frame,
)
from repro.net.handshake import (
    HandshakeError,
    HandshakeLinkDown,
    TicketBook,
    expect_hello,
    send_hello,
)
from repro.net.metrics import NetStats, merge_stats
from repro.net.protocol import (
    Connection,
    LinkDown,
    RemoteReadable,
    RemoteWritable,
    connect_with_backoff,
    serve_pull,
    serve_push,
)

#: Orchestration names live in :mod:`repro.net.launch`, which imports
#: :mod:`repro.net.stage`; loading them lazily keeps ``python -m
#: repro.net.stage`` from importing the stage module twice (runpy's
#: "found in sys.modules" warning).
_LAUNCH_NAMES = (
    "FleetError",
    "FleetSupervisor",
    "PipelineResult",
    "StagePlan",
    "execute",
    "plan_fleet",
    "plan_linear_fleet",
    "plan_pipeline",
    "plan_sharded_fleet",
    "run_fleet",
)

#: Multiplexing names (:mod:`repro.net.mux`), loaded lazily for the
#: same reason — the mux imports the protocol module's Hosted bases.
_MUX_NAMES = (
    "CONTROL_CHANNEL",
    "ChannelMux",
    "FairWriter",
    "HostedReadable",
    "HostedWritable",
    "MuxChannel",
)


def __getattr__(name):
    if name in _LAUNCH_NAMES:
        from repro.net import launch

        return getattr(launch, name)
    if name in _MUX_NAMES:
        from repro.net import mux

        return getattr(mux, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CONTROL_CHANNEL",
    "ChannelMux",
    "Connection",
    "FairWriter",
    "FleetError",
    "FleetSupervisor",
    "Frame",
    "FrameDecoder",
    "FrameError",
    "FrameType",
    "HandshakeError",
    "HandshakeLinkDown",
    "HostedReadable",
    "HostedWritable",
    "LinkDown",
    "MAX_FRAME_BODY",
    "MuxChannel",
    "NetStats",
    "PipelineResult",
    "RemoteReadable",
    "RemoteWritable",
    "StagePlan",
    "TicketBook",
    "connect_with_backoff",
    "decode_frame",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "execute",
    "expect_hello",
    "merge_stats",
    "plan_fleet",
    "plan_linear_fleet",
    "plan_pipeline",
    "plan_sharded_fleet",
    "read_frame",
    "run_fleet",
    "send_hello",
    "serve_pull",
    "serve_push",
    "write_frame",
]
