"""Reusable encode/decode buffers for the hot frame paths.

Profiling the data plane (T13) shows the per-frame cost is dominated
not by encoding work but by allocation churn: every ``send`` built a
fresh ``bytearray``, every ``recv`` materialised header, extension and
body as separate ``bytes`` objects, and every fair-writer pass built a
new burst buffer.  Lavoie & Hendren's pull-stream formalization
(PAPERS.md) argues the per-transfer protocol cost can be held to a
small constant; allocating three objects per frame violates that in
the constant factor where it hurts most.

A :class:`BufferPool` keeps a bounded free list of ``bytearray``
buffers.  The contract is deliberately tiny:

- :meth:`acquire` returns an *empty* ``bytearray`` (length 0) whose
  underlying allocation is recycled from a previous user when one is
  available (a *hit*) or freshly made (a *miss*).  Append-encoding
  into it (:func:`repro.net.framing.encode_frame_into`) then reuses
  the old capacity instead of growing from zero.
- :meth:`release` clears the buffer and returns it to the free list —
  unless it grew beyond ``max_buffer`` bytes (one huge frame must not
  pin a huge allocation forever) or the list is full.

The pool is **per event loop thread by design, not thread-safe**: a
stage is one process running one loop, so no locking is needed.  Every
process gets a module-level :data:`POOL` that the framing/protocol/mux
hot paths share; hit/miss counters surface through
:meth:`export_gauges` as the ``bufpool_hit_rate`` gauge (plus raw
``bufpool_hits`` / ``bufpool_misses`` counters) so ``eden-top`` can
show whether the steady state actually recycles.
"""

from __future__ import annotations

from typing import Any

__all__ = ["BufferPool", "POOL"]


class BufferPool:
    """A bounded free list of reusable ``bytearray`` encode buffers."""

    def __init__(self, max_buffers: int = 32,
                 max_buffer: int = 1 << 20) -> None:
        if max_buffers < 1:
            raise ValueError(f"max_buffers must be >= 1, got {max_buffers}")
        if max_buffer < 1:
            raise ValueError(f"max_buffer must be >= 1, got {max_buffer}")
        self.max_buffers = max_buffers
        self.max_buffer = max_buffer
        self._free: list[bytearray] = []
        #: Monotone counters; hit rate = hits / (hits + misses).
        self.hits = 0
        self.misses = 0
        #: Buffers dropped at release for outgrowing ``max_buffer``.
        self.oversize_drops = 0

    def acquire(self) -> bytearray:
        """An empty buffer, recycled when the free list has one."""
        if self._free:
            self.hits += 1
            return self._free.pop()
        self.misses += 1
        return bytearray()

    def release(self, buffer: bytearray) -> None:
        """Return ``buffer`` to the pool (cleared; oversize are dropped).

        Safe to call with a buffer the pool never issued — the pool
        only cares about capacity bounds, not provenance.
        """
        if len(buffer) > self.max_buffer:
            # One 16 MB frame must not turn the free list into a
            # permanent 16 MB allocation: let the allocator have it.
            self.oversize_drops += 1
            return
        if len(self._free) >= self.max_buffers:
            return
        del buffer[:]  # keep the allocation, drop the contents
        self._free.append(buffer)

    @property
    def hit_rate(self) -> float:
        """Fraction of acquires served from the free list (0.0-1.0)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def export_gauges(self, stats: Any) -> None:
        """Publish pool health into a stats registry (eden-top reads it)."""
        stats.set_gauge("bufpool_hit_rate", self.hit_rate)
        stats.set_gauge("bufpool_hits", float(self.hits))
        stats.set_gauge("bufpool_misses", float(self.misses))
        stats.set_gauge("bufpool_free", float(len(self._free)))

    def __len__(self) -> int:
        return len(self._free)


#: The per-process default pool the net hot paths share.
POOL = BufferPool()
