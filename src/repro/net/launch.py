"""Orchestration: plan and spawn a whole pipeline as OS processes.

The planner turns "this source, these transducers, this discipline"
into one ``eden-stage`` command line per process, with ports, ticket
serials and stats files assigned.  The conventional discipline gets a
*pipe process between every adjacent pair* — the paper's passive
buffers made into real servers — which is why its process count is
``2n + 3`` against the asymmetric disciplines' ``n + 2``, and its
measured message count ``(2n+2)(m+1)`` against ``(n+1)(m+1)``.

:func:`execute` runs the plan under ``subprocess`` and collects the
sink's stdout plus every stage's on-wire counters, so callers (the
``examples/tcp_pipeline.py`` demo and ``tests/net``) can compare real
traffic against :func:`repro.analysis.cost_model.predicted_invocations`
and against the simulator's output byte-for-byte.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Sequence

import repro
from repro.net.metrics import NetStats, merge_stats
from repro.net.stage import pick_free_port
from repro.transput.flow import FlowPolicy

__all__ = ["StagePlan", "PipelineResult", "plan_pipeline", "execute"]

#: Transducer spec: (``module:factory``, [args...]).
TransducerSpec = tuple[str, Sequence[Any]]

IDENTITY: TransducerSpec = ("repro.transput:identity_transducer", ())


@dataclass(frozen=True)
class StagePlan:
    """One process of the plan: its role and full command line."""

    role: str
    argv: tuple[str, ...]
    stats_file: str
    trace_file: str | None = None
    control_port: int | None = None


@dataclass
class PipelineResult:
    """What a finished pipeline run produced."""

    output: list[str]
    stats: list[dict[str, Any]]
    stderr: list[str] = field(default_factory=list)
    trace_files: list[str] = field(default_factory=list)

    @property
    def totals(self) -> NetStats:
        """Every stage's counters summed — the pipeline's wire traffic."""
        parts = []
        for stage_stats in self.stats:
            one = NetStats()
            for name, value in stage_stats["counters"].items():
                one.bump(name, int(value))
            parts.append(one)
        return merge_stats(*parts)

    @property
    def invocations(self) -> int:
        """Request frames (READ + WRITE + pushed END) across all stages."""
        return self.totals.get("invocations_sent")


def plan_pipeline(
    discipline: str,
    transducers: Sequence[TransducerSpec],
    workdir: str,
    source_items: Sequence[Any] | None = None,
    source_count: int | None = None,
    source_width: int = 8,
    source_seed: int = 0,
    flow: FlowPolicy | None = None,
    ticket_space: int = 0,
    ticket_seed: int = 0,
    host: str = "127.0.0.1",
    connect_deadline: float = 15.0,
    trace: bool = False,
    control: bool = False,
) -> list[StagePlan]:
    """Assign ports/serials and build every stage's command line.

    Give the source either explicit ``source_items`` (JSON-encodable)
    or ``source_count`` (+width/seed) for the deterministic
    ``random_lines`` workload the simulator examples use.

    ``trace=True`` gives every stage a ``--trace-file`` (span tracing
    on, logs mergeable with :func:`repro.obs.merge.merge_span_logs`);
    ``control=True`` gives every stage a ``--control-port`` for live
    introspection.  Either also writes a ``fleet.json`` manifest into
    ``workdir`` so ``eden-top`` / ``eden-trace`` can find the fleet.
    """
    flow = flow or FlowPolicy()
    workpath = pathlib.Path(workdir)
    workpath.mkdir(parents=True, exist_ok=True)

    base = [
        "--discipline", discipline,
        "--ticket-space", str(ticket_space),
        "--ticket-seed", str(ticket_seed),
        "--batch", str(flow.batch),
        "--lookahead", str(flow.lookahead),
        "--connect-deadline", str(connect_deadline),
    ]
    if flow.inbox_capacity is not None:
        base += ["--inbox-capacity", str(flow.inbox_capacity)]
    if flow.buffer_capacity is not None:
        base += ["--buffer-capacity", str(flow.buffer_capacity)]

    if source_items is not None:
        source_args = ["--source-json", json.dumps(list(source_items))]
    elif source_count is not None:
        source_args = [
            "--source-count", str(source_count),
            "--source-width", str(source_width),
            "--source-seed", str(source_seed),
        ]
    else:
        raise ValueError("give source_items or source_count")

    plans: list[StagePlan] = []
    serial = 0

    def add(role: str, extra: list[str]) -> StagePlan:
        nonlocal serial
        stats_file = str(workpath / f"stage-{serial}-{role}.stats.json")
        argv = ["--role", role, "--serial", str(serial),
                "--stats-file", stats_file]
        trace_file = None
        if trace:
            trace_file = str(workpath / f"stage-{serial}-{role}.trace.jsonl")
            argv += ["--trace-file", trace_file]
        control_port = None
        if control:
            control_port = pick_free_port(host)
            argv += ["--control-port", str(control_port)]
        plan = StagePlan(
            role=role,
            argv=tuple(argv + base + extra),
            stats_file=stats_file,
            trace_file=trace_file,
            control_port=control_port,
        )
        plans.append(plan)
        serial += 1
        return plan

    def spec_args(spec: TransducerSpec) -> list[str]:
        name, args = spec
        extra = ["--transducer", name]
        if list(args):
            extra += ["--transducer-args", json.dumps(list(args))]
        return extra

    at = lambda port: f"{host}:{port}"  # noqa: E731 — tiny local alias

    if discipline == "readonly":
        # source and filters listen; demand flows sink -> source.
        ports = [pick_free_port(host) for _ in range(len(transducers) + 1)]
        add("source", ["--listen", str(ports[0])] + source_args)
        for index, spec in enumerate(transducers):
            add("filter", ["--listen", str(ports[index + 1]),
                           "--upstream", at(ports[index])] + spec_args(spec))
        add("sink", ["--upstream", at(ports[-1])])
    elif discipline == "writeonly":
        # filters and sink listen; data is pushed source -> sink.
        # ports[i] is filter i's listener, ports[-1] the sink's.
        ports = [pick_free_port(host) for _ in range(len(transducers) + 1)]
        add("source", ["--downstream", at(ports[0])] + source_args)
        for index, spec in enumerate(transducers):
            add("filter", ["--listen", str(ports[index]),
                           "--downstream", at(ports[index + 1])]
                + spec_args(spec))
        add("sink", ["--listen", str(ports[-1])])
    elif discipline == "conventional":
        # a pipe process between every adjacent active pair.
        pipe_ports = [pick_free_port(host) for _ in range(len(transducers) + 1)]
        add("source", ["--downstream", at(pipe_ports[0])] + source_args)
        for index, spec in enumerate(transducers):
            add("filter", ["--upstream", at(pipe_ports[index]),
                           "--downstream", at(pipe_ports[index + 1])]
                + spec_args(spec))
        add("sink", ["--upstream", at(pipe_ports[-1])])
        for port in pipe_ports:
            add("pipe", ["--listen", str(port)])
    else:
        raise ValueError(f"unknown discipline {discipline!r}")
    if trace or control:
        manifest = {
            "discipline": discipline,
            "host": host,
            "stages": [
                {
                    "role": plan.role,
                    "serial": index,
                    "stats_file": plan.stats_file,
                    "trace_file": plan.trace_file,
                    "control_port": plan.control_port,
                }
                for index, plan in enumerate(plans)
            ],
        }
        with open(workpath / "fleet.json", "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
    return plans


def execute(
    plans: Sequence[StagePlan],
    timeout: float = 60.0,
    python: str | None = None,
) -> PipelineResult:
    """Spawn every planned stage, wait, and gather outputs + counters.

    Raises ``RuntimeError`` (with the offender's stderr) if any stage
    exits non-zero; kills the whole fleet on timeout so a wedged run
    cannot leak processes into the test harness.
    """
    python = python or sys.executable
    env = dict(os.environ)
    package_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    processes = [
        subprocess.Popen(
            [python, "-m", "repro.net.stage", *plan.argv],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        for plan in plans
    ]
    results: list[tuple[int, str, str]] = []
    try:
        for process in processes:
            out, err = process.communicate(timeout=timeout)
            results.append((process.returncode, out, err))
    finally:
        for process in processes:
            if process.poll() is None:
                process.kill()
                process.communicate()

    failures = [
        f"{plan.role}#{index} rc={rc}: {err.strip()[-500:]}"
        for index, (plan, (rc, _out, err)) in enumerate(zip(plans, results))
        if rc != 0
    ]
    if failures:
        raise RuntimeError("stage failures:\n" + "\n".join(failures))

    sink_index = next(
        index for index, plan in enumerate(plans) if plan.role == "sink"
    )
    output = results[sink_index][1].splitlines()
    stats = []
    for plan in plans:
        with open(plan.stats_file, "r", encoding="utf-8") as handle:
            stats.append(json.load(handle))
    return PipelineResult(
        output=output,
        stats=stats,
        stderr=[err for _rc, _out, err in results],
        trace_files=[
            plan.trace_file for plan in plans if plan.trace_file is not None
        ],
    )
