"""Orchestration: plan, spawn, and *supervise* a pipeline of processes.

The planner (:func:`plan_linear_fleet`) turns "this source, these transducers,
this discipline" into one ``eden-stage`` command line per process, with
ports, ticket serials, stats files and fault plans assigned.  The
conventional discipline gets a *pipe process between every adjacent
pair* — the paper's passive buffers made into real servers — which is
why its process count is ``2n + 3`` against the asymmetric disciplines'
``n + 2``, and its measured message count ``(2n+2)(m+1)`` against
``(n+1)(m+1)``.

The supervisor (:class:`FleetSupervisor`, front door :func:`run_fleet`)
spawns the plan and watches it: a stage that exits non-zero is
restarted — under exponential backoff, against a per-stage
``max_restarts`` budget, with the one-shot faults stripped from its
plan (:meth:`repro.fault.plan.FaultPlan.survivor`) — while the
session-resume protocol (:mod:`repro.net.protocol`) lets its neighbours
reconnect and continue the stream with no datum duplicated or lost.
When the budget is exhausted, or the fleet exceeds its ``timeout``, the
whole fleet is killed and a :class:`FleetError` raised whose diagnosis
names the offender; every stage's stderr is preserved either way,
because stage output goes to *files*, not pipes (so nothing is lost
when processes are killed out from under ``communicate``).  Restart
activity is counted in supervisor stats (``restarts``,
``restarts[<role>#<serial>]``) exported in the same Prometheus/JSON
shapes as every other metric (:mod:`repro.obs.registry`) and written
to ``supervisor.stats.json`` next to the stage dumps.

:func:`plan_fleet`, :func:`plan_pipeline` and :func:`execute` remain as
deprecated aliases of :func:`plan_linear_fleet` and :func:`run_fleet`;
new code should use :class:`repro.api.Pipeline` or
:class:`repro.api.GraphBuilder`, which drive this module for their TCP
runtime (one :func:`plan_linear_fleet` call per linear graph segment).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import repro
from repro.compat import warn_deprecated
from repro.devices import random_lines
from repro.fault.plan import KILLED_EXIT_CODE, FaultPlan
from repro.net.affinity import assign_cores
from repro.net.framing import CODEC_JSON
from repro.net.metrics import NetStats, merge_stats
from repro.net.stage import pick_free_port
from repro.obs.registry import snapshot_payload
from repro.core.stats import KernelStats
from repro.transput.flow import FlowPolicy, shard_of

__all__ = [
    "StagePlan",
    "PipelineResult",
    "FleetError",
    "FleetSupervisor",
    "plan_linear_fleet",
    "plan_sharded_fleet",
    "run_fleet",
    "plan_fleet",
    "plan_pipeline",
    "execute",
]

#: Transducer spec: (``module:factory``, [args...]).
TransducerSpec = tuple[str, Sequence[Any]]

IDENTITY: TransducerSpec = ("repro.transput:identity_transducer", ())


@dataclass(frozen=True)
class StagePlan:
    """One process of the plan: its role and full command line."""

    role: str
    argv: tuple[str, ...]
    stats_file: str
    trace_file: str | None = None
    control_port: int | None = None
    serial: int = 0
    fault: FaultPlan = field(default_factory=FaultPlan)
    stdout_file: str | None = None
    stderr_file: str | None = None
    #: Which shard's sub-pipeline this stage belongs to (None = unsharded).
    shard: int | None = None
    #: CPU core this stage pins itself to at startup (None = unpinned).
    cpu: int | None = None
    #: The ``python -m`` module this process runs.  ``repro.net.stage``
    #: for ordinary stages; ``repro.broker.daemon`` / ``repro.broker.
    #: host`` for hosted placements.
    module: str = "repro.net.stage"
    #: Daemons (the broker) serve the fleet rather than the stream:
    #: the run is complete when every *non*-daemon member is done, at
    #: which point daemons are terminated; a daemon exiting on its own
    #: mid-run is treated as a crash (and restarted on budget).
    daemon: bool = False

    @property
    def label(self) -> str:
        if self.shard is not None:
            return f"s{self.shard}:{self.role}#{self.serial}"
        return f"{self.role}#{self.serial}"

    def survivor_argv(self) -> tuple[str, ...]:
        """The command line a *restarted* incarnation should run.

        Identical to :attr:`argv` except the fault plan is reduced to
        its :meth:`~repro.fault.plan.FaultPlan.survivor` — the injected
        kill already happened; a restart that re-kills itself forever
        would turn every chaos experiment into a budget exhaustion.
        """
        survivor = self.fault.survivor()
        argv = list(self.argv)
        try:
            at = argv.index("--fault-json")
        except ValueError:
            return self.argv
        if survivor.is_benign:
            del argv[at:at + 2]
        else:
            argv[at + 1] = survivor.to_json()
        return tuple(argv)


@dataclass
class PipelineResult:
    """What a finished pipeline run produced."""

    output: list[str]
    stats: list[dict[str, Any]]
    stderr: list[str] = field(default_factory=list)
    trace_files: list[str] = field(default_factory=list)
    #: Supervisor counters (``restarts``, ``crashes``, ...) in the
    #: same counters/gauges/histograms payload shape as stage stats.
    supervisor: dict[str, Any] = field(default_factory=dict)
    #: Per-shard sink output in shard order (sharded fleets only);
    #: ``output`` is their concatenation, shard 0 first.
    shard_outputs: list[list[str]] = field(default_factory=list)

    @property
    def totals(self) -> NetStats:
        """Every stage's counters summed — the pipeline's wire traffic."""
        parts = []
        for stage_stats in self.stats:
            one = NetStats()
            for name, value in stage_stats["counters"].items():
                one.bump(name, int(value))
            parts.append(one)
        return merge_stats(*parts)

    @property
    def invocations(self) -> int:
        """Request frames (READ + WRITE + pushed END) across all stages."""
        return self.totals.get("invocations_sent")

    @property
    def restarts(self) -> int:
        """Total supervised restarts across the fleet (0 = clean run)."""
        return int(self.supervisor.get("counters", {}).get("restarts", 0))


class FleetError(RuntimeError):
    """The fleet failed: a stage exhausted its budget, or a timeout.

    ``result`` (when not None) carries whatever could still be
    gathered — most importantly every stage's stderr, which lives in
    files and therefore survives the kill.  ``reason`` names the
    failure class machine-readably: ``"budget"`` (one stage spent its
    restart budget), ``"timeout"`` (the fleet-wide deadline), or
    ``"restart-storm"`` (the aggregate cross-stage restart guard).
    """

    def __init__(self, message: str, result: PipelineResult | None = None,
                 reason: str | None = None):
        super().__init__(message)
        self.result = result
        self.reason = reason


def plan_linear_fleet(
    discipline: str,
    transducers: Sequence[TransducerSpec],
    workdir: str,
    source_items: Sequence[Any] | None = None,
    source_count: int | None = None,
    source_width: int = 8,
    source_seed: int = 0,
    flow: FlowPolicy | None = None,
    ticket_space: int = 0,
    ticket_seed: int = 0,
    host: str = "127.0.0.1",
    connect_deadline: float = 15.0,
    trace: bool = False,
    control: bool = False,
    faults: Mapping[int, FaultPlan] | None = None,
    resume: bool = False,
    io_timeout: float | None = None,
    codec: str = CODEC_JSON,
    shard: int | None = None,
    cpu: int | None = None,
    flight_dir: str | None = None,
    flight_mode: str = "full",
) -> list[StagePlan]:
    """Assign ports/serials and build every stage's command line.

    Give the source either explicit ``source_items`` (JSON-encodable)
    or ``source_count`` (+width/seed) for the deterministic
    ``random_lines`` workload the simulator examples use.

    ``trace=True`` gives every stage a ``--trace-file`` (span tracing
    on, logs mergeable with :func:`repro.obs.merge.merge_span_logs`);
    ``control=True`` gives every stage a ``--control-port`` for live
    introspection.  Either also writes a ``fleet.json`` manifest into
    ``workdir`` so ``eden-top`` / ``eden-trace`` can find the fleet.

    ``faults`` maps stage serials to the :class:`FaultPlan` each
    should suffer (serials count source = 0, filters 1..n, sink = n+1,
    then conventional pipes).  ``resume=True`` switches on the
    session-resume protocol fleet-wide — required for any fault you
    expect the pipeline to *survive* — and ``io_timeout`` bounds how
    long a stage waits on a silent peer before treating the link as
    down.
    """
    flow = flow or FlowPolicy()
    faults = dict(faults or {})
    workpath = pathlib.Path(workdir)
    workpath.mkdir(parents=True, exist_ok=True)

    base = [
        "--discipline", discipline,
        "--ticket-space", str(ticket_space),
        "--ticket-seed", str(ticket_seed),
        "--batch", str(flow.batch),
        "--lookahead", str(flow.lookahead),
        "--connect-deadline", str(connect_deadline),
    ]
    if flow.inbox_capacity is not None:
        base += ["--inbox-capacity", str(flow.inbox_capacity)]
    if flow.buffer_capacity is not None:
        base += ["--buffer-capacity", str(flow.buffer_capacity)]
    if flow.credit_window is not None:
        base += ["--credit-window", str(flow.credit_window)]
    if flow.pipeline_depth is not None:
        base += ["--pipeline-depth", str(flow.pipeline_depth)]
    if flow.adaptive:
        base += ["--adaptive"]
    if codec != CODEC_JSON:
        base += ["--codec", codec]
    if shard is not None:
        base += ["--shard", str(shard)]
    if cpu is not None:
        base += ["--cpu", str(cpu)]
    if resume:
        base += ["--resume"]
    if io_timeout is not None:
        base += ["--io-timeout", str(io_timeout)]
    if flight_dir is not None:
        base += ["--flight-dir", flight_dir, "--flight-mode", flight_mode]

    if source_items is not None:
        source_args = ["--source-json", json.dumps(list(source_items))]
    elif source_count is not None:
        source_args = [
            "--source-count", str(source_count),
            "--source-width", str(source_width),
            "--source-seed", str(source_seed),
        ]
    else:
        raise ValueError("give source_items or source_count")

    plans: list[StagePlan] = []
    serial = 0

    def add(role: str, extra: list[str]) -> StagePlan:
        nonlocal serial
        stem = f"stage-{serial}-{role}"
        stats_file = str(workpath / f"{stem}.stats.json")
        argv = ["--role", role, "--serial", str(serial),
                "--stats-file", stats_file]
        trace_file = None
        if trace:
            trace_file = str(workpath / f"{stem}.trace.jsonl")
            argv += ["--trace-file", trace_file]
        control_port = None
        if control:
            control_port = pick_free_port(host)
            argv += ["--control-port", str(control_port)]
        fault = faults.pop(serial, None) or FaultPlan()
        if not fault.is_benign:
            argv += ["--fault-json", fault.to_json()]
        plan = StagePlan(
            role=role,
            argv=tuple(argv + base + extra),
            stats_file=stats_file,
            trace_file=trace_file,
            control_port=control_port,
            serial=serial,
            fault=fault,
            stdout_file=str(workpath / f"{stem}.stdout.log"),
            stderr_file=str(workpath / f"{stem}.stderr.log"),
            shard=shard,
            cpu=cpu,
        )
        plans.append(plan)
        serial += 1
        return plan

    def spec_args(spec: TransducerSpec) -> list[str]:
        name, args = spec
        extra = ["--transducer", name]
        if list(args):
            extra += ["--transducer-args", json.dumps(list(args))]
        return extra

    at = lambda port: f"{host}:{port}"  # noqa: E731 — tiny local alias

    if discipline == "readonly":
        # source and filters listen; demand flows sink -> source.
        ports = [pick_free_port(host) for _ in range(len(transducers) + 1)]
        add("source", ["--listen", str(ports[0])] + source_args)
        for index, spec in enumerate(transducers):
            add("filter", ["--listen", str(ports[index + 1]),
                           "--upstream", at(ports[index])] + spec_args(spec))
        add("sink", ["--upstream", at(ports[-1])])
    elif discipline == "writeonly":
        # filters and sink listen; data is pushed source -> sink.
        # ports[i] is filter i's listener, ports[-1] the sink's.
        ports = [pick_free_port(host) for _ in range(len(transducers) + 1)]
        add("source", ["--downstream", at(ports[0])] + source_args)
        for index, spec in enumerate(transducers):
            add("filter", ["--listen", str(ports[index]),
                           "--downstream", at(ports[index + 1])]
                + spec_args(spec))
        add("sink", ["--listen", str(ports[-1])])
    elif discipline == "conventional":
        # a pipe process between every adjacent active pair.
        pipe_ports = [pick_free_port(host) for _ in range(len(transducers) + 1)]
        add("source", ["--downstream", at(pipe_ports[0])] + source_args)
        for index, spec in enumerate(transducers):
            add("filter", ["--upstream", at(pipe_ports[index]),
                           "--downstream", at(pipe_ports[index + 1])]
                + spec_args(spec))
        add("sink", ["--upstream", at(pipe_ports[-1])])
        for port in pipe_ports:
            add("pipe", ["--listen", str(port)])
    else:
        raise ValueError(f"unknown discipline {discipline!r}")
    if faults:
        raise ValueError(
            f"faults named serials that do not exist: {sorted(faults)} "
            f"(the fleet has serials 0..{serial - 1})"
        )
    if trace or control:
        manifest = {
            "discipline": discipline,
            "host": host,
            "resume": resume,
            "codec": codec,
            "flight_dir": flight_dir,
            "flight_mode": flight_mode if flight_dir is not None else None,
            "stages": [_manifest_entry(plan, index)
                       for index, plan in enumerate(plans)],
        }
        with open(workpath / "fleet.json", "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
    return plans


def _manifest_entry(plan: StagePlan, serial: int) -> dict[str, Any]:
    entry = {
        "role": plan.role,
        "serial": serial,
        "stats_file": plan.stats_file,
        "trace_file": plan.trace_file,
        "control_port": plan.control_port,
        "fault": plan.fault.as_dict(),
    }
    if plan.shard is not None:
        entry["shard"] = plan.shard
    if plan.cpu is not None:
        entry["cpu"] = plan.cpu
    return entry


def plan_sharded_fleet(
    discipline: str,
    transducers: Sequence[TransducerSpec],
    workdir: str,
    shards: int,
    source_items: Sequence[Any] | None = None,
    source_count: int | None = None,
    source_width: int = 8,
    source_seed: int = 0,
    flow: FlowPolicy | None = None,
    ticket_space: int = 0,
    ticket_seed: int = 0,
    host: str = "127.0.0.1",
    connect_deadline: float = 15.0,
    trace: bool = False,
    control: bool = False,
    resume: bool = False,
    io_timeout: float | None = None,
    codec: str = CODEC_JSON,
    placement_policy: str = "cores",
    flight_dir: str | None = None,
    flight_mode: str = "full",
) -> list[StagePlan]:
    """Plan ``shards`` parallel copies of the pipeline, one per partition.

    The source records are partitioned by :func:`repro.transput.flow.
    shard_of` (a stable content hash — the channel-identifier fan-out
    of paper claim C3), each partition feeding an independent sub-fleet
    planned under ``workdir/shard-<i>`` with its own ticket space.  One
    :class:`FleetSupervisor` runs all of them; its gather step
    concatenates sink outputs in shard order, so per-shard ordering is
    preserved while shards run on separate cores.  A combined
    ``fleet.json`` covering every stage is written to ``workdir`` for
    ``eden-top``.

    ``placement_policy`` decides where shards run (see
    :mod:`repro.net.affinity`): ``"cores"`` (default) pins each
    shard's sub-fleet to one CPU core round-robin over the machine's
    available cores, so N shards actually occupy N cores instead of
    stampeding the scheduler; ``"none"`` leaves placement to the OS.
    On a single-core machine (or non-Linux platforms at runtime) the
    policy degrades to no pinning.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shard_cores = assign_cores(shards, placement_policy)
    if source_items is None:
        if source_count is None:
            raise ValueError("give source_items or source_count")
        source_items = random_lines(
            count=source_count, width=source_width, seed=source_seed
        )
    buckets: list[list[Any]] = [[] for _ in range(shards)]
    for record in source_items:
        buckets[shard_of(record, shards)].append(record)
    workpath = pathlib.Path(workdir)
    workpath.mkdir(parents=True, exist_ok=True)
    plans: list[StagePlan] = []
    for index in range(shards):
        plans.extend(plan_linear_fleet(
            discipline, transducers, str(workpath / f"shard-{index}"),
            source_items=buckets[index],
            flow=flow,
            ticket_space=ticket_space + index,
            ticket_seed=ticket_seed,
            host=host,
            connect_deadline=connect_deadline,
            trace=trace,
            control=control,
            resume=resume,
            io_timeout=io_timeout,
            codec=codec,
            shard=index,
            cpu=shard_cores[index],
            flight_dir=(str(pathlib.Path(flight_dir) / f"shard-{index}")
                        if flight_dir is not None else None),
            flight_mode=flight_mode,
        ))
    if trace or control:
        manifest = {
            "discipline": discipline,
            "host": host,
            "resume": resume,
            "codec": codec,
            "flight_dir": flight_dir,
            "flight_mode": flight_mode if flight_dir is not None else None,
            "shards": shards,
            "placement_policy": placement_policy,
            "shard_cores": shard_cores,
            "stages": [_manifest_entry(plan, plan.serial) for plan in plans],
        }
        with open(workpath / "fleet.json", "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
    return plans


class _Member:
    """One supervised stage: its plan, its process, its budget."""

    def __init__(self, plan: StagePlan, index: int) -> None:
        self.plan = plan
        self.index = index
        self.process: subprocess.Popen | None = None
        self.restarts = 0
        self.done = False
        self.rc: int | None = None
        self.restart_at: float | None = None

    @property
    def stdout_path(self) -> str:
        if self.plan.stdout_file is not None:
            return self.plan.stdout_file
        return self.plan.stats_file.replace(".stats.json", ".stdout.log")

    @property
    def stderr_path(self) -> str:
        if self.plan.stderr_file is not None:
            return self.plan.stderr_file
        return self.plan.stats_file.replace(".stats.json", ".stderr.log")


class FleetSupervisor:
    """Spawn a planned fleet and keep it alive until the stream is done.

    Every stage's stdout/stderr goes to files (``<stage>.stdout.log`` /
    ``<stage>.stderr.log`` beside its stats dump), so diagnostics
    survive kills and restarts append rather than truncate.  A stage
    exiting non-zero is restarted with exponential backoff
    (``backoff_base * 2^n``, capped at ``backoff_max``) until its
    ``max_restarts`` budget runs out; exhaustion — or blowing the
    fleet-wide ``timeout`` — kills everything and raises
    :class:`FleetError` with a diagnosis.

    The knobs carry the harmonised names (`timeout`, `max_restarts`)
    used by :class:`repro.api.Pipeline`; all are validated eagerly.
    """

    def __init__(
        self,
        plans: Sequence[StagePlan],
        timeout: float = 60.0,
        python: str | None = None,
        max_restarts: int = 0,
        backoff_base: float = 0.1,
        backoff_max: float = 2.0,
        poll_interval: float = 0.02,
        storm_window: float = 5.0,
        storm_max_restarts: int | None = None,
    ) -> None:
        if not plans:
            raise ValueError("cannot supervise an empty fleet")
        if storm_window <= 0:
            raise ValueError(f"storm_window must be > 0, got {storm_window!r}")
        if storm_max_restarts is not None and (
            not isinstance(storm_max_restarts, int) or storm_max_restarts < 1
        ):
            raise ValueError(
                f"storm_max_restarts must be an integer >= 1 or None, got "
                f"{storm_max_restarts!r}"
            )
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout!r}")
        if not isinstance(max_restarts, int) or max_restarts < 0:
            raise ValueError(
                f"max_restarts must be an integer >= 0, got {max_restarts!r}"
            )
        if backoff_base < 0 or backoff_max < backoff_base:
            raise ValueError(
                f"need 0 <= backoff_base <= backoff_max, got "
                f"{backoff_base!r}/{backoff_max!r}"
            )
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {poll_interval!r}")
        self.plans = list(plans)
        self.timeout = timeout
        self.python = python or sys.executable
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.poll_interval = poll_interval
        self.storm_window = storm_window
        self.storm_max_restarts = storm_max_restarts
        self.stats = KernelStats()
        self._members = [_Member(plan, i) for i, plan in enumerate(self.plans)]
        # Sliding window of restart timestamps across *all* members —
        # the per-stage budget cannot see a fleet-wide crash loop
        # (e.g. a dead broker taking every hosted stage down with it).
        self._restart_times: list[float] = []

    # -- process plumbing ---------------------------------------------------

    def _env(self) -> dict[str, str]:
        env = dict(os.environ)
        package_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return env

    def _spawn(self, member: _Member, env: dict[str, str]) -> None:
        restart = member.restarts > 0
        argv = member.plan.survivor_argv() if restart else member.plan.argv
        mode = "a" if restart else "w"
        with open(member.stdout_path, mode, encoding="utf-8") as out, \
                open(member.stderr_path, mode, encoding="utf-8") as err:
            if restart:
                err.write(f"--- restart #{member.restarts} ---\n")
            member.process = subprocess.Popen(
                [self.python, "-m", member.plan.module, *argv],
                stdout=out, stderr=err, text=True, env=env,
            )
        member.restart_at = None

    def _kill_all(self) -> None:
        for member in self._members:
            process = member.process
            if process is not None and process.poll() is None:
                process.kill()
        for member in self._members:
            if member.process is not None:
                member.process.wait()

    def _read(self, path: str) -> str:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()
        except OSError:
            return ""

    def _partial_result(self) -> PipelineResult:
        """Whatever can be gathered after a failed run (stderr, stats)."""
        stats = []
        for plan in self.plans:
            try:
                with open(plan.stats_file, "r", encoding="utf-8") as handle:
                    stats.append(json.load(handle))
            except (OSError, json.JSONDecodeError):
                stats.append({"counters": {}, "gauges": {}, "histograms": {}})
        return PipelineResult(
            output=[],
            stats=stats,
            stderr=[self._read(m.stderr_path) for m in self._members],
            trace_files=[p.trace_file for p in self.plans
                         if p.trace_file is not None],
            supervisor=snapshot_payload(self.stats),
        )

    def _diagnose(self, member: _Member, rc: int) -> str:
        tail = self._read(member.stderr_path).strip()[-500:]
        kind = ("injected kill" if rc == KILLED_EXIT_CODE else "crash")
        return (
            f"{member.plan.label} rc={rc} ({kind}) after "
            f"{member.restarts} restart(s) of a budget of "
            f"{self.max_restarts}: {tail}"
        )

    # -- the supervision loop -----------------------------------------------

    def run(self) -> PipelineResult:
        """Run the fleet to completion; restart crashes; gather results."""
        env = self._env()
        for member in self._members:
            self._spawn(member, env)
        deadline = time.monotonic() + self.timeout
        workers = [m for m in self._members if not m.plan.daemon]
        try:
            while not all(m.done for m in workers):
                now = time.monotonic()
                if now > deadline:
                    self._kill_all()
                    running = [m.plan.label for m in self._members
                               if not m.done]
                    raise FleetError(
                        f"fleet timeout after {self.timeout:.1f}s; "
                        f"still running: {', '.join(running)}",
                        result=self._partial_result(),
                        reason="timeout",
                    )
                for member in self._members:
                    if member.done:
                        continue
                    if member.process is None:
                        if member.restart_at is not None and \
                                now >= member.restart_at:
                            self._spawn(member, env)
                        continue
                    rc = member.process.poll()
                    if rc is None:
                        continue
                    if rc == 0 and not member.plan.daemon:
                        member.done = True
                        member.rc = 0
                        continue
                    # A daemon exiting — even cleanly — while the
                    # stream still runs is a failure of the fleet's
                    # substrate: restart it like any crash.
                    self._note_crash(member, rc)
                time.sleep(self.poll_interval)
            self._stop_daemons()
        except FleetError:
            raise
        except BaseException:
            self._kill_all()
            raise
        return self._gather()

    def _stop_daemons(self, grace: float = 5.0) -> None:
        """The stream is done: retire daemons (SIGTERM, then SIGKILL)."""
        daemons = [m for m in self._members
                   if m.plan.daemon and not m.done]
        for member in daemons:
            process = member.process
            if process is not None and process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + grace
        for member in daemons:
            process = member.process
            if process is not None:
                try:
                    process.wait(max(0.0, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
            member.done = True
            member.rc = process.returncode if process is not None else None

    def _note_crash(self, member: _Member, rc: int) -> None:
        label = member.plan.label
        self.stats.bump("crashes")
        self.stats.bump(f"crashes[{label}]")
        if rc == KILLED_EXIT_CODE:
            self.stats.bump("injected_kills")
        if member.restarts >= self.max_restarts:
            diagnosis = self._diagnose(member, rc)
            self._kill_all()
            raise FleetError(
                "stage failures:\n" + diagnosis,
                result=self._partial_result(),
                reason="budget",
            )
        delay = min(self.backoff_base * (2 ** member.restarts),
                    self.backoff_max)
        member.restarts += 1
        member.process = None
        member.restart_at = time.monotonic() + delay
        self.stats.bump("restarts")
        self.stats.bump(f"restarts[{label}]")
        self.stats.set_gauge(f"backoff_s[{label}]", delay)
        self._note_storm(label)

    def _note_storm(self, label: str) -> None:
        """The aggregate guard: too many restarts fleet-wide, too fast.

        Each member's budget bounds *its own* crash loop; a correlated
        failure (a dead broker, a bad deploy) burns every member's
        budget in parallel and can thrash for the whole fleet timeout.
        When more than ``storm_max_restarts`` restarts land inside a
        sliding ``storm_window``, the fleet is stopped with a distinct
        ``restart-storm`` reason instead.
        """
        if self.storm_max_restarts is None:
            return
        now = time.monotonic()
        self._restart_times.append(now)
        horizon = now - self.storm_window
        self._restart_times = [t for t in self._restart_times if t >= horizon]
        if len(self._restart_times) > self.storm_max_restarts:
            self.stats.bump("restart_storms")
            self._kill_all()
            raise FleetError(
                f"restart storm: {len(self._restart_times)} restarts across "
                f"the fleet within {self.storm_window:.1f}s (limit "
                f"{self.storm_max_restarts}); last crash: {label}",
                result=self._partial_result(),
                reason="restart-storm",
            )

    def _gather(self) -> PipelineResult:
        # A sharded fleet has one sink per shard: concatenate their
        # outputs in shard order, so each shard's internal ordering is
        # preserved (the merge stage of the sharded pipeline).
        sinks = sorted(
            (m for m in self._members if m.plan.role in ("sink", "host")),
            key=lambda m: m.plan.shard or 0,
        )
        shard_outputs = [
            self._read(m.stdout_path).splitlines() for m in sinks
        ]
        output = [line for lines in shard_outputs for line in lines]
        stats = []
        for plan in self.plans:
            with open(plan.stats_file, "r", encoding="utf-8") as handle:
                stats.append(json.load(handle))
        payload = snapshot_payload(self.stats)
        workdir = pathlib.Path(self.plans[0].stats_file).parent
        try:
            with open(workdir / "supervisor.stats.json", "w",
                      encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
        except OSError:
            pass
        return PipelineResult(
            output=output,
            stats=stats,
            stderr=[self._read(m.stderr_path) for m in self._members],
            trace_files=[p.trace_file for p in self.plans
                         if p.trace_file is not None],
            supervisor=payload,
            shard_outputs=shard_outputs if len(sinks) > 1 else [],
        )


def run_fleet(
    plans: Sequence[StagePlan],
    timeout: float = 60.0,
    python: str | None = None,
    max_restarts: int = 0,
    backoff_base: float = 0.1,
    backoff_max: float = 2.0,
    storm_window: float = 5.0,
    storm_max_restarts: int | None = None,
) -> PipelineResult:
    """Spawn and supervise every planned stage; gather output + counters.

    The convenience front door over :class:`FleetSupervisor`.  Raises
    :class:`FleetError` (a ``RuntimeError``, with every stage's stderr
    preserved in ``.result``) if a stage exhausts its restart budget,
    the fleet exceeds ``timeout``, or — with ``storm_max_restarts``
    set — restarts across all stages exceed that count within a
    sliding ``storm_window`` seconds (``reason="restart-storm"``).
    """
    supervisor = FleetSupervisor(
        plans, timeout=timeout, python=python, max_restarts=max_restarts,
        backoff_base=backoff_base, backoff_max=backoff_max,
        storm_window=storm_window, storm_max_restarts=storm_max_restarts,
    )
    return supervisor.run()


# ---------------------------------------------------------------------------
# Deprecated aliases (the pre-supervisor and pre-graph entry points).
# ---------------------------------------------------------------------------


def plan_fleet(*args: Any, **kwargs: Any) -> list[StagePlan]:
    """Deprecated front door: use :class:`repro.api.Pipeline` (or, for
    one raw linear fleet plan, :func:`plan_linear_fleet`)."""
    warn_deprecated(
        "repro.net.launch.plan_fleet",
        "repro.api.Pipeline(...).run(runtime='tcp') — or "
        "repro.net.launch.plan_linear_fleet for one raw fleet plan",
    )
    return plan_linear_fleet(*args, **kwargs)


def plan_pipeline(*args: Any, **kwargs: Any) -> list[StagePlan]:
    """Deprecated alias of :func:`plan_linear_fleet`."""
    warn_deprecated("repro.net.launch.plan_pipeline",
                    "repro.net.launch.plan_linear_fleet")
    return plan_linear_fleet(*args, **kwargs)


def execute(
    plans: Sequence[StagePlan],
    timeout: float = 60.0,
    python: str | None = None,
) -> PipelineResult:
    """Deprecated alias of :func:`run_fleet` (no restarts)."""
    warn_deprecated("repro.net.launch.execute", "repro.net.launch.run_fleet")
    return run_fleet(plans, timeout=timeout, python=python)
