"""Connection admission: the UID/capability hello (paper §5, claim C4).

The simulated kernel verifies the sparse-secret nonce of every UID an
invocation presents (:class:`~repro.core.uid.UIDFactory.verify`), so a
fabricated UID is useless.  Across OS processes there is no shared
factory object, but the factory's nonce stream is *deterministic* in
``(space, seed)`` — so every stage of one pipeline can reconstruct the
same book of genuine UIDs from the launch parameters and check any
presented ticket against it, without the secrets ever crossing the
wire unencrypted... they do cross the wire here (this is a localhost
research runtime, not TLS), but forgery still fails exactly as in the
simulator: a guessed nonce will not match the book.

Protocol: the connecting side sends ``HELLO`` carrying its ticket UID,
its role (``"pull"`` — it will issue READs — or ``"push"`` — it will
send WRITEs), and the channel it addresses.  The accepting side
verifies the ticket and answers ``WELCOME`` (carrying the granted
write credit and its own ticket, so authentication is mutual) or
``ERROR`` + close.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any

from repro.core.capability import PRIMARY_CHANNEL
from repro.core.errors import EdenError
from repro.core.uid import UID, UIDFactory
from repro.net.framing import Frame, FrameType, read_frame, write_frame

__all__ = [
    "HandshakeError",
    "TicketBook",
    "Hello",
    "send_hello",
    "expect_hello",
    "ROLE_PULL",
    "ROLE_PUSH",
]

#: The connecting side will issue ``READ`` frames (active input).
ROLE_PULL = "pull"
#: The connecting side will push ``WRITE`` frames (active output).
ROLE_PUSH = "push"

#: Cap on how far a book will extend its nonce stream while verifying,
#: so a hostile serial cannot make verification loop unboundedly.
MAX_SERIAL = 4096


class HandshakeError(EdenError):
    """The connection hello failed (forged ticket, wrong frame, ...)."""


class TicketBook(UIDFactory):
    """A deterministic UID factory shared by launch parameters.

    Every process launched with the same ``(space, seed)`` derives the
    identical nonce stream, so ``book.verify(uid)`` in one process
    accepts exactly the UIDs ``book.issue()`` produced in another.
    """

    def __init__(self, space: int = 0, seed: int = 0) -> None:
        super().__init__(space=space, seed=seed)
        self.seed = seed

    def ticket(self, serial: int) -> UID:
        """The book's ``serial``-th UID, issuing up to it if needed."""
        if serial < 0 or serial > MAX_SERIAL:
            raise HandshakeError(f"ticket serial {serial} out of range")
        while self.issued_count <= serial:
            self.issue()
        return UID(space=self.space, serial=serial, nonce=self._issued[serial])

    def is_genuine(self, uid: UID) -> bool:
        """Extend the stream far enough, then check the nonce."""
        if not isinstance(uid, UID) or uid.space != self.space:
            return False
        if 0 <= uid.serial <= MAX_SERIAL:
            while self.issued_count <= uid.serial:
                self.issue()
        return super().is_genuine(uid)


@dataclass(frozen=True)
class Hello:
    """A verified, decoded hello."""

    uid: UID
    role: str
    channel: Any = PRIMARY_CHANNEL


def hello_frame(uid: UID, role: str, channel: Any = PRIMARY_CHANNEL) -> Frame:
    """The HELLO frame a connecting stage presents."""
    if role not in (ROLE_PULL, ROLE_PUSH):
        raise HandshakeError(f"role must be pull or push, got {role!r}")
    return Frame(FrameType.HELLO, {"uid": uid, "role": role, "channel": channel})


async def send_hello(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    uid: UID,
    role: str,
    channel: Any = PRIMARY_CHANNEL,
    book: TicketBook | None = None,
) -> Frame:
    """Client side: present a ticket, await WELCOME.

    Returns the WELCOME frame (its body carries ``credit``).  Raises
    :class:`HandshakeError` if the server rejects us, if the
    connection dies mid-handshake, or — when ``book`` is given — if
    the server's own ticket fails mutual verification.
    """
    await write_frame(writer, hello_frame(uid, role, channel))
    reply = await read_frame(reader)
    if reply is None:
        raise HandshakeError("connection closed during handshake")
    if reply.type is FrameType.ERROR:
        raise HandshakeError(
            f"server rejected hello: {reply.body.get('code')} "
            f"({reply.body.get('message')})"
        )
    if reply.type is not FrameType.WELCOME:
        raise HandshakeError(f"expected WELCOME, got {reply.type.name}")
    if book is not None:
        server_uid = reply.body.get("uid")
        if not book.is_genuine(server_uid):
            raise HandshakeError(f"server ticket {server_uid!r} is not genuine")
    return reply


async def expect_hello(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    book: TicketBook,
    server_uid: UID,
    credit: int = 0,
) -> Hello:
    """Server side: demand a genuine ticket before any stream traffic.

    On success replies ``WELCOME`` (granting ``credit`` records of
    write allowance and presenting the server's own ticket) and
    returns the decoded hello.  On failure replies ``ERROR`` and
    raises :class:`HandshakeError` — exactly the simulator's
    ``ForgeryError`` discipline, but at a connection boundary.
    """
    frame = await read_frame(reader)
    if frame is None:
        raise HandshakeError("connection closed before hello")
    if frame.type is not FrameType.HELLO:
        await _reject(writer, "bad-hello", f"expected HELLO, got {frame.type.name}")
        raise HandshakeError(f"expected HELLO, got {frame.type.name}")
    uid = frame.body.get("uid")
    role = frame.body.get("role")
    if role not in (ROLE_PULL, ROLE_PUSH):
        await _reject(writer, "bad-role", f"unknown role {role!r}")
        raise HandshakeError(f"unknown role {role!r}")
    if not book.is_genuine(uid):
        await _reject(writer, "forged-uid", f"ticket {uid!r} was not issued here")
        raise HandshakeError(f"forged ticket {uid!r}")
    await write_frame(
        writer,
        Frame(FrameType.WELCOME, {"credit": credit, "uid": server_uid}),
    )
    return Hello(uid=uid, role=role, channel=frame.body.get("channel"))


async def _reject(writer: asyncio.StreamWriter, code: str, message: str) -> None:
    try:
        await write_frame(writer, Frame(FrameType.ERROR, {"code": code,
                                                          "message": message}))
        writer.close()
        await writer.wait_closed()
    except (ConnectionError, OSError):  # peer already gone: nothing to tell
        pass
