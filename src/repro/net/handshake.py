"""Connection admission: the UID/capability hello (paper §5, claim C4).

The simulated kernel verifies the sparse-secret nonce of every UID an
invocation presents (:class:`~repro.core.uid.UIDFactory.verify`), so a
fabricated UID is useless.  Across OS processes there is no shared
factory object, but the factory's nonce stream is *deterministic* in
``(space, seed)`` — so every stage of one pipeline can reconstruct the
same book of genuine UIDs from the launch parameters and check any
presented ticket against it, without the secrets ever crossing the
wire unencrypted... they do cross the wire here (this is a localhost
research runtime, not TLS), but forgery still fails exactly as in the
simulator: a guessed nonce will not match the book.

Protocol: the connecting side sends ``HELLO`` carrying its ticket UID,
its role (``"pull"`` — it will issue READs — or ``"push"`` — it will
send WRITEs), and the channel it addresses.  The accepting side
verifies the ticket and answers ``WELCOME`` (carrying the granted
write credit and its own ticket, so authentication is mutual) or
``ERROR`` + close.

**Session resume** (``docs/fault_tolerance.md``): a reconnecting pull
client adds ``"resume": {"next_seq": k}`` to its HELLO — "I have
already received the first ``k`` records of this stream; serve from
``k``".  A push server under resume adds ``"resume_seq": r`` to its
WELCOME — "I have already accepted ``r`` records; skip them".  Both
fields are optional, so resuming and non-resuming peers interoperate.

**Codec negotiation** (``docs/protocol.md``): the HELLO may carry
``"codecs": [...]`` — the body encodings the client can read, in
preference order.  The server answers with ``"codec": <name>`` in its
WELCOME naming the one both sides will use for stream frames.  A peer
that omits ``codecs`` (or a server whose WELCOME omits ``codec``) is
an older JSON-only build, and both sides fall back to JSON — so mixed
fleets interoperate without configuration.  The handshake itself is
always JSON; only post-WELCOME traffic switches.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.capability import PRIMARY_CHANNEL
from repro.core.errors import EdenError
from repro.core.uid import UID, UIDFactory
from repro.net.framing import (
    CODEC_JSON,
    CODECS,
    Frame,
    FrameType,
    read_frame,
    write_frame,
)

__all__ = [
    "HandshakeError",
    "HandshakeLinkDown",
    "TicketBook",
    "Hello",
    "send_hello",
    "expect_hello",
    "send_hello_over",
    "expect_hello_over",
    "negotiated_codec",
    "ROLE_PULL",
    "ROLE_PUSH",
    "ROLE_HOST",
    "STREAM_ROLES",
]

#: The connecting side will issue ``READ`` frames (active input).
ROLE_PULL = "pull"
#: The connecting side will push ``WRITE`` frames (active output).
ROLE_PUSH = "push"
#: The connecting side is a stage host attaching to a broker: the
#: connection will carry multiplexed logical channels, not one stream.
ROLE_HOST = "host"

#: The roles an ordinary stream endpoint accepts (the default).
STREAM_ROLES = (ROLE_PULL, ROLE_PUSH)

#: Cap on how far a book will extend its nonce stream while verifying,
#: so a hostile serial cannot make verification loop unboundedly.
MAX_SERIAL = 4096


class HandshakeError(EdenError):
    """The connection hello failed (forged ticket, wrong frame, ...)."""


class HandshakeLinkDown(HandshakeError):
    """The link died mid-handshake (no verdict was reached).

    Distinct from a rejection: the server never said no, the transport
    just failed — a resuming client treats this as retryable (it is
    exactly what a ``refuse_accepts`` fault looks like from outside).
    """


class TicketBook(UIDFactory):
    """A deterministic UID factory shared by launch parameters.

    Every process launched with the same ``(space, seed)`` derives the
    identical nonce stream, so ``book.verify(uid)`` in one process
    accepts exactly the UIDs ``book.issue()`` produced in another.
    """

    def __init__(self, space: int = 0, seed: int = 0) -> None:
        super().__init__(space=space, seed=seed)
        self.seed = seed

    def ticket(self, serial: int) -> UID:
        """The book's ``serial``-th UID, issuing up to it if needed."""
        if serial < 0 or serial > MAX_SERIAL:
            raise HandshakeError(f"ticket serial {serial} out of range")
        while self.issued_count <= serial:
            self.issue()
        return UID(space=self.space, serial=serial, nonce=self._issued[serial])

    def is_genuine(self, uid: UID) -> bool:
        """Extend the stream far enough, then check the nonce."""
        if not isinstance(uid, UID) or uid.space != self.space:
            return False
        if 0 <= uid.serial <= MAX_SERIAL:
            while self.issued_count <= uid.serial:
                self.issue()
        return super().is_genuine(uid)


@dataclass(frozen=True)
class Hello:
    """A verified, decoded hello."""

    uid: UID
    role: str
    channel: Any = PRIMARY_CHANNEL
    #: Stream position the client asks to resume from (None = fresh).
    next_seq: int | None = None
    #: Body encoding both sides agreed on for stream frames.
    codec: str = CODEC_JSON


def negotiated_codec(offered: Any, acceptable: Any = CODECS) -> str:
    """Pick the stream codec: first of ``acceptable`` the peer offered.

    ``offered`` is the raw ``codecs`` HELLO value (or the ``codec``
    WELCOME reply wrapped in a list); anything malformed, empty, or
    absent degrades to JSON — the codec every build speaks.
    """
    if not isinstance(offered, (list, tuple)):
        return CODEC_JSON
    for name in acceptable:
        if name in offered:
            return str(name)
    return CODEC_JSON


def hello_frame(
    uid: UID,
    role: str,
    channel: Any = PRIMARY_CHANNEL,
    next_seq: int | None = None,
    codecs: Any = None,
    roles: tuple[str, ...] = STREAM_ROLES,
) -> Frame:
    """The HELLO frame a connecting stage presents.

    ``roles`` is the vocabulary this endpoint may claim — stream
    endpoints present ``pull`` or ``push``; a broker attachment
    presents ``host``.
    """
    if role not in roles:
        raise HandshakeError(
            f"role must be one of {'/'.join(roles)}, got {role!r}"
        )
    body: dict[str, Any] = {"uid": uid, "role": role, "channel": channel}
    if next_seq is not None:
        body["resume"] = {"next_seq": int(next_seq)}
    if codecs:
        body["codecs"] = [str(name) for name in codecs]
    return Frame(FrameType.HELLO, body)


async def send_hello(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    uid: UID,
    role: str,
    channel: Any = PRIMARY_CHANNEL,
    book: TicketBook | None = None,
    next_seq: int | None = None,
    codecs: Any = None,
    roles: tuple[str, ...] = STREAM_ROLES,
) -> Frame:
    """Client side: present a ticket, await WELCOME.

    Returns the WELCOME frame (its body carries ``credit``, the
    negotiated ``codec`` when ``codecs`` were offered, and — under
    resume — the server's ``resume_seq``).  Raises
    :class:`HandshakeError` if the server rejects us, if the
    connection dies mid-handshake, or — when ``book`` is given — if
    the server's own ticket fails mutual verification.
    """
    await write_frame(
        writer,
        hello_frame(uid, role, channel, next_seq=next_seq, codecs=codecs,
                    roles=roles),
    )
    reply = await read_frame(reader)
    return _check_welcome(reply, book)


def _check_welcome(reply: Frame | None, book: TicketBook | None) -> Frame:
    """Validate a handshake reply; shared by both transports."""
    if reply is None:
        raise HandshakeLinkDown("connection closed during handshake")
    if reply.type is FrameType.ERROR:
        raise HandshakeError(
            f"server rejected hello: {reply.body.get('code')} "
            f"({reply.body.get('message')})"
        )
    if reply.type is not FrameType.WELCOME:
        raise HandshakeError(f"expected WELCOME, got {reply.type.name}")
    if book is not None:
        server_uid = reply.body.get("uid")
        if not book.is_genuine(server_uid):
            raise HandshakeError(f"server ticket {server_uid!r} is not genuine")
    return reply


async def send_hello_over(
    conn: Any,
    uid: UID,
    role: str,
    channel: Any = PRIMARY_CHANNEL,
    book: TicketBook | None = None,
    next_seq: int | None = None,
    codecs: Any = None,
) -> Frame:
    """:func:`send_hello` over a ``Connection``-shaped transport.

    ``conn`` needs only ``send``/``recv`` coroutines — a
    :class:`repro.net.mux.MuxChannel` qualifies, which is how a hosted
    stage runs the full C4 ticket handshake *inside* one logical
    channel of a multiplexed broker connection.
    """
    await conn.send(hello_frame(uid, role, channel, next_seq=next_seq,
                                codecs=codecs))
    return _check_welcome(await conn.recv(), book)


async def expect_hello_over(
    conn: Any,
    book: TicketBook,
    server_uid: UID,
    credit: int = 0,
    resume_seq_for: Callable[["Hello"], int | None] | None = None,
    codec_offer: Any = CODECS,
) -> Hello:
    """:func:`expect_hello` over a ``Connection``-shaped transport.

    On rejection sends ``ERROR`` on the channel (leaving the channel's
    disposal to the caller — a multiplexed peer must not close the
    whole connection over one bad hello) and raises
    :class:`HandshakeError`.
    """
    frame = await conn.recv()
    if frame is None:
        raise HandshakeLinkDown("channel closed before hello")
    if frame.type is not FrameType.HELLO:
        await _reject_over(conn, "bad-hello",
                           f"expected HELLO, got {frame.type.name}")
        raise HandshakeError(f"expected HELLO, got {frame.type.name}")
    uid = frame.body.get("uid")
    role = frame.body.get("role")
    if role not in STREAM_ROLES:
        await _reject_over(conn, "bad-role", f"unknown role {role!r}")
        raise HandshakeError(f"unknown role {role!r}")
    if not book.is_genuine(uid):
        await _reject_over(conn, "forged-uid",
                           f"ticket {uid!r} was not issued here")
        raise HandshakeError(f"forged ticket {uid!r}")
    resume = frame.body.get("resume")
    next_seq = None
    if isinstance(resume, dict) and isinstance(resume.get("next_seq"), int):
        next_seq = max(0, resume["next_seq"])
    codec = negotiated_codec(frame.body.get("codecs"),
                             codec_offer or (CODEC_JSON,))
    hello = Hello(
        uid=uid, role=role, channel=frame.body.get("channel"),
        next_seq=next_seq, codec=codec,
    )
    welcome: dict[str, Any] = {"credit": credit, "uid": server_uid,
                               "codec": codec}
    if resume_seq_for is not None:
        resume_seq = resume_seq_for(hello)
        if resume_seq is not None:
            welcome["resume_seq"] = int(resume_seq)
    await conn.send(Frame(FrameType.WELCOME, welcome))
    return hello


async def _reject_over(conn: Any, code: str, message: str) -> None:
    try:
        await conn.send(Frame(FrameType.ERROR, {"code": code,
                                                "message": message}))
    except (ConnectionError, OSError, EdenError):
        pass  # peer already gone: nothing to tell


async def expect_hello(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    book: TicketBook,
    server_uid: UID,
    credit: int = 0,
    resume_seq_for: Callable[["Hello"], int | None] | None = None,
    codec_offer: Any = CODECS,
    roles: tuple[str, ...] = STREAM_ROLES,
) -> Hello:
    """Server side: demand a genuine ticket before any stream traffic.

    On success replies ``WELCOME`` (granting ``credit`` records of
    write allowance and presenting the server's own ticket) and
    returns the decoded hello.  On failure replies ``ERROR`` and
    raises :class:`HandshakeError` — exactly the simulator's
    ``ForgeryError`` discipline, but at a connection boundary.

    ``resume_seq_for`` (a resuming stage's hook) maps the decoded
    hello to the count of records this server has already accepted on
    that channel; when it returns a number, the WELCOME advertises it
    as ``resume_seq`` so a reconnecting pusher can skip records the
    server already has.
    """
    frame = await read_frame(reader)
    if frame is None:
        raise HandshakeError("connection closed before hello")
    if frame.type is not FrameType.HELLO:
        await _reject(writer, "bad-hello", f"expected HELLO, got {frame.type.name}")
        raise HandshakeError(f"expected HELLO, got {frame.type.name}")
    uid = frame.body.get("uid")
    role = frame.body.get("role")
    if role not in roles:
        await _reject(writer, "bad-role", f"unknown role {role!r}")
        raise HandshakeError(f"unknown role {role!r}")
    if not book.is_genuine(uid):
        await _reject(writer, "forged-uid", f"ticket {uid!r} was not issued here")
        raise HandshakeError(f"forged ticket {uid!r}")
    resume = frame.body.get("resume")
    next_seq = None
    if isinstance(resume, dict) and isinstance(resume.get("next_seq"), int):
        next_seq = max(0, resume["next_seq"])
    codec = negotiated_codec(frame.body.get("codecs"), codec_offer or (CODEC_JSON,))
    hello = Hello(
        uid=uid, role=role, channel=frame.body.get("channel"),
        next_seq=next_seq, codec=codec,
    )
    welcome: dict[str, Any] = {"credit": credit, "uid": server_uid,
                               "codec": codec}
    if resume_seq_for is not None:
        resume_seq = resume_seq_for(hello)
        if resume_seq is not None:
            welcome["resume_seq"] = int(resume_seq)
    await write_frame(writer, Frame(FrameType.WELCOME, welcome))
    return hello


async def _reject(writer: asyncio.StreamWriter, code: str, message: str) -> None:
    try:
        await write_frame(writer, Frame(FrameType.ERROR, {"code": code,
                                                          "message": message}))
        writer.close()
        await writer.wait_closed()
    except (ConnectionError, OSError):  # peer already gone: nothing to tell
        pass
