"""Vectored socket writes: one ``sendmsg`` for a burst of frames.

A pipelined read burst (:meth:`repro.net.protocol.Connection.
send_many`) or a fair-writer pass (:class:`repro.net.mux.FairWriter`)
holds a *list* of already-encoded frames.  Joining them into one
bytearray costs a copy of the whole burst; writing them one by one
costs a syscall (or at least a transport-buffer append) per frame.
``socket.sendmsg`` takes the list as an iovec and moves it with one
syscall and zero joins — the classic writev path.

:func:`write_vectored` takes that fast path only when it is provably
safe: the writer's transport must expose its socket **and** have an
empty write buffer (otherwise bytes we push directly would overtake
bytes the transport still holds, corrupting the stream).  In every
other case — no socket (tests, TLS), buffered bytes, a platform
without ``sendmsg``, or a full kernel buffer — it degrades to the
joined single ``write`` that PR 4 shipped, so the wire byte stream is
**identical on both paths** (the parity test in
``tests/net/test_vectored.py`` asserts this byte-for-byte).

A partial ``sendmsg`` (kernel buffer filled mid-burst) hands the
remainder to the transport, preserving order; ``BlockingIOError``
hands the whole burst over.  Callers ``await writer.drain()``
afterwards exactly as before.
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

__all__ = ["IOV_MAX", "write_vectored", "sendmsg_supported"]

#: Portable iovec-count ceiling per sendmsg call (POSIX minimum 16,
#: Linux 1024); bursts beyond it are sent in slices.
IOV_MAX = 1024


def _unwrap_socket(sock: Any) -> Any:
    """The real socket behind asyncio's ``TransportSocket`` facade.

    ``transport.get_extra_info("socket")`` hands back a wrapper that
    deliberately hides the I/O methods (``sendmsg`` included) — the
    raw socket underneath still has them, and writing to it is safe
    here because :func:`write_vectored` only runs while the
    transport's own buffer is empty.
    """
    return getattr(sock, "_sock", sock)


def sendmsg_supported(sock: Any) -> bool:
    """Whether ``sock`` can take the vectored path."""
    return sock is not None and hasattr(_unwrap_socket(sock), "sendmsg")


def _push_rest(writer: asyncio.StreamWriter,
               buffers: Sequence[Any], skip: int) -> None:
    """Queue everything after the first ``skip`` bytes on the transport."""
    for buffer in buffers:
        size = len(buffer)
        if skip >= size:
            skip -= size
            continue
        view = memoryview(buffer)
        writer.write(view[skip:] if skip else view)
        skip = 0


def write_vectored(
    writer: asyncio.StreamWriter,
    buffers: Sequence[Any],
    stats: Any = None,
) -> int:
    """Write a burst of buffers; returns the total byte count.

    Attempts one ``sendmsg`` per :data:`IOV_MAX` slice while the
    transport's buffer stays empty, falling back to transport writes
    (which coalesce in the event loop) the moment anything blocks.
    Synchronous by design — nothing here awaits, so no other task can
    interleave between the safety check and the send; the caller
    drains afterwards as usual.

    ``stats`` (anything with ``bump``) receives ``sendmsg_writes`` /
    ``coalesced_writes`` counters so the benchmark can prove which
    path ran.
    """
    total = sum(len(buffer) for buffer in buffers)
    if not total:
        return 0
    transport = getattr(writer, "transport", None)
    sock = None
    blocked = True
    if transport is not None:
        try:
            sock = transport.get_extra_info("socket")
            blocked = (transport.get_write_buffer_size() > 0
                       or transport.is_closing())
        except Exception:
            # A stand-in writer without the full transport surface
            # (tests, wrappers): the joined path serves it fine.
            blocked = True
    sock = _unwrap_socket(sock)
    if not sendmsg_supported(sock) or blocked:
        # The safe slow path: hand the burst to the transport in one
        # joined write (byte-identical wire stream, one buffer copy).
        writer.write(b"".join(bytes(b) if isinstance(b, memoryview) else b
                              for b in buffers))
        if stats is not None:
            stats.bump("coalesced_writes")
        return total
    sent_frames = 0
    pending = list(buffers)
    while pending:
        slice_ = pending[:IOV_MAX]
        try:
            sent = sock.send(slice_[0]) if len(slice_) == 1 \
                else sock.sendmsg(slice_)
        except (BlockingIOError, InterruptedError):
            sent = 0
        except OSError:
            # A dying socket: let the transport surface the error on
            # its own write path (and to the caller's drain()).
            _push_rest(writer, pending, 0)
            if stats is not None:
                stats.bump("coalesced_writes")
            return total
        want = sum(len(buffer) for buffer in slice_)
        if sent < want:
            # Kernel buffer full mid-burst: the transport takes the
            # rest, preserving order (it writes only after our bytes,
            # because its buffer was empty when we started).
            _push_rest(writer, pending, sent)
            if stats is not None:
                stats.bump("sendmsg_partial_writes")
            return total
        sent_frames += len(slice_)
        pending = pending[IOV_MAX:]
    if stats is not None:
        stats.bump("sendmsg_writes")
    return total
