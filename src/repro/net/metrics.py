"""On-wire counters shaped like the simulator's ``KernelStats``.

The paper's quantitative claims are about message counts, so the net
runtime counts exactly what crosses a socket: frames by type and
direction, bytes, and — the headline numbers — ``invocations_sent``
and ``replies_sent``, using the same request/reply split the simulated
kernel uses:

- a ``READ`` is always a request (active input's demand);
- a ``WRITE`` is always a request (active output's push);
- an ``END`` is a request when *pushed* by a writer (it is the
  write-only discipline's final Write) and a reply when it answers a
  ``READ``;
- ``DATA`` and ``ACK`` are replies.

Summing ``invocations_sent`` over every stage of a pipeline reproduces
:func:`repro.analysis.cost_model.predicted_invocations` on real
traffic: ``(n+1)(m+1)`` for the asymmetric disciplines and
``(2n+2)(m+1)`` for the conventional emulation — the integration tests
check this exactly.
"""

from __future__ import annotations

import json
from typing import IO, Union

from repro.core.stats import KernelStats, StatsSnapshot
from repro.net.framing import Frame, FrameType

__all__ = ["NetStats", "merge_stats", "REQUEST_TYPES", "REPLY_TYPES"]

#: Frame types that are always requests (invocations).
REQUEST_TYPES = frozenset({FrameType.READ, FrameType.WRITE})
#: Frame types that are always replies.
REPLY_TYPES = frozenset({FrameType.DATA, FrameType.ACK, FrameType.WELCOME})


class NetStats(KernelStats):
    """Monotone on-wire counters for one stage (or one connection).

    Counter names: ``frames_sent`` / ``frames_received`` (totals),
    ``<type>_frames_sent`` / ``<type>_frames_received`` per frame
    type (lowercase), ``bytes_sent`` / ``bytes_received``, plus the
    kernel-compatible ``invocations_sent`` / ``replies_sent``.
    """

    def note_sent(self, frame: Frame, wire_bytes: int,
                  end_is_request: bool = False) -> None:
        """Account one outgoing frame of ``wire_bytes`` bytes.

        ``end_is_request`` tells the END ambiguity apart: pass True on
        push connections (writer side), False on pull replies.
        """
        self.bump("frames_sent")
        self.bump(f"{frame.type.name.lower()}_frames_sent")
        self.bump("bytes_sent", wire_bytes)
        if frame.type in REQUEST_TYPES or (
            frame.type is FrameType.END and end_is_request
        ):
            self.bump("invocations_sent")
        elif frame.type in REPLY_TYPES or frame.type is FrameType.END:
            self.bump("replies_sent")

    def note_received(self, frame: Frame, wire_bytes: int) -> None:
        """Account one incoming frame."""
        self.bump("frames_received")
        self.bump(f"{frame.type.name.lower()}_frames_received")
        self.bump("bytes_received", wire_bytes)

    # -- persistence (stages dump these for the orchestrator) ---------------

    def to_json(self) -> str:
        """Serialize every instrument as a JSON object.

        The structured ``{"counters", "gauges", "histograms"}`` payload
        of :func:`repro.obs.registry.snapshot_payload`; gauges and
        histograms survive the round trip instead of being dropped.
        """
        from repro.obs.registry import snapshot_payload

        return json.dumps(snapshot_payload(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "NetStats":
        """Rebuild a stats object from :meth:`to_json` output.

        Accepts the structured payload and the legacy flat
        ``{name: count}`` form.  Values are validated, never silently
        truncated: a counter of ``3.5`` raises ``ValueError`` (the old
        ``int(value)`` would have quietly recorded 3).
        """
        from repro.obs.registry import stats_from_payload

        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError(
                f"stats payload must be an object, got {type(payload).__name__}"
            )
        stats = cls()
        stats_from_payload(payload, into=stats)
        return stats

    def dump(self, sink: Union[str, IO[str]]) -> None:
        """Write :meth:`to_json` to a path or open text file."""
        if isinstance(sink, str):
            with open(sink, "w", encoding="utf-8") as handle:
                handle.write(self.to_json())
        else:
            sink.write(self.to_json())


def merge_stats(*parts: KernelStats) -> NetStats:
    """Sum counters (and fold histograms) across stages.

    Gauges are point-in-time and per-stage, so they do not merge;
    histograms merge exactly (shared bucket edges are part of the
    data), giving fleet-wide latency distributions.
    """
    from repro.core.stats import Histogram

    total = NetStats()
    for part in parts:
        snapshot: StatsSnapshot = part.snapshot()
        for name, value in snapshot.as_dict().items():
            total.bump(name, value)
        for name, histogram in part.histograms().items():
            # Copy via the dict round trip so the merged total never
            # aliases (and later mutates) a stage's own histogram.
            total.install_histogram(name, Histogram.from_dict(histogram.as_dict()))
    return total
