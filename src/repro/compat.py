"""Deprecation machinery for the pipeline-API unification.

The three historical pipeline entry points — the simulator builders
(:mod:`repro.transput.pipeline`), the asyncio runners
(:mod:`repro.aio.pipeline`) and the TCP orchestrator
(:mod:`repro.net.launch`) — are superseded by the single
:class:`repro.api.Pipeline` facade.  The old names keep working as
thin shims, but every call emits an :class:`EdenDeprecationWarning`.

The warning is a *distinct* subclass so the test suite can be gated
hard on it (``filterwarnings = error::repro.compat.
EdenDeprecationWarning`` in ``pyproject.toml``) without tripping over
deprecations raised by the standard library or third-party packages.
"""

from __future__ import annotations

import functools
import warnings
from typing import Any, Callable, TypeVar

__all__ = ["EdenDeprecationWarning", "deprecated", "warn_deprecated"]

_F = TypeVar("_F", bound=Callable[..., Any])


class EdenDeprecationWarning(DeprecationWarning):
    """A deprecated ``repro.*`` entry point was called."""


def warn_deprecated(old: str, new: str) -> None:
    """Emit the standard deprecation message for one legacy call."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        EdenDeprecationWarning,
        stacklevel=3,
    )


def deprecated(old: str, new: str) -> Callable[[_F], _F]:
    """Wrap an implementation function as a legacy-named shim.

    The wrapped callable behaves identically but announces itself as
    ``old`` (deprecated in favour of ``new``) on every call.
    """

    def decorate(func: _F) -> _F:
        @functools.wraps(func)
        def shim(*args: Any, **kwargs: Any) -> Any:
            warn_deprecated(old, new)
            return func(*args, **kwargs)

        shim.__doc__ = (
            f"Deprecated alias for ``{new}``.\n\n"
            f"Calls emit :class:`EdenDeprecationWarning`; behaviour is "
            f"unchanged.\n"
        )
        return shim  # type: ignore[return-value]

    return decorate
