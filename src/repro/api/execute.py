"""Graph execution: one validated DAG, three runtimes.

A validated :class:`~repro.api.graph.Graph` compiles to a sequence of
linear and parallel segments; this module runs that program on any of
the three runtimes through the same segment building blocks the linear
facade uses —

- ``sim``: one fresh deterministic kernel per linear segment
  (:func:`repro.transput.compose_segment`); a parallel block composes
  every branch pipeline into **one shared kernel**, so the branches
  genuinely interleave under the simulator's scheduler (claim C3's
  fan-out is concurrency, not a loop).
- ``aio``: :func:`repro.aio.stream_segment` per linear segment; a
  parallel block drives every branch concurrently under one
  ``asyncio.gather``.
- ``tcp``: :func:`repro.net.launch.plan_linear_fleet` per linear
  segment; a parallel block plans each branch as its own sub-fleet
  (own directory, own ticket space, labelled by branch index — the
  same shape as the sharded fleet) under **one** supervisor.

Splits and joins route records identically everywhere
(:func:`~repro.api.graph.partition_records` /
:func:`~repro.api.graph.join_records`), which is what makes "identical
output on all three runtimes" hold for non-linear topologies, and each
edge's measured invocations line up with
:func:`repro.analysis.cost_model.predict_graph_invocations`.

The knob-validation helpers here (:data:`TCP_ONLY_KNOBS`,
:func:`check_tcp_only_knobs`, :func:`check_flow_policy_runtime`) are
the **single** enforcement point shared with the linear facade —
TCP-only knobs raise the same eager ``ValueError`` whether they arrive
as ``run()`` keywords, per-edge codec settings, or smuggled inside a
:class:`FlowPolicy`.
"""

from __future__ import annotations

import dataclasses
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.transput.filterbase import Transducer
from repro.transput.flow import FlowPolicy
from repro.api.graph import (
    Graph,
    LinearSegment,
    ParallelSegment,
    join_records,
    partition_records,
)

__all__ = [
    "GraphResult",
    "RUNTIMES",
    "TCP_ONLY_KNOBS",
    "check_flow_policy_runtime",
    "check_tcp_only_knobs",
    "run_graph",
]

#: The runtimes a graph (or pipeline) can run on.
RUNTIMES = ("sim", "aio", "tcp")

#: Knobs only the supervised TCP fleet can honour.  This is the single
#: source of truth: the facade's ``run()`` and the graph runner both
#: validate against it, so a TCP-only knob is rejected identically on
#: every path (never a silent no-op).
TCP_ONLY_KNOBS = (
    "timeout", "max_restarts", "faults", "resume", "io_timeout", "trace",
    "workdir", "codec", "pipeline_depth", "adaptive", "placement_policy",
    "flight",
)

#: FlowPolicy fields that encode TCP-only behaviour; setting one and
#: running on sim/aio is the same mistake as passing the run() knob.
_TCP_ONLY_FLOW_FIELDS = ("pipeline_depth", "adaptive")


def check_tcp_only_knobs(runtime: str, given: Mapping[str, Any]) -> None:
    """Reject TCP-only knobs eagerly on the in-process runtimes."""
    if runtime == "tcp":
        return
    offending = sorted(
        name for name, value in given.items()
        if name in TCP_ONLY_KNOBS and value is not None
    )
    if offending:
        raise ValueError(
            f"knob(s) {offending} need the supervised fleet; "
            f"run(runtime='tcp', ...) instead of {runtime!r}"
        )


def check_flow_policy_runtime(runtime: str, policy: FlowPolicy) -> None:
    """Reject a FlowPolicy smuggling TCP-only behaviour onto sim/aio."""
    if runtime == "tcp":
        return
    smuggled = sorted(
        name for name in _TCP_ONLY_FLOW_FIELDS
        if getattr(policy, name) not in (None, False)
    )
    if smuggled:
        raise ValueError(
            f"FlowPolicy knob(s) {smuggled} need the supervised fleet; "
            f"run(runtime='tcp', ...) instead of {runtime!r}"
        )


@dataclass
class GraphResult:
    """What one graph run produced, in runtime-independent shape.

    ``output`` is the sink's collected records.  ``invocations``
    counts every transfer request that crossed a stage boundary,
    summed over all segments — compare against the sum of
    :func:`repro.analysis.cost_model.predict_graph_invocations`.
    ``segment_invocations`` breaks the total down: one entry per
    linear segment, and one entry per parallel block (keyed by its
    split node's name) covering all its branches.
    """

    runtime: str
    graph: str
    output: list[Any]
    invocations: int
    segment_invocations: dict[str, int] = field(default_factory=dict)
    #: Per-branch outputs of each parallel block, keyed by split name,
    #: branches in channel-id order (before the join interleaved or
    #: concatenated them).
    branch_outputs: dict[str, list[list[Any]]] = field(default_factory=dict)
    stats: dict[str, Any] = field(default_factory=dict)
    restarts: int = 0
    supervisor: dict[str, Any] = field(default_factory=dict)
    stderr: list[str] = field(default_factory=list)
    trace_files: list[str] = field(default_factory=list)


def run_graph(
    graph: Graph,
    runtime: str = "sim",
    *,
    flow: FlowPolicy | None = None,
    batch: int | None = None,
    credit_window: int | None = None,
    lookahead: int | None = None,
    placement: Any = None,
    timeout: float | None = None,
    max_restarts: int | None = None,
    faults: Mapping[int, Any] | None = None,
    resume: bool | None = None,
    io_timeout: float | None = None,
    trace: bool | None = None,
    workdir: str | None = None,
    codec: str | None = None,
    pipeline_depth: int | None = None,
    adaptive: bool | None = None,
    flight: Any = None,
) -> GraphResult:
    """Run ``graph`` on ``runtime`` and gather a common result.

    The knob vocabulary is the facade's: flow knobs apply everywhere,
    ``placement`` is simulator-only, and the TCP-only knobs (see
    :data:`TCP_ONLY_KNOBS`) raise eagerly elsewhere — including
    per-edge ``codec`` settings and TCP-only :class:`FlowPolicy`
    fields.  ``faults`` address stage serials of one fleet and are
    only accepted for purely linear graphs.
    """
    if runtime not in RUNTIMES:
        raise ValueError(f"runtime must be one of {RUNTIMES}, got {runtime!r}")
    check_tcp_only_knobs(runtime, {
        "timeout": timeout, "max_restarts": max_restarts, "faults": faults,
        "resume": resume, "io_timeout": io_timeout, "trace": trace,
        "workdir": workdir, "codec": codec, "pipeline_depth": pipeline_depth,
        "adaptive": adaptive, "flight": flight,
    })
    if runtime != "sim" and placement is not None:
        raise ValueError("placement is simulator-only (runtime='sim')")
    if runtime != "tcp":
        edge_knobs = graph.tcp_only_edge_knobs()
        if edge_knobs:
            detail = "; ".join(
                f"{knob} on {', '.join(edges)}"
                for knob, edges in sorted(edge_knobs.items())
            )
            raise ValueError(
                f"edge knob(s) need the supervised fleet ({detail}); "
                f"run(runtime='tcp', ...) instead of {runtime!r}"
            )
    program = graph.program
    if faults and not (program.linear_only() and len(program.segments) == 1):
        raise ValueError(
            "faults address stage serials of one fleet and are ambiguous "
            "across graph segments; only purely linear graphs accept them"
        )

    overrides: dict[str, Any] = {}
    if batch is not None:
        overrides["batch"] = batch
    if credit_window is not None:
        overrides["credit_window"] = credit_window
    if lookahead is not None:
        overrides["lookahead"] = lookahead
    if pipeline_depth is not None:
        overrides["pipeline_depth"] = pipeline_depth
    if adaptive is not None:
        overrides["adaptive"] = adaptive

    def segment_flow(segment: LinearSegment) -> FlowPolicy:
        policy = segment.flow if flow is None else flow
        if overrides:
            policy = dataclasses.replace(policy, **overrides)
        check_flow_policy_runtime(runtime, policy)
        return policy

    if runtime == "sim":
        return _run_sim(graph, segment_flow, placement)
    if runtime == "aio":
        return _run_aio(graph, segment_flow)
    return _run_tcp(
        graph, segment_flow,
        timeout=60.0 if timeout is None else timeout,
        max_restarts=0 if max_restarts is None else max_restarts,
        faults=faults,
        resume=bool(resume),
        io_timeout=io_timeout,
        trace=bool(trace),
        workdir=workdir,
        codec=codec,
        flight=flight,
    )


def _transducers(specs: Sequence[Any]) -> list[Transducer]:
    """Fresh transducer instances for one in-process segment run."""
    from repro.net.stage import load_transducer

    made = []
    for spec in specs:
        if isinstance(spec, Transducer):
            made.append(spec)
        elif isinstance(spec, str):
            made.append(load_transducer(spec))
        else:
            made.append(load_transducer(spec[0], list(spec[1])))
    return made


def _wire_specs(specs: Sequence[Any],
                segment: str) -> list[tuple[str, list[Any]]]:
    """``(spec, args)`` pairs for the TCP runtime."""
    pairs = []
    for spec in specs:
        if isinstance(spec, Transducer):
            raise ValueError(
                f"the tcp runtime cannot ship a built Transducer "
                f"({type(spec).__name__}, segment {segment!r}) across a "
                "process boundary; give a 'module:factory' spec instead"
            )
        if isinstance(spec, str):
            pairs.append((spec, []))
        else:
            pairs.append((spec[0], list(spec[1])))
    return pairs


# -- sim ---------------------------------------------------------------------


def _run_sim(graph: Graph, segment_flow, placement: Any) -> GraphResult:
    from repro.core.kernel import Kernel
    from repro.core.stats import KernelStats
    from repro.obs.registry import snapshot_payload
    from repro.transput.pipeline import compose_segment

    combined = KernelStats()
    per_segment: dict[str, int] = {}
    branch_outputs: dict[str, list[list[Any]]] = {}
    records: list[Any] = list(graph.source)
    total = 0

    def absorb(kernel: Kernel) -> None:
        for name in kernel.stats.names():
            combined.bump(name, kernel.stats.get(name))

    for segment in graph.program.segments:
        if isinstance(segment, LinearSegment):
            kernel = Kernel()
            built = compose_segment(
                kernel, segment.discipline, records,
                _transducers(segment.specs),
                flow=segment_flow(segment), placement=placement,
            )
            records = built.run_to_completion()
            used = built.invocations_used()
            per_segment[segment.name] = used
            total += used
            absorb(kernel)
            continue
        # A parallel block: every branch pipeline composed into ONE
        # kernel, scheduled concurrently — fan-out as the paper means
        # it, not a sequential loop over branches.
        kernel = Kernel()
        buckets = partition_records(records, segment.op, segment.policy,
                                    len(segment.branches))
        built = [
            compose_segment(
                kernel, branch.discipline, bucket,
                _transducers(branch.specs),
                flow=segment_flow(branch), placement=placement,
            )
            for branch, bucket in zip(segment.branches, buckets)
        ]
        start = kernel.stats.snapshot()
        sinks = [sink for pipe in built for sink in pipe.sinks]
        kernel.run(
            max_steps=10_000_000,
            until=lambda: all(sink.done for sink in sinks),
        )
        if not all(sink.done for sink in sinks):  # pragma: no cover
            from repro.core.errors import SchedulerDeadlockError

            raise SchedulerDeadlockError(
                f"parallel block {segment.name!r} quiesced before every "
                "branch sink finished"
            )
        kernel.run(max_steps=10_000_000)  # flush in-flight replies
        used = kernel.stats.snapshot().diff(start)["invocations_sent"]
        per_segment[segment.name] = used
        total += used
        outputs = [list(pipe.sink.collected) for pipe in built]
        branch_outputs[segment.name] = outputs
        records = join_records(outputs, segment.join)
        absorb(kernel)

    return GraphResult(
        runtime="sim",
        graph=graph.name,
        output=records,
        invocations=total,
        segment_invocations=per_segment,
        branch_outputs=branch_outputs,
        stats=snapshot_payload(combined),
    )


# -- aio ---------------------------------------------------------------------


def _aio_kwargs(segment: LinearSegment, policy: FlowPolicy) -> dict[str, Any]:
    kwargs: dict[str, Any] = {"batch": policy.batch}
    if segment.discipline == "readonly":
        kwargs["lookahead"] = policy.lookahead
    elif segment.discipline == "conventional":
        kwargs["capacity"] = policy.buffer_capacity or 16
    return kwargs


def _run_aio(graph: Graph, segment_flow) -> GraphResult:
    import asyncio

    from repro.aio.pipeline import (
        stream_conventional,
        stream_readonly,
        stream_writeonly,
    )
    from repro.core.stats import KernelStats
    from repro.obs.registry import snapshot_payload

    runners = {
        "readonly": stream_readonly,
        "writeonly": stream_writeonly,
        "conventional": stream_conventional,
    }
    combined = KernelStats()
    per_segment: dict[str, int] = {}
    branch_outputs: dict[str, list[list[Any]]] = {}
    records: list[Any] = list(graph.source)
    total = 0

    for segment in graph.program.segments:
        if isinstance(segment, LinearSegment):
            stats = KernelStats()
            policy = segment_flow(segment)
            records = asyncio.run(runners[segment.discipline](
                records, _transducers(segment.specs), stats=stats,
                **_aio_kwargs(segment, policy),
            ))
            used = stats.get("invocations_sent")
            per_segment[segment.name] = used
            total += used
            for name in stats.names():
                combined.bump(name, stats.get(name))
            continue
        # A parallel block: one event loop, every branch a concurrent
        # coroutine chain under asyncio.gather.
        buckets = partition_records(records, segment.op, segment.policy,
                                    len(segment.branches))
        stats = KernelStats()

        async def run_block(block: ParallelSegment,
                            parts: list[list[Any]],
                            into: KernelStats) -> list[list[Any]]:
            return list(await asyncio.gather(*(
                runners[branch.discipline](
                    bucket, _transducers(branch.specs), stats=into,
                    **_aio_kwargs(branch, segment_flow(branch)),
                )
                for branch, bucket in zip(block.branches, parts)
            )))

        outputs = asyncio.run(run_block(segment, buckets, stats))
        used = stats.get("invocations_sent")
        per_segment[segment.name] = used
        total += used
        for name in stats.names():
            combined.bump(name, stats.get(name))
        branch_outputs[segment.name] = outputs
        records = join_records(outputs, segment.join)

    return GraphResult(
        runtime="aio",
        graph=graph.name,
        output=records,
        invocations=total,
        segment_invocations=per_segment,
        branch_outputs=branch_outputs,
        stats=snapshot_payload(combined),
    )


# -- tcp ---------------------------------------------------------------------


def _run_tcp(
    graph: Graph,
    segment_flow,
    timeout: float,
    max_restarts: int,
    faults: Mapping[int, Any] | None,
    resume: bool,
    io_timeout: float | None,
    trace: bool,
    workdir: str | None,
    codec: str | None,
    flight: Any,
) -> GraphResult:
    from repro.net.framing import CODEC_JSON
    from repro.net.launch import plan_linear_fleet, run_fleet
    from repro.net.metrics import merge_stats
    from repro.obs.registry import snapshot_payload

    flight_dir, flight_mode = normalize_flight(flight)
    workdir = workdir or tempfile.mkdtemp(prefix="eden-graph-")
    workpath = pathlib.Path(workdir)
    segments = graph.program.segments
    # A purely linear single-segment graph (every Pipeline) plans into
    # the given workdir itself, keeping the fleet layout — manifest,
    # trace files, flight subdirs — exactly where linear-era tooling
    # expects it.  Multi-segment graphs get one subdirectory per
    # segment, and per-branch subdirectories inside parallel blocks.
    nested = len(segments) > 1

    per_segment: dict[str, int] = {}
    branch_outputs: dict[str, list[list[Any]]] = {}
    records: list[Any] = list(graph.source)
    total = 0
    restarts = 0
    all_stats = []
    supervisor: dict[str, Any] = {}
    stderr: list[str] = []
    trace_files: list[str] = []

    def seg_dir(name: str) -> str:
        return str(workpath / name) if nested else str(workpath)

    def seg_flight(name: str) -> str | None:
        if flight_dir is None:
            return None
        return (str(pathlib.Path(flight_dir) / name) if nested
                else flight_dir)

    def absorb(result: Any) -> int:
        nonlocal restarts
        all_stats.append(result.totals)
        restarts += result.restarts
        for key, value in result.supervisor.items():
            supervisor[key] = supervisor.get(key, 0) + value \
                if isinstance(value, (int, float)) else value
        stderr.extend(result.stderr)
        trace_files.extend(result.trace_files)
        return result.invocations

    for segment in segments:
        if isinstance(segment, LinearSegment):
            plans = plan_linear_fleet(
                segment.discipline,
                _wire_specs(segment.specs, segment.name),
                seg_dir(segment.name),
                source_items=records,
                flow=segment_flow(segment),
                trace=trace,
                faults=faults,
                resume=resume,
                io_timeout=io_timeout,
                codec=segment.codec or codec or CODEC_JSON,
                flight_dir=seg_flight(segment.name),
                flight_mode=flight_mode,
            )
            result = run_fleet(plans, timeout=timeout,
                               max_restarts=max_restarts)
            used = absorb(result)
            per_segment[segment.name] = used
            total += used
            records = list(result.output)
            continue
        # A parallel block: each branch is its own sub-fleet — own
        # directory, own ticket space, labelled by branch index like a
        # shard — all under ONE supervisor run.
        buckets = partition_records(records, segment.op, segment.policy,
                                    len(segment.branches))
        plans = []
        for index, (branch, bucket) in enumerate(
                zip(segment.branches, buckets)):
            plans.extend(plan_linear_fleet(
                branch.discipline,
                _wire_specs(branch.specs, branch.name),
                str(workpath / segment.name / f"branch-{index}"),
                source_items=bucket,
                flow=segment_flow(branch),
                ticket_space=index,
                trace=trace,
                resume=resume,
                io_timeout=io_timeout,
                codec=branch.codec or codec or CODEC_JSON,
                shard=index,
                flight_dir=(
                    str(pathlib.Path(flight_dir) / segment.name
                        / f"branch-{index}")
                    if flight_dir is not None else None),
                flight_mode=flight_mode,
            ))
        result = run_fleet(plans, timeout=timeout,
                           max_restarts=max_restarts)
        used = absorb(result)
        per_segment[segment.name] = used
        total += used
        # run_fleet gathers sink outputs by shard label — here, by
        # branch index — so this is branch order, i.e. channel order.
        outputs = [list(lines) for lines in result.shard_outputs]
        branch_outputs[segment.name] = outputs
        records = join_records(outputs, segment.join)

    return GraphResult(
        runtime="tcp",
        graph=graph.name,
        output=records,
        invocations=total,
        segment_invocations=per_segment,
        branch_outputs=branch_outputs,
        stats=snapshot_payload(merge_stats(*all_stats)),
        restarts=restarts,
        supervisor=supervisor,
        stderr=stderr,
        trace_files=trace_files,
    )


def normalize_flight(flight: Any) -> tuple[str | None, str]:
    """Normalise the ``flight`` knob to ``(directory, mode)``."""
    from repro.obs.flight import FLIGHT_MODES, MODE_FULL

    if flight is None:
        return None, MODE_FULL
    if isinstance(flight, str):
        return flight, MODE_FULL
    if (isinstance(flight, (tuple, list)) and len(flight) == 2
            and isinstance(flight[0], str)):
        directory, mode = flight
        if mode not in FLIGHT_MODES:
            raise ValueError(
                f"flight mode must be one of {sorted(FLIGHT_MODES)}, "
                f"got {mode!r}"
            )
        return directory, mode
    raise ValueError(
        f"flight must be a directory path or a (directory, mode) "
        f"pair, got {flight!r}"
    )
