"""Validated dataflow graphs: the paper's streams beyond the line.

Claim C3 proves fan-in and fan-out are symmetric under the asymmetric
discipline, and that *channel identifiers* restore fan-out where the
naive read-only scheme loses it.  This module makes that result usable:
a :class:`Graph` is a DAG of stage specs whose edges carry per-edge
knobs (discipline, batch, lookahead, codec, channel id), built fluently
with :class:`GraphBuilder` combinators —

- ``chain(...)`` — the linear pipeline (the degenerate DAG);
- ``scatter(*branches, policy=...)`` — partition the stream across
  parallel branches (``"hash"`` — the stable content hash shards use —
  or ``"round_robin"``);
- ``broadcast(*branches)`` — copy the whole stream to every branch;
- ``gather()`` — close a parallel block, concatenating branch outputs
  in branch (channel-id) order;
- ``merge()`` — close a parallel block, interleaving branch outputs
  round-robin (one record per live branch per round, deterministic).

Validation is *eager*: cycles, dangling edges, duplicate node names,
fan-out without channel identifiers, discipline mismatches inside one
segment, and unsatisfiable buffer bounds all raise
:class:`GraphError` — with a positioned message naming the node or
edge — at build time, never at run time.  A validated graph compiles
to a :class:`GraphProgram` of linear and parallel segments that
:mod:`repro.api.execute` runs on any of the three runtimes, and whose
per-edge invocation costs :func:`repro.analysis.cost_model.
predict_graph_invocations` predicts exactly.

Graphs of pure ``"module:factory"`` stage specs serialize to a JSON
spec (:meth:`Graph.to_spec` / :meth:`Graph.from_spec`) so the same
graph object can cross a process boundary, exactly as linear pipeline
specs already do.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.transput.filterbase import Transducer
from repro.transput.flow import FlowPolicy, shard_of
from repro.transput.pipeline import DISCIPLINES

__all__ = [
    "Graph",
    "GraphBuilder",
    "GraphEdge",
    "GraphError",
    "GraphNode",
    "GraphProgram",
    "LinearSegment",
    "ParallelSegment",
    "JOIN_OPS",
    "NODE_KINDS",
    "SCATTER_POLICIES",
    "SPLIT_OPS",
]

#: The kinds a graph node can be.
NODE_KINDS = ("source", "stage", "split", "join", "sink")
#: Fan-out flavours a split node can carry.
SPLIT_OPS = ("scatter", "broadcast")
#: Fan-in flavours a join node can carry.
JOIN_OPS = ("gather", "merge")
#: How a scatter split routes records to branches.
SCATTER_POLICIES = ("hash", "round_robin")

#: Edge knobs that only the TCP runtime can honour (enforced uniformly
#: with the facade's ``_TCP_ONLY`` run knobs).
EDGE_TCP_ONLY = ("codec",)


class GraphError(ValueError):
    """An invalid graph, rejected at build time.

    ``where`` positions the failure — ``"node 'x'"``, ``"edge a->b"``
    or ``"segment 'seg-1'"`` — and is prefixed to the message so the
    offending element is always named.
    """

    def __init__(self, message: str, where: str | None = None) -> None:
        self.where = where
        super().__init__(f"{where}: {message}" if where else message)


def check_stage_spec(stage: Any, where: str | None = None) -> None:
    """A stage is a Transducer, a ``'module:factory'`` string, or a
    ``(spec, args)`` pair — the same vocabulary the facade accepts."""
    if isinstance(stage, Transducer):
        return
    if isinstance(stage, str):
        if ":" not in stage:
            raise GraphError(
                f"stage spec must be 'module:factory', got {stage!r}", where
            )
        return
    if (isinstance(stage, (tuple, list)) and len(stage) == 2
            and isinstance(stage[0], str)):
        return
    raise GraphError(
        f"each stage must be a Transducer, a 'module:factory' spec, or "
        f"a (spec, args) pair; got {stage!r}", where
    )


@dataclass(frozen=True)
class GraphNode:
    """One vertex: the source, the sink, a stage, or a split/join.

    ``spec`` (stage nodes) is a transducer spec; ``op`` distinguishes
    scatter/broadcast on splits and gather/merge on joins; ``policy``
    is the scatter routing policy.
    """

    name: str
    kind: str
    spec: Any = None
    op: str | None = None
    policy: str | None = None

    def check(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise GraphError(f"node name must be a non-empty string, "
                             f"got {self.name!r}")
        where = f"node {self.name!r}"
        if self.kind not in NODE_KINDS:
            raise GraphError(
                f"kind must be one of {NODE_KINDS}, got {self.kind!r}", where
            )
        if self.kind == "stage":
            check_stage_spec(self.spec, where)
        elif self.spec is not None:
            raise GraphError(
                f"only stage nodes carry a spec, got kind {self.kind!r}", where
            )
        if self.kind == "split":
            if self.op not in SPLIT_OPS:
                raise GraphError(
                    f"split op must be one of {SPLIT_OPS}, got {self.op!r}",
                    where,
                )
            if self.op == "scatter" and self.policy not in SCATTER_POLICIES:
                raise GraphError(
                    f"scatter policy must be one of {SCATTER_POLICIES}, "
                    f"got {self.policy!r}", where,
                )
        elif self.kind == "join":
            if self.op not in JOIN_OPS:
                raise GraphError(
                    f"join op must be one of {JOIN_OPS}, got {self.op!r}",
                    where,
                )
        elif self.op is not None:
            raise GraphError(
                f"only split/join nodes carry an op, got kind {self.kind!r}",
                where,
            )


@dataclass(frozen=True)
class GraphEdge:
    """One directed stream between two nodes, with per-edge knobs.

    Every knob is optional; ``None`` inherits the graph default (its
    ``discipline`` / ``flow`` policy).  ``channel`` is the C3 channel
    identifier distinguishing a split's out-edges; ``codec`` is
    TCP-only (rejected eagerly on the other runtimes, same as the
    facade's ``_TCP_ONLY`` knobs).
    """

    src: str
    dst: str
    discipline: str | None = None
    batch: int | None = None
    lookahead: int | None = None
    credit_window: int | None = None
    buffer_capacity: int | None = None
    codec: str | None = None
    channel: int | None = None

    @property
    def where(self) -> str:
        return f"edge {self.src}->{self.dst}"

    def check(self) -> None:
        if self.discipline is not None and self.discipline not in DISCIPLINES:
            raise GraphError(
                f"discipline must be one of {DISCIPLINES}, "
                f"got {self.discipline!r}", self.where,
            )
        for knob, floor in (("batch", 1), ("lookahead", 0),
                            ("credit_window", 1), ("buffer_capacity", 1),
                            ("channel", 0)):
            value = getattr(self, knob)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < floor:
                raise GraphError(
                    f"{knob} must be an integer >= {floor}, got {value!r}",
                    self.where,
                )
        if self.codec is not None:
            from repro.net.framing import CODECS

            if self.codec not in CODECS:
                raise GraphError(
                    f"codec must be one of {sorted(CODECS)}, "
                    f"got {self.codec!r}", self.where,
                )

    def knobs(self) -> dict[str, Any]:
        """The explicitly-set per-edge knobs, by name."""
        return {
            name: getattr(self, name)
            for name in ("discipline", "batch", "lookahead", "credit_window",
                         "buffer_capacity", "codec", "channel")
            if getattr(self, name) is not None
        }


@dataclass
class LinearSegment:
    """A maximal linear run: boundary-to-boundary stages and edges.

    ``specs`` are the stage specs in order (possibly empty — a bare
    boundary-to-boundary hop); ``edges`` are the ``len(specs) + 1``
    graph edges the run covers; the resolved ``discipline`` / ``flow``
    / ``codec`` apply to every hop (validation enforced they agree).
    """

    name: str
    discipline: str
    specs: list[Any]
    edges: list[GraphEdge]
    flow: FlowPolicy
    codec: str | None = None

    @property
    def hops(self) -> int:
        return len(self.edges)


@dataclass
class ParallelSegment:
    """A split/join block: N parallel linear branches between them.

    ``op`` is the split flavour, ``policy`` its scatter routing,
    ``join`` the fan-in flavour; ``branches`` are in channel-id order.
    """

    name: str
    op: str
    policy: str | None
    join: str
    branches: list[LinearSegment]


@dataclass
class GraphProgram:
    """A validated graph compiled to an executable segment sequence."""

    segments: list[LinearSegment | ParallelSegment]

    def linear_only(self) -> bool:
        return all(isinstance(seg, LinearSegment) for seg in self.segments)

    def iter_segments(self) -> Iterator[LinearSegment]:
        """Every linear segment, branches included, in execution order."""
        for segment in self.segments:
            if isinstance(segment, LinearSegment):
                yield segment
            else:
                yield from segment.branches


class Graph:
    """A validated dataflow DAG, runnable on all three runtimes.

    Args:
        nodes: the vertices (exactly one ``source`` and one ``sink``).
        edges: the directed streams between them.
        source: the records the source node streams (finite; the TCP
            runtime additionally needs them JSON-encodable).
        discipline: default edge discipline (per-edge overrides
            allowed, segment-uniform).
        flow: default :class:`FlowPolicy` (per-edge knobs override).
        name: for error messages and result labels.

    Validation runs in the constructor — an invalid topology never
    yields a Graph object.  Most callers build via
    :class:`GraphBuilder` or :meth:`Graph.linear` rather than spelling
    nodes and edges out.
    """

    def __init__(
        self,
        nodes: Sequence[GraphNode],
        edges: Sequence[GraphEdge],
        source: Sequence[Any] | None = None,
        discipline: str = "readonly",
        flow: FlowPolicy | None = None,
        name: str = "graph",
    ) -> None:
        if discipline not in DISCIPLINES:
            raise GraphError(
                f"discipline must be one of {DISCIPLINES}, got {discipline!r}"
            )
        if source is None:
            raise GraphError("source is required (a finite record sequence)")
        self.name = name
        self.nodes = list(nodes)
        self.edges = list(edges)
        self.source = list(source)
        self.discipline = discipline
        self.flow = flow or FlowPolicy()
        self.program = self._validate()

    # -- construction shortcuts ---------------------------------------------

    @classmethod
    def linear(
        cls,
        stages: Sequence[Any],
        source: Sequence[Any] | None = None,
        discipline: str = "readonly",
        flow: FlowPolicy | None = None,
        name: str = "graph",
    ) -> "Graph":
        """The degenerate single-path DAG — what ``Pipeline`` compiles to."""
        builder = GraphBuilder(source=source, discipline=discipline,
                               flow=flow, name=name)
        builder.chain(*stages)
        return builder.build()

    # -- validation ---------------------------------------------------------

    def _validate(self) -> GraphProgram:
        by_name: dict[str, GraphNode] = {}
        for node in self.nodes:
            node.check()
            if node.name in by_name:
                raise GraphError("duplicate node name",
                                 f"node {node.name!r}")
            by_name[node.name] = node

        outs: dict[str, list[GraphEdge]] = {n: [] for n in by_name}
        ins: dict[str, list[GraphEdge]] = {n: [] for n in by_name}
        for edge in self.edges:
            edge.check()
            for end in (edge.src, edge.dst):
                if end not in by_name:
                    raise GraphError(
                        f"unknown node {end!r} (dangling edge)", edge.where
                    )
            outs[edge.src].append(edge)
            ins[edge.dst].append(edge)

        sources = [n for n in self.nodes if n.kind == "source"]
        sinks = [n for n in self.nodes if n.kind == "sink"]
        if len(sources) != 1:
            raise GraphError(
                f"a graph needs exactly one source node, got {len(sources)}"
            )
        if len(sinks) != 1:
            raise GraphError(
                f"a graph needs exactly one sink node, got {len(sinks)}"
            )
        self._check_degrees(by_name, outs, ins)
        self._check_acyclic(by_name, outs)
        self._check_reachable(sources[0], sinks[0], outs, ins)
        program = self._compile(sources[0], sinks[0], by_name, outs)
        self._check_segments(program)
        return program

    def _check_degrees(self, by_name, outs, ins) -> None:
        for node in self.nodes:
            where = f"node {node.name!r}"
            n_out, n_in = len(outs[node.name]), len(ins[node.name])
            if node.kind == "source":
                if n_in:
                    raise GraphError("the source cannot have in-edges", where)
                if n_out != 1:
                    raise GraphError(
                        f"the source needs exactly one out-edge (wrap "
                        f"fan-out in a split node), got {n_out}", where,
                    )
            elif node.kind == "sink":
                if n_out:
                    raise GraphError("the sink cannot have out-edges", where)
                if n_in != 1:
                    raise GraphError(
                        f"the sink needs exactly one in-edge (close "
                        f"fan-in with a join node), got {n_in}", where,
                    )
            elif node.kind == "stage":
                if n_in != 1:
                    raise GraphError(
                        f"fan-in at a stage needs a join node "
                        f"(gather/merge), got {n_in} in-edges", where,
                    )
                if n_out > 1:
                    channels = [e.channel for e in outs[node.name]]
                    if any(c is None for c in channels):
                        raise GraphError(
                            "fan-out under the readonly discipline needs "
                            "channel identifiers (paper claim C3): every "
                            "out-edge must carry a distinct channel=, or "
                            "use a scatter/broadcast split node, which "
                            "assigns them", where,
                        )
                    raise GraphError(
                        "multi-channel stage fan-out does not execute "
                        "directly; route it through a scatter/broadcast "
                        "split node (same channel-id semantics)", where,
                    )
                if n_out != 1:
                    raise GraphError("a stage needs exactly one out-edge "
                                     "(dangling port)", where)
            elif node.kind == "split":
                if n_in != 1:
                    raise GraphError(
                        f"a split needs exactly one in-edge, got {n_in}",
                        where,
                    )
                if n_out < 2:
                    raise GraphError(
                        f"a split needs at least 2 out-edges "
                        f"(branches), got {n_out}", where,
                    )
                channels = [e.channel for e in outs[node.name]]
                explicit = [c for c in channels if c is not None]
                if explicit and len(explicit) != len(channels):
                    raise GraphError(
                        "either give every split out-edge a channel id "
                        "or none (auto-assigned positionally)", where,
                    )
                if len(set(explicit)) != len(explicit):
                    dupes = sorted({c for c in explicit
                                    if explicit.count(c) > 1})
                    raise GraphError(
                        f"duplicate channel id(s) {dupes} on split "
                        f"out-edges — channel identifiers must be "
                        f"distinct to restore fan-out (C3)", where,
                    )
            elif node.kind == "join":
                if n_in < 2:
                    raise GraphError(
                        f"a join needs at least 2 in-edges, got {n_in}",
                        where,
                    )
                if n_out != 1:
                    raise GraphError(
                        f"a join needs exactly one out-edge, got {n_out}",
                        where,
                    )

    def _check_acyclic(self, by_name, outs) -> None:
        indegree = {name: 0 for name in by_name}
        for edge in self.edges:
            indegree[edge.dst] += 1
        ready = [name for name, d in indegree.items() if d == 0]
        seen = 0
        while ready:
            name = ready.pop()
            seen += 1
            for edge in outs[name]:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        if seen != len(by_name):
            cycle = self._find_cycle(by_name, outs)
            raise GraphError(
                "cycle: " + " -> ".join(cycle) + " (streams flow one way; "
                "a feedback loop needs its own pipeline)"
            )

    def _find_cycle(self, by_name, outs) -> list[str]:
        state: dict[str, int] = {}
        stack: list[str] = []

        def visit(name: str) -> list[str] | None:
            state[name] = 1
            stack.append(name)
            for edge in outs[name]:
                if state.get(edge.dst, 0) == 1:
                    return stack[stack.index(edge.dst):] + [edge.dst]
                if state.get(edge.dst, 0) == 0:
                    found = visit(edge.dst)
                    if found:
                        return found
            stack.pop()
            state[name] = 2
            return None

        for name in by_name:
            if state.get(name, 0) == 0:
                found = visit(name)
                if found:
                    return found
        return ["<unlocated>"]  # pragma: no cover — only on logic error

    def _check_reachable(self, source, sink, outs, ins) -> None:
        def flood(start: str, adjacency) -> set[str]:
            seen = {start}
            frontier = [start]
            while frontier:
                for edge in adjacency[frontier.pop()]:
                    nxt = edge.dst if adjacency is outs else edge.src
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            return seen

        forward = flood(source.name, outs)
        backward = flood(sink.name, ins)
        for node in self.nodes:
            if node.name not in forward:
                raise GraphError(
                    "unreachable from the source (dangling port)",
                    f"node {node.name!r}",
                )
            if node.name not in backward:
                raise GraphError(
                    "cannot reach the sink (dangling port)",
                    f"node {node.name!r}",
                )

    # -- structure compilation ----------------------------------------------

    def _compile(self, source, sink, by_name, outs) -> GraphProgram:
        """Walk source -> sink, cutting the DAG into segments.

        The executable shape is a sequence of linear runs and
        split/join blocks whose branches are themselves linear; a
        branch running into another split is a *nested* block, which
        is rejected here — at build time — rather than failing in
        whichever runtime first tried to schedule it.
        """
        segments: list[LinearSegment | ParallelSegment] = []
        counter = 0

        def branch_ordered(split: GraphNode) -> list[GraphEdge]:
            branch_edges = outs[split.name]
            if all(e.channel is not None for e in branch_edges):
                return sorted(branch_edges, key=lambda e: e.channel)
            return list(branch_edges)

        def walk_linear(edge: GraphEdge, label: str) -> tuple[
                list[Any], list[GraphEdge], GraphNode]:
            """Follow stage nodes from ``edge`` to the next boundary."""
            specs: list[Any] = []
            edges = [edge]
            node = by_name[edge.dst]
            while node.kind == "stage":
                specs.append(node.spec)
                edge = outs[node.name][0]
                edges.append(edge)
                node = by_name[edge.dst]
            return specs, edges, node

        cursor = outs[source.name][0]
        while True:
            specs, edges, boundary = walk_linear(
                cursor, f"seg-{counter}")
            segments.append(self._linear_segment(
                f"seg-{counter}", specs, edges))
            counter += 1
            if boundary.kind == "sink":
                break
            if boundary.kind == "join":
                raise GraphError(
                    "join without a matching split on this path",
                    f"node {boundary.name!r}",
                )
            # boundary is a split: walk each branch to a common join.
            branches: list[LinearSegment] = []
            join_node: GraphNode | None = None
            for index, branch_edge in enumerate(branch_ordered(boundary)):
                b_specs, b_edges, b_end = walk_linear(
                    branch_edge, f"{boundary.name}.b{index}")
                if b_end.kind == "split":
                    raise GraphError(
                        f"nested parallel blocks are not supported: close "
                        f"split {boundary.name!r} with a gather/merge "
                        f"before opening {b_end.name!r}",
                        f"node {b_end.name!r}",
                    )
                if b_end.kind != "join":
                    raise GraphError(
                        f"branch {index} of split {boundary.name!r} "
                        f"reaches {b_end.kind} {b_end.name!r} without a "
                        f"join (gather/merge)", f"node {boundary.name!r}",
                    )
                if join_node is None:
                    join_node = b_end
                elif b_end.name != join_node.name:
                    raise GraphError(
                        f"branches of split {boundary.name!r} reconverge "
                        f"at different joins ({join_node.name!r} vs "
                        f"{b_end.name!r})", f"node {boundary.name!r}",
                    )
                branches.append(self._linear_segment(
                    f"{boundary.name}.b{index}", b_specs, b_edges))
            assert join_node is not None
            segments.append(ParallelSegment(
                name=boundary.name,
                op=boundary.op or "scatter",
                policy=boundary.policy,
                join=join_node.op or "gather",
                branches=branches,
            ))
            cursor = outs[join_node.name][0]
        return GraphProgram(segments=segments)

    def _linear_segment(self, name: str, specs: list[Any],
                        edges: list[GraphEdge]) -> LinearSegment:
        """Resolve one segment's edge knobs, enforcing agreement."""
        where = f"segment {name!r}"

        def resolve(knob: str, default: Any) -> Any:
            chosen: Any = None
            chosen_edge: GraphEdge | None = None
            for edge in edges:
                value = getattr(edge, knob)
                if value is None:
                    continue
                if chosen is None:
                    chosen, chosen_edge = value, edge
                elif value != chosen:
                    raise GraphError(
                        f"{knob} mismatch: {chosen_edge.where} says "
                        f"{chosen!r} but {edge.where} says {value!r} — "
                        f"edges of one segment share a wire; split the "
                        f"chain with scatter/gather to vary {knob}",
                        where,
                    )
            return default if chosen is None else chosen

        discipline = resolve("discipline", self.discipline)
        flow = self.flow
        overrides = {
            knob: value for knob in
            ("batch", "lookahead", "credit_window", "buffer_capacity")
            if (value := resolve(knob, None)) is not None
        }
        if overrides:
            flow = dataclasses.replace(flow, **overrides)
        return LinearSegment(
            name=name,
            discipline=discipline,
            specs=specs,
            edges=edges,
            flow=flow,
            codec=resolve("codec", None),
        )

    def _check_segments(self, program: GraphProgram) -> None:
        """Cross-knob feasibility: reject unsatisfiable configurations."""
        for segment in program.iter_segments():
            where = f"segment {segment.name!r}"
            flow = segment.flow
            if segment.discipline == "conventional" and \
                    flow.buffer_capacity is not None and \
                    flow.buffer_capacity < flow.batch:
                raise GraphError(
                    f"unsatisfiable buffer bound: conventional pipes of "
                    f"capacity {flow.buffer_capacity} can never hold one "
                    f"batch of {flow.batch} — raise buffer_capacity or "
                    f"shrink batch", where,
                )
            if segment.discipline != "conventional" and \
                    any(e.buffer_capacity is not None for e in segment.edges):
                raise GraphError(
                    "buffer_capacity is a conventional-discipline knob "
                    "(asymmetric edges have no passive buffer)", where,
                )

    # -- topology helpers ----------------------------------------------------

    def tcp_only_edge_knobs(self) -> dict[str, list[str]]:
        """Which TCP-only knobs appear on which edges (for eager
        rejection when the run targets sim/aio)."""
        found: dict[str, list[str]] = {}
        for edge in self.edges:
            for knob in EDGE_TCP_ONLY:
                if getattr(edge, knob) is not None:
                    found.setdefault(knob, []).append(edge.where)
        return found

    def edge_flow(self, records: Sequence[Any] | None = None) \
            -> list[tuple[GraphEdge, "LinearSegment", int]]:
        """How many records cross each edge, assuming record-preserving
        stages (the C1/C2 accounting assumption).

        Scatter bucket sizes are computed by actually routing the
        records (hash partitions are data-dependent); broadcast copies
        the full count to every branch.  Returns ``(edge, segment,
        record_count)`` triples in execution order — the input
        :func:`repro.analysis.cost_model.predict_graph_invocations`
        turns into per-edge invocation predictions.
        """
        records = self.source if records is None else list(records)
        flows: list[tuple[GraphEdge, LinearSegment, int]] = []
        count_in: list[Any] | int = list(records)

        def as_count(value: list[Any] | int) -> int:
            return value if isinstance(value, int) else len(value)

        for segment in self.program.segments:
            if isinstance(segment, LinearSegment):
                for edge in segment.edges:
                    flows.append((edge, segment, as_count(count_in)))
                continue
            # A parallel block: route the concrete records (hash needs
            # their content), then sum branch outputs for the join.
            items = (count_in if isinstance(count_in, list)
                     else list(range(count_in)))
            buckets = partition_records(items, segment.op, segment.policy,
                                        len(segment.branches))
            total = 0
            for branch, bucket in zip(segment.branches, buckets):
                for edge in branch.edges:
                    flows.append((edge, branch, len(bucket)))
                total += len(bucket)
            count_in = total
        return flows

    # -- serialization -------------------------------------------------------

    def to_spec(self) -> dict[str, Any]:
        """A JSON-portable spec; the inverse of :meth:`from_spec`.

        Graphs holding built ``Transducer`` instances do not serialize
        (same boundary as the TCP runtime): express stages as
        ``'module:factory'`` specs to cross process boundaries.
        """
        nodes = []
        for node in self.nodes:
            if isinstance(node.spec, Transducer):
                raise GraphError(
                    "a built Transducer does not serialize; give a "
                    "'module:factory' spec", f"node {node.name!r}",
                )
            entry: dict[str, Any] = {"name": node.name, "kind": node.kind}
            if node.spec is not None:
                spec = node.spec
                entry["spec"] = (spec if isinstance(spec, str)
                                 else [spec[0], list(spec[1])])
            if node.op is not None:
                entry["op"] = node.op
            if node.policy is not None:
                entry["policy"] = node.policy
            nodes.append(entry)
        edges = []
        for edge in self.edges:
            entry = {"src": edge.src, "dst": edge.dst}
            entry.update(edge.knobs())
            edges.append(entry)
        flow = {
            f.name: getattr(self.flow, f.name)
            for f in dataclasses.fields(self.flow)
            if getattr(self.flow, f.name) != f.default
        }
        return {
            "name": self.name,
            "discipline": self.discipline,
            "source": list(self.source),
            "flow": flow,
            "nodes": nodes,
            "edges": edges,
        }

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "Graph":
        """Rebuild (and re-validate) a graph from :meth:`to_spec` output."""
        try:
            nodes = [
                GraphNode(
                    name=entry["name"],
                    kind=entry["kind"],
                    spec=(tuple([entry["spec"][0], tuple(entry["spec"][1])])
                          if isinstance(entry.get("spec"), (list, tuple))
                          else entry.get("spec")),
                    op=entry.get("op"),
                    policy=entry.get("policy"),
                )
                for entry in spec["nodes"]
            ]
            edges = [GraphEdge(**entry) for entry in spec["edges"]]
            flow = FlowPolicy(**spec.get("flow", {}))
        except (KeyError, TypeError) as exc:
            raise GraphError(f"malformed graph spec: {exc}") from exc
        return cls(
            nodes=nodes,
            edges=edges,
            source=spec.get("source"),
            discipline=spec.get("discipline", "readonly"),
            flow=flow,
            name=spec.get("name", "graph"),
        )

    # -- running -------------------------------------------------------------

    def run(self, runtime: str = "sim", **knobs: Any) -> Any:
        """Execute on ``runtime`` (``"sim"``/``"aio"``/``"tcp"``) and
        return a :class:`repro.api.execute.GraphResult`.

        Accepts the facade's harmonised knob vocabulary; TCP-only
        knobs are rejected eagerly on the other runtimes — see
        :func:`repro.api.execute.run_graph`.
        """
        from repro.api.execute import run_graph

        return run_graph(self, runtime, **knobs)

    def predict_invocations(self, records: Sequence[Any] | None = None):
        """Per-edge C1/C2 predictions — convenience for
        :func:`repro.analysis.cost_model.predict_graph_invocations`."""
        from repro.analysis.cost_model import predict_graph_invocations

        return predict_graph_invocations(self, records)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (f"Graph({self.name!r}, nodes={len(self.nodes)}, "
                f"edges={len(self.edges)}, discipline={self.discipline!r})")


# ---------------------------------------------------------------------------
# Stream routing: how splits and joins move records.  The executors on
# all three runtimes call these same functions, which is what makes
# "identical output on sim, aio, and tcp" hold for non-linear graphs.
# ---------------------------------------------------------------------------


def partition_records(records: Sequence[Any], op: str, policy: str | None,
                      branches: int) -> list[list[Any]]:
    """Route records to branches: scatter partitions, broadcast copies."""
    if op == "broadcast":
        return [list(records) for _ in range(branches)]
    buckets: list[list[Any]] = [[] for _ in range(branches)]
    if policy == "round_robin":
        for index, record in enumerate(records):
            buckets[index % branches].append(record)
    else:  # "hash" — the stable content hash the sharded fleets use.
        for record in records:
            buckets[shard_of(record, branches)].append(record)
    return buckets


def join_records(branch_outputs: Sequence[Sequence[Any]], op: str) \
        -> list[Any]:
    """Fan the branch outputs back in: gather concatenates in branch
    (channel-id) order; merge interleaves round-robin, one record per
    live branch per round — both deterministic."""
    if op == "gather":
        return [record for lines in branch_outputs for record in lines]
    queues = [list(lines) for lines in branch_outputs]
    merged: list[Any] = []
    cursor = 0
    while any(queues):
        queue = queues[cursor % len(queues)]
        if queue:
            merged.append(queue.pop(0))
        cursor += 1
        # Drop exhausted queues so the round-robin stays fair.
        if cursor % len(queues) == 0:
            queues = [q for q in queues if q]
            cursor = 0
    return merged


# ---------------------------------------------------------------------------
# The fluent builder.
# ---------------------------------------------------------------------------


class GraphBuilder:
    """Build a :class:`Graph` fluently from combinators.

    ::

        graph = (GraphBuilder(source=records, discipline="readonly")
                 .chain("repro.filters:strip_whitespace")
                 .scatter(["repro.filters:upper_case"],
                          ["repro.filters:lower_case"], policy="hash")
                 .gather()
                 .chain("repro.transput:identity_transducer")
                 .build())

    ``chain`` appends linear stages; ``scatter``/``broadcast`` open a
    parallel block whose branches are linear stage lists; ``gather``/
    ``merge`` close it.  Keyword knobs on any combinator land on the
    edges that call creates (``batch=``, ``discipline=``, ...).
    ``build()`` validates and returns the immutable Graph.
    """

    def __init__(
        self,
        source: Sequence[Any] | None = None,
        discipline: str = "readonly",
        flow: FlowPolicy | None = None,
        name: str = "graph",
    ) -> None:
        self._source = source
        self._discipline = discipline
        self._flow = flow
        self._name = name
        self._nodes: list[GraphNode] = [GraphNode("source", "source")]
        self._edges: list[GraphEdge] = []
        self._tail = "source"       # node awaiting its out-edge
        self._stage_count = 0
        self._block_count = 0
        self._pending: dict[str, Any] | None = None  # open parallel block

    # -- combinators --------------------------------------------------------

    def chain(self, *stages: Any, **edge_knobs: Any) -> "GraphBuilder":
        """Append linear stages (the degenerate combinator)."""
        self._no_open_block("chain()")
        for stage in stages:
            name = self._stage_name()
            self._nodes.append(GraphNode(name, "stage", spec=stage))
            self._edges.append(GraphEdge(self._tail, name, **edge_knobs))
            self._tail = name
        return self

    def scatter(self, *branches: Sequence[Any], policy: str = "hash",
                **edge_knobs: Any) -> "GraphBuilder":
        """Open a parallel block partitioning the stream across
        ``branches`` (each a linear list of stage specs)."""
        return self._split("scatter", branches, policy, edge_knobs)

    def broadcast(self, *branches: Sequence[Any],
                  **edge_knobs: Any) -> "GraphBuilder":
        """Open a parallel block copying the stream to every branch."""
        return self._split("broadcast", branches, None, edge_knobs)

    def gather(self, **edge_knobs: Any) -> "GraphBuilder":
        """Close the open block, concatenating branches in channel order."""
        return self._join("gather", edge_knobs)

    def merge(self, **edge_knobs: Any) -> "GraphBuilder":
        """Close the open block, interleaving branches round-robin."""
        return self._join("merge", edge_knobs)

    def build(self) -> Graph:
        """Validate and freeze.  The builder stays reusable afterwards
        only for reading; call sites should treat it as consumed."""
        if self._pending is not None:
            raise GraphError(
                f"unclosed {self._pending['op']}: close the parallel "
                f"block with gather() or merge() before build()",
                f"node {self._pending['split']!r}",
            )
        nodes = self._nodes + [GraphNode("sink", "sink")]
        edges = self._edges + [GraphEdge(self._tail, "sink")]
        return Graph(
            nodes=nodes,
            edges=edges,
            source=self._source,
            discipline=self._discipline,
            flow=self._flow,
            name=self._name,
        )

    # -- plumbing -----------------------------------------------------------

    def _stage_name(self) -> str:
        self._stage_count += 1
        return f"stage-{self._stage_count}"

    def _no_open_block(self, what: str) -> None:
        if self._pending is not None:
            raise GraphError(
                f"{what} inside an open {self._pending['op']} block: "
                f"close it with gather() or merge() first",
                f"node {self._pending['split']!r}",
            )

    def _split(self, op: str, branches: Sequence[Sequence[Any]],
               policy: str | None, edge_knobs: dict[str, Any]) \
            -> "GraphBuilder":
        self._no_open_block(f"{op}()")
        if len(branches) < 2:
            raise GraphError(
                f"{op}() needs at least 2 branches, got {len(branches)}"
            )
        self._block_count += 1
        split_name = f"{op}-{self._block_count}"
        self._nodes.append(GraphNode(split_name, "split", op=op,
                                     policy=policy))
        self._edges.append(GraphEdge(self._tail, split_name))
        branch_tails: list[str] = []
        for channel, branch in enumerate(branches):
            tail = split_name
            first = True
            for stage in branch:
                name = self._stage_name()
                self._nodes.append(GraphNode(name, "stage", spec=stage))
                knobs = dict(edge_knobs)
                if first:
                    knobs["channel"] = channel
                self._edges.append(GraphEdge(tail, name, **knobs))
                tail = name
                first = False
            branch_tails.append(tail)
        self._pending = {
            "op": op,
            "split": split_name,
            "tails": branch_tails,
            "channels_pending": [index for index, branch
                                 in enumerate(branches) if not list(branch)],
            "edge_knobs": dict(edge_knobs),
        }
        return self

    def _join(self, op: str, edge_knobs: dict[str, Any]) -> "GraphBuilder":
        if self._pending is None:
            raise GraphError(
                f"{op}() without a preceding scatter()/broadcast()"
            )
        self._block_count += 1
        join_name = f"{op}-{self._block_count}"
        self._nodes.append(GraphNode(join_name, "join", op=op))
        empty_channels = set(self._pending["channels_pending"])
        for channel, tail in enumerate(self._pending["tails"]):
            knobs = dict(self._pending["edge_knobs"])
            knobs.update(edge_knobs)
            # An empty branch is a single split->join edge; it carries
            # the channel id that would have gone on its first hop.
            if channel not in empty_channels:
                knobs.pop("channel", None)
                self._edges.append(GraphEdge(tail, join_name, **edge_knobs))
            else:
                knobs["channel"] = channel
                self._edges.append(GraphEdge(tail, join_name, **knobs))
        self._pending = None
        self._tail = join_name
        return self
