"""The linear pipeline facade: a thin wrapper over a one-path Graph.

:class:`Pipeline` keeps the vocabulary every earlier PR used — stages,
discipline, source, harmonised knobs — and compiles to a single-path
:class:`~repro.api.graph.Graph` (see :meth:`Pipeline.to_graph`), which
:func:`repro.api.execute.run_graph` executes.  The specialized fleet
shapes (``shards > 1`` content-hash sharding, ``placement="hosted"``
broker fleets) keep their dedicated planners.

All knob validation is shared with the graph runner
(:data:`repro.api.execute.TCP_ONLY_KNOBS`), so a TCP-only knob is
rejected identically whether it arrives here, on a ``Graph.run``, or
smuggled inside a :class:`FlowPolicy`.
"""

from __future__ import annotations

import dataclasses
import tempfile
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.transput.filterbase import Transducer
from repro.transput.flow import FlowPolicy
from repro.transput.pipeline import DISCIPLINES
from repro.api.execute import (
    RUNTIMES,
    TCP_ONLY_KNOBS,
    check_flow_policy_runtime,
    check_tcp_only_knobs,
    normalize_flight,
    run_graph,
)
from repro.api.graph import Graph, check_stage_spec

__all__ = ["Pipeline", "PipelineResult", "RUNTIMES", "DISCIPLINES"]

#: Knobs only the supervised TCP fleet can honour (single source of
#: truth: :data:`repro.api.execute.TCP_ONLY_KNOBS`).
_TCP_ONLY = TCP_ONLY_KNOBS


@dataclass
class PipelineResult:
    """What one run produced, in runtime-independent shape.

    ``output`` is the sink's collected records — note the TCP runtime
    transports records as text lines, so use string records when
    comparing outputs across runtimes.  ``invocations`` counts the
    transfer requests that crossed stage boundaries (READs + WRITEs +
    pushed ENDs), the paper's C1/C2 cost metric, measured the same way
    on every runtime.  ``stats`` is the full counters/gauges/histograms
    payload (:func:`repro.obs.registry.snapshot_payload` shape).
    """

    runtime: str
    discipline: str
    output: list[Any]
    invocations: int
    stats: dict[str, Any] = field(default_factory=dict)
    #: Supervised restarts (TCP runtime only; 0 elsewhere).
    restarts: int = 0
    #: Supervisor counters payload (TCP runtime only; empty elsewhere).
    supervisor: dict[str, Any] = field(default_factory=dict)
    stderr: list[str] = field(default_factory=list)
    trace_files: list[str] = field(default_factory=list)
    #: How many parallel shards the pipeline ran as (1 = unsharded).
    shards: int = 1
    #: Each shard's output in shard order (empty when unsharded);
    #: ``output`` is their concatenation.
    shard_outputs: list[list[Any]] = field(default_factory=list)

    def invocations_per_datum(self, item_count: int) -> float:
        """Average invocations to move one record end-to-end."""
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        return self.invocations / item_count


class Pipeline:
    """A runtime-independent linear pipeline description.

    Args:
        stages: transducer specs, upstream to downstream.  Each is a
            ``"module:factory"`` string, a ``(spec, args)`` pair, or —
            for the in-process runtimes only — a built Transducer.
        discipline: ``"readonly"``, ``"writeonly"`` or
            ``"conventional"``.
        source: the records to stream (a finite sequence; the TCP
            runtime additionally needs them JSON-encodable).
        sink: ``None`` or ``"collect"`` — the built-in collecting sink
            whose records become ``result.output``.  Custom sink Ejects
            remain a simulator-only feature of
            :func:`repro.transput.compose_readonly_pipeline`.
        flow: default :class:`FlowPolicy` for every run (individual
            ``run()`` calls may override knobs).
        shards: partition the stream by content hash across this many
            parallel copies of the pipeline (claim C3's channel
            fan-out).  Each shard preserves its internal order;
            ``result.output`` concatenates shards in index order and
            ``result.shard_outputs`` keeps them separate.  On the TCP
            runtime every shard is its own process sub-fleet under one
            supervisor — near-linear scaling for CPU-bound filters.
            For explicit branch topologies (different stages per
            branch, broadcast, merge) use
            :class:`repro.api.GraphBuilder` instead.
        placement: where the TCP runtime puts stages.  ``"processes"``
            (the default) is one OS process per stage; ``"hosted"``
            runs every stage inside one ``eden-host`` process attached
            to an ``eden-broker`` control plane — same stream
            semantics, ``hosts + 1`` processes regardless of pipeline
            length.  Hosted placement supports the readonly and
            writeonly disciplines, unsharded.
        broker: with ``placement="hosted"``, attach to an externally
            running broker at ``"host:port"`` instead of planning one.
    """

    def __init__(
        self,
        stages: Sequence[Any],
        discipline: str = "readonly",
        source: Sequence[Any] | None = None,
        sink: Any = None,
        flow: FlowPolicy | None = None,
        shards: int = 1,
        placement: str | None = None,
        broker: str | None = None,
    ) -> None:
        if discipline not in DISCIPLINES:
            raise ValueError(
                f"discipline must be one of {DISCIPLINES}, got {discipline!r}"
            )
        if placement not in (None, "processes", "hosted"):
            raise ValueError(
                f"placement must be 'processes' or 'hosted', got {placement!r}"
            )
        if broker is not None and placement != "hosted":
            raise ValueError("broker requires placement='hosted'")
        if placement == "hosted":
            if discipline == "conventional":
                raise ValueError(
                    "hosted placement cannot run the conventional "
                    "discipline (every link needs a pipe process)"
                )
            if shards != 1:
                raise ValueError(
                    "hosted placement is unsharded; run with shards=1"
                )
        if source is None:
            raise ValueError("source is required (a finite record sequence)")
        if sink not in (None, "collect"):
            raise ValueError(
                f"sink must be None or 'collect', got {sink!r}; custom sinks "
                "are a simulator feature — use repro.transput.compose_* "
                "builders directly"
            )
        if not isinstance(shards, int) or shards < 1:
            raise ValueError(f"shards must be an integer >= 1, got {shards!r}")
        self.stages = list(stages)
        for stage in self.stages:
            self._check_stage(stage)
        self.discipline = discipline
        self.source = list(source)
        self.flow = flow or FlowPolicy()
        self.shards = shards
        self.placement = placement or "processes"
        self.broker = broker

    # -- stage specs --------------------------------------------------------

    @staticmethod
    def _check_stage(stage: Any) -> None:
        try:
            check_stage_spec(stage)
        except ValueError as exc:  # GraphError is a ValueError
            raise ValueError(str(exc)) from None

    def _transducers(self) -> list[Transducer]:
        """Fresh transducer instances for one in-process run."""
        from repro.api.execute import _transducers

        return _transducers(self.stages)

    def _specs(self) -> list[tuple[str, list[Any]]]:
        """``(spec, args)`` pairs for the TCP runtime."""
        specs = []
        for stage in self.stages:
            if isinstance(stage, Transducer):
                raise ValueError(
                    f"the tcp runtime cannot ship a built Transducer "
                    f"({type(stage).__name__}) across a process boundary; "
                    "give a 'module:factory' spec instead"
                )
            if isinstance(stage, str):
                specs.append((stage, []))
            else:
                specs.append((stage[0], list(stage[1])))
        return specs

    # -- the graph view ------------------------------------------------------

    def to_graph(self) -> Graph:
        """This pipeline as the degenerate single-path Graph.

        Sharding and hosted placement are fleet shapes, not topology,
        so they do not appear in the graph — the unsharded
        ``"processes"`` run path compiles through here.
        """
        return Graph.linear(
            self.stages,
            source=self.source,
            discipline=self.discipline,
            flow=self.flow,
            name="pipeline",
        )

    # -- running ------------------------------------------------------------

    def run(
        self,
        runtime: str = "sim",
        *,
        flow: FlowPolicy | None = None,
        batch: int | None = None,
        credit_window: int | None = None,
        lookahead: int | None = None,
        placement: Any = None,
        timeout: float | None = None,
        max_restarts: int | None = None,
        faults: Mapping[int, Any] | None = None,
        resume: bool | None = None,
        io_timeout: float | None = None,
        trace: bool | None = None,
        workdir: str | None = None,
        codec: str | None = None,
        pipeline_depth: int | None = None,
        adaptive: bool | None = None,
        placement_policy: str | None = None,
        flight: Any = None,
    ) -> PipelineResult:
        """Run the pipeline on ``runtime`` and gather a common result.

        Flow knobs (``batch``, ``credit_window``, ``lookahead``, or a
        whole ``flow`` policy) apply everywhere.  ``placement`` is
        simulator-only.  The fault-tolerance knobs (``timeout``,
        ``max_restarts``, ``faults``, ``resume``, ``io_timeout``,
        ``trace``, ``workdir``) and the data-plane knobs (``codec``,
        ``pipeline_depth``, ``adaptive``, ``placement_policy``) are
        TCP-only — passing one to another runtime is an error, never a
        silent no-op, whether it arrives as a keyword here or inside
        ``flow``.  ``placement_policy`` (``"cores"`` / ``"none"``)
        governs CPU-core pinning of shard sub-fleets and stage hosts;
        it needs ``shards > 1`` or hosted placement to act on.

        ``flight`` switches on the flight recorder fleet-wide: a
        directory path (full-payload capture there) or a
        ``(directory, mode)`` pair with mode ``"full"`` or
        ``"digest"``.  Every stage records its frames to rotating
        segment files under per-stage subdirectories; load them with
        :func:`repro.obs.flight.load_flight_dir`, inspect with
        ``eden-flight``, and re-execute with ``eden-flight --replay``
        (full mode only).  TCP-only.
        """
        if runtime not in RUNTIMES:
            raise ValueError(f"runtime must be one of {RUNTIMES}, got {runtime!r}")
        check_tcp_only_knobs(runtime, {
            "timeout": timeout, "max_restarts": max_restarts,
            "faults": faults, "resume": resume, "io_timeout": io_timeout,
            "trace": trace, "workdir": workdir, "codec": codec,
            "pipeline_depth": pipeline_depth, "adaptive": adaptive,
            "placement_policy": placement_policy, "flight": flight,
        })
        if runtime != "sim" and placement is not None:
            raise ValueError("placement is simulator-only (runtime='sim')")
        if placement_policy is not None:
            from repro.net.affinity import PLACEMENT_POLICIES

            if placement_policy not in PLACEMENT_POLICIES:
                raise ValueError(
                    f"placement_policy must be one of {PLACEMENT_POLICIES}, "
                    f"got {placement_policy!r}"
                )
            if self.shards == 1 and self.placement != "hosted":
                raise ValueError(
                    "placement_policy pins shard sub-fleets or stage hosts "
                    "to cores; it needs shards > 1 or placement='hosted'"
                )
        if self.placement == "hosted" and runtime != "tcp":
            raise ValueError(
                f"placement='hosted' needs the TCP runtime, got {runtime!r}"
            )
        if faults and self.shards > 1:
            raise ValueError(
                "faults address stage serials of one sub-fleet and are "
                "ambiguous across shards; run with shards=1 to inject faults"
            )
        flight_dir, flight_mode = normalize_flight(flight)

        policy = flow or self.flow
        if batch is not None:
            policy = policy.with_batch(batch)
        if credit_window is not None:
            policy = policy.with_credit_window(credit_window)
        if lookahead is not None:
            policy = dataclasses.replace(policy, lookahead=lookahead)
        if pipeline_depth is not None:
            policy = policy.with_pipeline_depth(pipeline_depth)
        if adaptive is not None:
            policy = dataclasses.replace(policy, adaptive=adaptive)
        check_flow_policy_runtime(runtime, policy)

        # The plain unsharded process path — every runtime — compiles
        # through the Graph view and the one graph runner.
        if self.shards == 1 and self.placement == "processes":
            graph_result = run_graph(
                self.to_graph(),
                runtime,
                flow=policy,
                placement=placement,
                timeout=timeout,
                max_restarts=max_restarts,
                faults=faults,
                resume=resume,
                io_timeout=io_timeout,
                trace=trace,
                workdir=workdir,
                codec=codec,
                flight=flight,
            )
            return PipelineResult(
                runtime=runtime,
                discipline=self.discipline,
                output=graph_result.output,
                invocations=graph_result.invocations,
                stats=graph_result.stats,
                restarts=graph_result.restarts,
                supervisor=graph_result.supervisor,
                stderr=graph_result.stderr,
                trace_files=graph_result.trace_files,
            )
        if runtime == "sim":
            return self._run_sim_sharded(policy, placement)
        if runtime == "aio":
            return self._run_aio_sharded(policy)
        return self._run_tcp(
            policy,
            timeout=60.0 if timeout is None else timeout,
            max_restarts=0 if max_restarts is None else max_restarts,
            faults=faults,
            resume=bool(resume),
            io_timeout=io_timeout,
            trace=bool(trace),
            workdir=workdir,
            codec=codec,
            placement_policy=placement_policy,
            flight_dir=flight_dir,
            flight_mode=flight_mode,
        )

    # -- the specialized fleet shapes ---------------------------------------

    def _run_sim_sharded(self, policy: FlowPolicy,
                         placement: Any) -> PipelineResult:
        from repro.core.kernel import Kernel
        from repro.core.stats import KernelStats
        from repro.obs.registry import snapshot_payload
        from repro.transput.flow import shard_of
        from repro.transput.pipeline import compose_segment

        buckets: list[list[Any]] = [[] for _ in range(self.shards)]
        for record in self.source:
            buckets[shard_of(record, self.shards)].append(record)
        shard_outputs: list[list[Any]] = []
        invocations = 0
        combined = KernelStats()
        for bucket in buckets:
            kernel = Kernel()
            built = compose_segment(
                kernel, self.discipline, bucket, self._transducers(),
                flow=policy, placement=placement,
            )
            shard_outputs.append(built.run_to_completion())
            invocations += built.invocations_used()
            for name in kernel.stats.names():
                combined.bump(name, kernel.stats.get(name))
        return PipelineResult(
            runtime="sim",
            discipline=self.discipline,
            output=[record for lines in shard_outputs for record in lines],
            invocations=invocations,
            stats=snapshot_payload(combined),
            shards=self.shards,
            shard_outputs=shard_outputs,
        )

    def _run_aio_sharded(self, policy: FlowPolicy) -> PipelineResult:
        from repro.aio.pipeline import stream_sharded
        from repro.core.stats import KernelStats
        from repro.obs.registry import snapshot_payload

        stats = KernelStats()
        kwargs: dict[str, Any] = {"batch": policy.batch}
        if self.discipline == "readonly":
            kwargs["lookahead"] = policy.lookahead
        elif self.discipline == "conventional":
            kwargs["capacity"] = policy.buffer_capacity or 16
        output, shard_outputs = stream_sharded(
            list(self.source), self._transducers, self.discipline,
            shards=self.shards, stats=stats, **kwargs,
        )
        return PipelineResult(
            runtime="aio",
            discipline=self.discipline,
            output=output,
            invocations=stats.get("invocations_sent"),
            stats=snapshot_payload(stats),
            shards=self.shards,
            shard_outputs=shard_outputs,
        )

    def _run_tcp(
        self,
        policy: FlowPolicy,
        timeout: float,
        max_restarts: int,
        faults: Mapping[int, Any] | None,
        resume: bool,
        io_timeout: float | None,
        trace: bool,
        workdir: str | None,
        codec: str | None = None,
        placement_policy: str | None = None,
        flight_dir: str | None = None,
        flight_mode: str = "full",
    ) -> PipelineResult:
        from repro.net.framing import CODEC_JSON
        from repro.net.launch import plan_sharded_fleet, run_fleet
        from repro.obs.registry import snapshot_payload

        workdir = workdir or tempfile.mkdtemp(prefix="eden-fleet-")
        codec = codec or CODEC_JSON
        if self.placement == "hosted":
            from repro.broker.launch import plan_hosted_fleet

            plans = plan_hosted_fleet(
                self.discipline,
                self._specs(),
                workdir,
                source_items=list(self.source),
                flow=policy,
                trace=trace,
                faults=faults,
                resume=resume,
                io_timeout=io_timeout,
                codec=codec,
                broker=self.broker,
                max_restarts=max_restarts,
                placement_policy=placement_policy or "cores",
                flight_dir=flight_dir,
                flight_mode=flight_mode,
            )
        else:
            plans = plan_sharded_fleet(
                self.discipline,
                self._specs(),
                workdir,
                shards=self.shards,
                source_items=list(self.source),
                flow=policy,
                trace=trace,
                resume=resume,
                io_timeout=io_timeout,
                codec=codec,
                placement_policy=placement_policy or "cores",
                flight_dir=flight_dir,
                flight_mode=flight_mode,
            )
        result = run_fleet(plans, timeout=timeout, max_restarts=max_restarts)
        return PipelineResult(
            runtime="tcp",
            discipline=self.discipline,
            output=list(result.output),
            invocations=result.invocations,
            stats=snapshot_payload(result.totals),
            restarts=result.restarts,
            supervisor=dict(result.supervisor),
            stderr=list(result.stderr),
            trace_files=list(result.trace_files),
            shards=self.shards,
            shard_outputs=[list(lines) for lines in result.shard_outputs],
        )
